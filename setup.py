"""Setup shim.

The modern PEP 517 editable install path needs the ``wheel`` package,
which is unavailable in fully offline environments; this shim lets
``pip install -e . --no-build-isolation`` fall back to the legacy
``setup.py develop`` route there. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
