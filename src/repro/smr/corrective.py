"""Corrective delivery (paper §8.3): eventual consistency with rollback.

Base EpTO drops an event whose in-order delivery window has passed;
tagged delivery (§8.2) at least surfaces it. §8.3 sketches one step
further — *corrective deliveries* "to fix mistakes as done in
optimistic protocols", with the twist that EpTO has no final order, so
corrections are never known to be the last word: the application is
*unconscious* of whether its current order is definitive (Baldoni et
al.'s unconscious eventual consistency [1]).

:class:`CorrectableReplica` implements that model over a deterministic
state machine:

* in-order deliveries apply immediately (the optimistic fast path);
* an out-of-order (tagged) event triggers a **correction**: the event
  is spliced into its rightful place in the replica's ordered log and
  the machine is rebuilt by replaying the log — state rolls back and
  forward in one step;
* the application observes corrections through a callback carrying the
  splice position, so it can invalidate whatever it derived from the
  overwritten suffix.

A perturbed replica that missed events in order therefore still
converges to exactly the healthy replicas' state — the paper's goal of
integrating perturbed processes "otherwise difficult to integrate to
the well-behaving part of the network".

Replay cost is O(log length) per correction; corrections are rare by
construction (they require a hole), so the simplicity of full replay
beats snapshot machinery at the scales this library targets. The
machine factory must produce machines that are deterministic from the
empty state.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from ..core.event import Event, OrderKey
from .machine import StateMachine
from .replica import MachineFactory


@dataclass(frozen=True, slots=True)
class Correction:
    """One corrective delivery: *event* spliced at *position*.

    Attributes:
        event: The late event now incorporated.
        position: Index in the ordered log where it was inserted;
            everything at or after this index was re-applied.
        replayed: Number of commands re-applied after the rollback.
    """

    event: Event
    position: int
    replayed: int


class CorrectableReplica:
    """A replica that accepts corrections instead of dropping late events.

    Wire :meth:`on_deliver` to the node's in-order stream and
    :meth:`on_out_of_order` to its §8.2 tagged stream (requires
    ``EpToConfig.tagged_delivery=True``).

    Args:
        node_id: Owning node.
        machine_factory: Builds a fresh machine (used both initially
            and for replays after corrections).
        on_correction: Optional callback invoked with each
            :class:`Correction` — the hook applications use to
            invalidate derived state.
    """

    def __init__(
        self,
        node_id: int,
        machine_factory: MachineFactory,
        on_correction: Callable[[Correction], None] | None = None,
    ) -> None:
        self.node_id = node_id
        self._machine_factory = machine_factory
        self._on_correction = on_correction
        self.machine: StateMachine = machine_factory()
        self.corrections: List[Correction] = []
        self.applied_count = 0
        self._log: List[Event] = []
        self._keys: List[OrderKey] = []

    # ------------------------------------------------------------------
    # Delivery hooks
    # ------------------------------------------------------------------

    def on_deliver(self, event: Event) -> None:
        """Fast path: an in-order delivery appends and applies."""
        self._log.append(event)
        self._keys.append(event.order_key)
        self.machine.apply(event.payload)
        self.applied_count += 1

    def on_out_of_order(self, event: Event) -> None:
        """Correction path: splice the late event and replay."""
        position = bisect.bisect_left(self._keys, event.order_key)
        if position < len(self._keys) and self._keys[position] == event.order_key:
            return  # duplicate correction; already incorporated
        self._log.insert(position, event)
        self._keys.insert(position, event.order_key)
        self._replay()
        correction = Correction(
            event=event,
            position=position,
            replayed=len(self._log) - position,
        )
        self.corrections.append(correction)
        if self._on_correction is not None:
            self._on_correction(correction)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def log(self) -> List[Event]:
        """The replica's current ordered event log."""
        return list(self._log)

    def digest(self) -> str:
        """Fingerprint of the machine state."""
        return self.machine.digest()

    def _replay(self) -> None:
        """Rebuild the machine from the (now corrected) log."""
        self.machine = self._machine_factory()
        for event in self._log:
            self.machine.apply(event.payload)
        self.applied_count = len(self._log)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CorrectableReplica(node={self.node_id}, "
            f"log={len(self._log)}, corrections={len(self.corrections)})"
        )
