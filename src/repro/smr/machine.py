"""Deterministic state machines for replication over EpTO.

The paper motivates EpTO with systems like DataFlasks that lack
ordering and must push version control onto clients (§1.1). Total
order makes the classic state-machine-replication recipe available:
apply the same deterministic commands in the same order everywhere and
every replica's state is identical by construction.

A :class:`StateMachine` must be **deterministic**: its state after
applying a command sequence is a pure function of that sequence. The
:meth:`StateMachine.digest` hook lets replicas cheaply compare states
(divergence detection) without shipping snapshots.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Protocol, Tuple, runtime_checkable


@runtime_checkable
class StateMachine(Protocol):
    """A deterministic command-applying machine."""

    def apply(self, command: Any) -> Any:
        """Apply *command*, mutate state, return a result."""
        ...

    def snapshot(self) -> Any:
        """Return an immutable, comparable copy of the current state."""
        ...

    def restore(self, state: Any) -> None:
        """Replace the current state with a :meth:`snapshot` result.

        Must accept the snapshot after a JSON round-trip (tuples come
        back as lists) — durable snapshots
        (:mod:`repro.storage.snapshot`) are stored as JSON.
        """
        ...

    def digest(self) -> str:
        """Return a short stable fingerprint of the current state."""
        ...


def _stable_digest(value: Any) -> str:
    """SHA-256 over a canonical JSON encoding of *value*."""
    encoded = json.dumps(value, sort_keys=True, default=repr).encode()
    return hashlib.sha256(encoded).hexdigest()[:16]


class KeyValueStore:
    """A replicated dictionary: ``("put", k, v)`` / ``("del", k)``.

    Each key tracks a version counter incremented on every write, the
    bookkeeping DataFlasks delegates to clients and total order makes
    trivial.
    """

    def __init__(self) -> None:
        self._data: Dict[str, Tuple[Any, int]] = {}

    def apply(self, command: Tuple[str, ...]) -> Any:
        op = command[0]
        if op == "put":
            _, key, value = command
            _, version = self._data.get(key, (None, 0))
            self._data[key] = (value, version + 1)
            return version + 1
        if op == "del":
            _, key = command
            return self._data.pop(key, None)
        raise ValueError(f"unknown command {command!r}")

    def get(self, key: str, default: Any = None) -> Any:
        """Current value of *key* (local read)."""
        entry = self._data.get(key)
        return entry[0] if entry is not None else default

    def version(self, key: str) -> int:
        """Write count of *key* (0 when absent)."""
        entry = self._data.get(key)
        return entry[1] if entry is not None else 0

    def snapshot(self) -> Tuple[Tuple[str, Any, int], ...]:
        return tuple(
            (key, value, version)
            for key, (value, version) in sorted(self._data.items())
        )

    def restore(self, state: Any) -> None:
        self._data = {key: (value, int(version)) for key, value, version in state}

    def digest(self) -> str:
        return _stable_digest(self.snapshot())


class Counter:
    """A replicated counter: ``("add", n)`` / ``("reset",)``."""

    def __init__(self) -> None:
        self.value = 0

    def apply(self, command: Tuple[str, ...]) -> int:
        op = command[0]
        if op == "add":
            self.value += command[1]
        elif op == "reset":
            self.value = 0
        else:
            raise ValueError(f"unknown command {command!r}")
        return self.value

    def snapshot(self) -> int:
        return self.value

    def restore(self, state: Any) -> None:
        self.value = state

    def digest(self) -> str:
        return _stable_digest(self.value)


class AppendLog:
    """A replicated append-only log — the identity state machine.

    Useful in tests: its state *is* the delivered command sequence, so
    any ordering discrepancy is directly visible.
    """

    def __init__(self) -> None:
        self.entries: List[Any] = []

    def apply(self, command: Any) -> int:
        self.entries.append(command)
        return len(self.entries)

    def snapshot(self) -> Tuple[Any, ...]:
        return tuple(self.entries)

    def restore(self, state: Any) -> None:
        self.entries = list(state)

    def digest(self) -> str:
        return _stable_digest(self.entries)
