"""State-machine replication over EpTO (the paper's §1.1 motivation).

Includes the §8.3 *corrective delivery* extension
(:class:`CorrectableReplica`) implementing unconscious eventual
consistency for perturbed replicas.
"""

from .corrective import CorrectableReplica, Correction
from .machine import AppendLog, Counter, KeyValueStore, StateMachine
from .replica import ConvergenceReport, MachineFactory, Replica, ReplicatedService

__all__ = [
    "AppendLog",
    "ConvergenceReport",
    "CorrectableReplica",
    "Correction",
    "Counter",
    "KeyValueStore",
    "MachineFactory",
    "Replica",
    "ReplicatedService",
    "StateMachine",
]
