"""State-machine replication over EpTO's total order.

:class:`Replica` glues one deterministic state machine to one node's
EpTO delivery stream; :class:`ReplicatedService` provisions a replica
per node of a :class:`~repro.sim.cluster.SimCluster` and offers
cluster-wide convergence checks. Because EpTO delivers the same
command sequence everywhere, replicas are consistent by construction —
the service's :meth:`ReplicatedService.converged` is how applications
(and our tests) verify it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set

from ..core.event import Event
from ..core.errors import MembershipError
from ..sim.cluster import SimCluster
from .machine import StateMachine

#: Builds a fresh state machine for one replica.
MachineFactory = Callable[[], StateMachine]


class Replica:
    """One node's materialized state machine.

    Feed :meth:`on_deliver` with the node's EpTO delivery stream (in
    delivery order); the replica applies each event's payload as a
    command and journals what it applied.

    Args:
        node_id: Owning node.
        machine: The deterministic state machine instance.
        journal_commands: Keep the applied command list (handy in
            tests; off by default to bound memory).
    """

    def __init__(
        self,
        node_id: int,
        machine: StateMachine,
        journal_commands: bool = False,
    ) -> None:
        self.node_id = node_id
        self.machine = machine
        self.applied_count = 0
        self.last_result: Any = None
        self._journal: Optional[List[Any]] = [] if journal_commands else None

    def on_deliver(self, event: Event) -> None:
        """Apply one totally ordered event to the machine."""
        self.last_result = self.machine.apply(event.payload)
        self.applied_count += 1
        if self._journal is not None:
            self._journal.append(event.payload)

    @property
    def journal(self) -> List[Any]:
        """Applied commands in order (requires ``journal_commands``)."""
        if self._journal is None:
            raise MembershipError("journaling disabled for this replica")
        return list(self._journal)

    def snapshot(self) -> Any:
        """The machine's current checkpointable state.

        Pass this to :meth:`repro.storage.journal.DeliveryJournal.save_snapshot`
        to checkpoint the replica durably; it is exactly what
        :meth:`restore` (and machine ``restore`` during
        :func:`repro.storage.recovery.recover`) accepts back.
        """
        return self.machine.snapshot()

    def restore(self, state: Any, applied_count: int = 0) -> None:
        """Reset the replica to a recovered *state*.

        Args:
            state: A :meth:`snapshot` result (possibly JSON round-tripped).
            applied_count: Commands already folded into *state*
                (:attr:`repro.storage.recovery.RecoveredState.applied_count`),
                so the counter keeps meaning "commands applied ever".
        """
        self.machine.restore(state)
        self.applied_count = applied_count
        self.last_result = None
        if self._journal is not None:
            self._journal = []

    def digest(self) -> str:
        """Fingerprint of the machine state."""
        return self.machine.digest()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Replica(node={self.node_id}, applied={self.applied_count})"


@dataclass(slots=True)
class ConvergenceReport:
    """Outcome of a cluster-wide state comparison."""

    digests: Dict[int, str]
    distinct: Set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        self.distinct = set(self.digests.values())

    @property
    def converged(self) -> bool:
        """All compared replicas hold identical state."""
        return len(self.distinct) <= 1

    def divergent_nodes(self) -> List[int]:
        """Nodes whose digest differs from the majority digest."""
        if self.converged:
            return []
        counts: Dict[str, int] = {}
        for digest in self.digests.values():
            counts[digest] = counts.get(digest, 0) + 1
        majority = max(counts, key=lambda d: counts[d])
        return sorted(
            node for node, digest in self.digests.items() if digest != majority
        )


class ReplicatedService:
    """A state machine replicated across every node of a cluster.

    Hooks replica application into the cluster's delivery recording, so
    replicas advance exactly in EpTO delivery order with no extra
    wiring at the call sites.

    Args:
        cluster: The simulated cluster hosting the EpTO processes.
        machine_factory: Builds one fresh machine per replica.
        journal_commands: Forwarded to every :class:`Replica`.
    """

    def __init__(
        self,
        cluster: SimCluster,
        machine_factory: MachineFactory,
        journal_commands: bool = False,
    ) -> None:
        self.cluster = cluster
        self._machine_factory = machine_factory
        self._journal_commands = journal_commands
        self.replicas: Dict[int, Replica] = {}
        for node_id in cluster.alive_ids():
            self._attach(node_id)
        # Intercept future deliveries (including nodes added later).
        self._original_record = cluster.collector.record_delivery
        cluster.collector.record_delivery = self._record_and_apply  # type: ignore[method-assign]

    def _attach(self, node_id: int) -> Replica:
        replica = Replica(
            node_id,
            self._machine_factory(),
            journal_commands=self._journal_commands,
        )
        self.replicas[node_id] = replica
        return replica

    def _record_and_apply(self, node_id: int, event: Event, time: int) -> None:
        self._original_record(node_id, event, time)
        replica = self.replicas.get(node_id)
        if replica is None:
            # A node added after service creation (e.g. by churn).
            replica = self._attach(node_id)
        replica.on_deliver(event)

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------

    def submit(self, node_id: int, command: Any) -> Event:
        """Submit *command* through *node_id* (EpTO-broadcast it)."""
        return self.cluster.broadcast_from(node_id, command)

    def replica(self, node_id: int) -> Replica:
        """The replica hosted at *node_id*."""
        try:
            return self.replicas[node_id]
        except KeyError:
            raise MembershipError(f"no replica at node {node_id}") from None

    def convergence(self, nodes: Optional[Set[int]] = None) -> ConvergenceReport:
        """Compare replica digests (default: currently alive nodes)."""
        if nodes is None:
            nodes = set(self.cluster.alive_ids())
        return ConvergenceReport(
            digests={
                node_id: self.replicas[node_id].digest()
                for node_id in nodes
                if node_id in self.replicas
            }
        )

    def converged(self, nodes: Optional[Set[int]] = None) -> bool:
        """Whether the compared replicas hold identical state."""
        return self.convergence(nodes).converged
