"""Wire messages of the lazy-push protocol (codec kinds 9–11).

Three message types, mirroring the IHAVE/pull shape of lazy epidemic
dissemination:

* :class:`IdBall` — the metadata twin of an EpTO ball: one
  ``(ts, source, seq, ttl)`` tuple per event, no payloads. Shipped to
  ``K`` peers per round exactly like an eager ball; its sender
  implicitly advertises the payloads (it either holds them or is
  pulling them itself).
* :class:`PayloadRequest` — a pull: "send me the payloads of these
  event ids". Batched per advertiser per round by the
  :class:`~repro.lazy.pull.PullManager`.
* :class:`PayloadResponse` — the answer: full events for the ids the
  responder holds, plus an explicit ``missing`` list for the ids it
  does not (yet) — the requester falls over to an alternate advertiser
  immediately instead of waiting out a timeout.

All three are frozen dataclasses so they can be shared among receivers
without aliasing, like balls. On object fabrics (the simulator, the
in-process async network) they travel as-is; on the UDP fabric the
codec serializes them as header-version-4 kinds 9/10/11
(:mod:`repro.runtime.codec`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..core.event import Ball, BallEntry, Event, EventId, make_ball

#: One metadata entry: ``(ts, source, seq, ttl)``.
IdEntry = Tuple[int, int, int, int]


@dataclass(frozen=True, slots=True)
class IdBall:
    """A ball carrying event metadata only (lazy-push eager leg)."""

    entries: Tuple[IdEntry, ...]


@dataclass(frozen=True, slots=True)
class PayloadRequest:
    """Pull request for the payloads of ``ids``."""

    req_id: int
    ids: Tuple[EventId, ...]


@dataclass(frozen=True, slots=True)
class PayloadResponse:
    """Pull answer: the full events held, the ids not held."""

    req_id: int
    events: Tuple[Event, ...]
    missing: Tuple[EventId, ...] = ()


#: Dispatch tuple for hosting runtimes (mirrors ``SYNC_MESSAGE_TYPES``).
LAZY_MESSAGE_TYPES = (IdBall, PayloadRequest, PayloadResponse)


def ball_to_id_ball(ball: Ball) -> IdBall:
    """Strip a ball to its metadata twin (what lazy mode ships)."""
    return IdBall(
        entries=tuple(
            (entry.event.ts, entry.event.source_id, entry.event.seq, entry.ttl)
            for entry in ball
        )
    )


def id_ball_to_meta_ball(id_ball: IdBall) -> Ball:
    """Inflate metadata entries into a payload-less ball.

    The resulting events carry ``payload=None``; the ordering component
    orders them by ``(ts, source_id, seq)`` exactly as it would the full
    events, which is why metadata alone drives ordering.
    """
    return make_ball(
        BallEntry(
            Event(id=(source, seq), ts=ts, source_id=source, payload=None),
            ttl=ttl,
        )
        for ts, source, seq, ttl in id_ball.entries
    )
