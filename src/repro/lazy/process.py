"""A lazy-push EpTO process: unchanged core, metadata on the wire.

:class:`LazyEpToProcess` hosts the *unmodified* dissemination and
ordering components (via an inner :class:`~repro.core.process.EpToProcess`)
and changes only what crosses the network:

* outgoing balls are stripped to :class:`~repro.lazy.protocol.IdBall`
  metadata by a transport adapter — the dissemination component never
  notices;
* incoming id-balls are inflated to payload-less balls and fed to the
  ordinary ``on_ball`` path, so the ordering component orders metadata
  exactly as it would order full events (the order key is
  ``(ts, source_id, seq)``; payloads never influence it);
* payloads travel exactly once per node through the
  :class:`~repro.lazy.pull.PullManager` /
  :class:`~repro.lazy.store.PayloadStore` pair;
* a FIFO delivery gate holds the ordering component's deliveries until
  the payload has arrived, then releases them *in order* — total order
  is preserved event-for-event against eager mode, only the delivery
  instant may lag by the pull round-trip.

The class satisfies the hosting runtimes' ``GossipProcess`` surface
(``broadcast`` / ``on_ball`` / ``on_round`` / ``resume_sequence``) plus
one extra entry point, :meth:`on_lazy_message`, which the runtimes call
for the three lazy wire kinds (they carry the sender, which ``on_ball``
does not).
"""

from __future__ import annotations

import collections
import random
from dataclasses import dataclass
from typing import Any, Callable, Deque, List

from ..core.clock import StabilityOracle
from ..core.config import EpToConfig
from ..core.dissemination import payload_nbytes
from ..core.errors import ConfigurationError
from ..core.event import Ball, Event
from ..core.interfaces import PeerSampler, Transport
from ..core.process import EpToProcess
from .protocol import (
    IdBall,
    PayloadRequest,
    PayloadResponse,
    ball_to_id_ball,
    id_ball_to_meta_ball,
)
from .pull import PullManager
from .store import PayloadStore

# Wire-size estimates mirroring the codec's version-4 layouts (kept
# local: the codec imports this package's protocol module, so importing
# the codec from here would be circular). One datagram header, one
# id-ball entry (ts i64 + source i64 + seq i64 + ttl i32), one event id
# (source i64 + seq i64), the request head (req_id u32) and the
# response head (req_id u32 + missing_count u32).
HEADER_BYTES = 16
ID_ENTRY_BYTES = 28
EVENT_ID_BYTES = 16
REQUEST_HEAD_BYTES = 4
RESPONSE_HEAD_BYTES = 8
RESPONSE_EVENT_BYTES = 28  # ts i64 + source i64 + seq i64 + payload_len u32

#: Default payload retention, in rounds, as a multiple of the TTL. The
#: ordering window is ~2*TTL (dissemination plus stabilization); twice
#: that again absorbs pull retries under loss and the latency tail.
RETENTION_TTL_FACTOR = 4
RETENTION_SLACK_ROUNDS = 16


@dataclass(slots=True)
class LazyStats:
    """Counters specific to the lazy-push leg of one process.

    The pull life-cycle counters (issued/retried/served/failed) live on
    :attr:`LazyEpToProcess.pull` (:class:`~repro.lazy.pull.PullStats`)
    and the retention counters on :attr:`LazyEpToProcess.store`;
    :meth:`LazyEpToProcess.stats_snapshot` merges all three.
    """

    id_balls_sent: int = 0
    id_balls_received: int = 0
    requests_received: int = 0
    responses_sent: int = 0
    payloads_served: int = 0
    payloads_missing: int = 0
    #: deliveries that had to wait in the gate for their payload.
    deliveries_held: int = 0
    #: estimated wire bytes of metadata shipped (id-balls, request and
    #: response framing) — the codec's fixed layouts, like
    #: :class:`~repro.core.dissemination.DisseminationStats`.
    metadata_bytes: int = 0
    #: estimated wire bytes of serialized payloads shipped (responses).
    payload_bytes: int = 0


class _MetadataTransport:
    """Transport adapter: outgoing balls leave as id-balls."""

    __slots__ = ("_owner",)

    def __init__(self, owner: "LazyEpToProcess") -> None:
        self._owner = owner

    def send(self, src: int, dst: int, ball: Ball) -> None:
        self.send_many(src, (dst,), ball)

    def send_many(self, src: int, dsts, ball: Ball) -> None:
        owner = self._owner
        id_ball = ball_to_id_ball(ball)
        fan = len(dsts)
        owner.lazy_stats.id_balls_sent += fan
        owner.lazy_stats.metadata_bytes += fan * (
            HEADER_BYTES + ID_ENTRY_BYTES * len(id_ball.entries)
        )
        transport = owner._transport
        send_many = getattr(transport, "send_many", None)
        if send_many is not None:
            send_many(src, dsts, id_ball)
        else:
            for dst in dsts:
                transport.send(src, dst, id_ball)


class LazyEpToProcess:
    """One lazy-mode EpTO participant.

    Accepts the same keyword surface as
    :class:`~repro.core.process.EpToProcess` (so the hosting runtimes
    can build either from one call site) plus the lazy knobs.

    Args:
        retention_rounds: Payload retention window; defaults to
            ``RETENTION_TTL_FACTOR * ttl + RETENTION_SLACK_ROUNDS``.
        pull_timeout_rounds: Rounds before an unanswered pull request
            is retried at the next advertiser.
    """

    def __init__(
        self,
        node_id: int,
        config: EpToConfig,
        peer_sampler: PeerSampler,
        transport: Transport,
        on_deliver: Callable[[Event], None],
        on_out_of_order: Callable[[Event], None] | None = None,
        time_source: Callable[[], int] | None = None,
        rng: random.Random | None = None,
        oracle: StabilityOracle | None = None,
        system_size_hint: int | None = None,
        retention_rounds: int | None = None,
        pull_timeout_rounds: int = 2,
    ) -> None:
        if config.tagged_delivery:
            raise ConfigurationError(
                "tagged_delivery is not supported in lazy mode (the gate "
                "would reorder the out-of-order stream)"
            )
        self.node_id = node_id
        self.config = config
        self._transport = transport
        self._user_deliver = on_deliver
        if retention_rounds is None:
            retention_rounds = (
                RETENTION_TTL_FACTOR * config.ttl + RETENTION_SLACK_ROUNDS
            )
        self.store = PayloadStore(retention_rounds)
        self.pull = PullManager(
            node_id, timeout_rounds=pull_timeout_rounds, rng=rng
        )
        self.lazy_stats = LazyStats()
        self._held: Deque[Event] = collections.deque()
        self._round_no = 0
        self.process = EpToProcess(
            node_id=node_id,
            config=config,
            peer_sampler=peer_sampler,
            transport=_MetadataTransport(self),
            on_deliver=self._gate_deliver,
            on_out_of_order=on_out_of_order,
            time_source=time_source,
            rng=rng,
            oracle=oracle,
            system_size_hint=system_size_hint,
        )

    # ------------------------------------------------------------------
    # GossipProcess surface
    # ------------------------------------------------------------------

    def broadcast(self, payload: Any = None) -> Event:
        """EpTO-broadcast *payload*; the full event enters the store so
        this node can serve pulls (and deliver its own event ungated)."""
        event = self.process.broadcast(payload)
        self.store.put(event, self._round_no)
        return event

    def on_ball(self, ball: Ball) -> None:
        """Full eager ball (mixed-mode peer or external repair): the
        payloads are right there, so store them and proceed eagerly."""
        for entry in ball:
            self.store.put(entry.event, self._round_no)
        self.process.on_ball(ball)
        self._release()

    def on_round(self) -> None:
        """One round: dissemination/ordering tick (ships the id-ball),
        store GC, then the pull schedule."""
        self._round_no += 1
        self.process.on_round()
        self.store.gc(self._round_no)
        for dst, request in self.pull.collect(self._round_no):
            self.lazy_stats.metadata_bytes += (
                HEADER_BYTES
                + REQUEST_HEAD_BYTES
                + EVENT_ID_BYTES * len(request.ids)
            )
            self._transport.send(self.node_id, dst, request)

    def resume_sequence(self, next_seq: int) -> None:
        """Fast-forward the event-id sequence (same-identity restart)."""
        self.process.resume_sequence(next_seq)

    # ------------------------------------------------------------------
    # Lazy wire entry points
    # ------------------------------------------------------------------

    def on_lazy_message(self, src: int, message: Any) -> None:
        """Dispatch one of the three lazy wire kinds from *src*."""
        if isinstance(message, IdBall):
            self.on_id_ball(src, message)
        elif isinstance(message, PayloadRequest):
            self.on_payload_request(src, message)
        elif isinstance(message, PayloadResponse):
            self.on_payload_response(src, message)
        else:  # pragma: no cover - defensive
            raise TypeError(f"not a lazy wire message: {type(message).__name__}")

    def on_id_ball(self, src: int, id_ball: IdBall) -> None:
        """Metadata ball from *src*: register wants, order metadata."""
        self.lazy_stats.id_balls_received += 1
        ttl_bound = self.config.ttl
        store = self.store
        for ts, source, seq, ttl in id_ball.entries:
            if ttl >= ttl_bound:
                # The dissemination component drops expired entries
                # entirely (they never reach ordering), so pulling
                # their payloads would be wasted traffic.
                continue
            event_id = (source, seq)
            if event_id not in store:
                # The relayer advertises first; the source is the
                # fallback of last resort (it always held the payload).
                self.pull.want(event_id, advertisers=(src, source))
        self.process.on_ball(id_ball_to_meta_ball(id_ball))

    def on_payload_request(self, src: int, request: PayloadRequest) -> None:
        """Serve a pull: full events for held ids, ``missing`` for the
        rest (the requester retries elsewhere immediately)."""
        self.lazy_stats.requests_received += 1
        events: List[Event] = []
        missing: List = []
        for event_id in request.ids:
            event = self.store.serve(event_id)
            if event is None:
                missing.append(event_id)
            else:
                events.append(event)
        self.lazy_stats.payloads_served += len(events)
        self.lazy_stats.payloads_missing += len(missing)
        self.lazy_stats.responses_sent += 1
        self.lazy_stats.metadata_bytes += (
            HEADER_BYTES
            + RESPONSE_HEAD_BYTES
            + RESPONSE_EVENT_BYTES * len(events)
            + EVENT_ID_BYTES * len(missing)
        )
        self.lazy_stats.payload_bytes += sum(
            payload_nbytes(event.payload) for event in events
        )
        self._transport.send(
            self.node_id,
            src,
            PayloadResponse(
                req_id=request.req_id,
                events=tuple(events),
                missing=tuple(missing),
            ),
        )

    def on_payload_response(self, src: int, response: PayloadResponse) -> None:
        """A pull answered: store the payloads, release the gate."""
        for event in response.events:
            self.pull.satisfy(event.id)
            self.store.put(event, self._round_no)
        for event_id in response.missing:
            self.pull.reject(event_id, src)
        self.pull.acknowledge(response.req_id)
        self._release()

    # ------------------------------------------------------------------
    # Delivery gate
    # ------------------------------------------------------------------

    def _gate_deliver(self, meta_event: Event) -> None:
        """Ordering component delivery callback: release when the
        payload is here, hold (in order) when it is not."""
        if not self._held:
            full = self.store.get(meta_event.id)
            if full is not None:
                self._user_deliver(full)
                return
        self.lazy_stats.deliveries_held += 1
        self._held.append(meta_event)
        # Normally registered at metadata arrival; this covers events
        # reaching ordering through paths that bypassed on_id_ball.
        self.pull.want(meta_event.id, advertisers=(meta_event.source_id,))

    def _release(self) -> None:
        held = self._held
        while held:
            full = self.store.get(held[0].id)
            if full is None:
                return
            held.popleft()
            self._user_deliver(full)

    # ------------------------------------------------------------------
    # Introspection (cluster/runtime compatibility surface)
    # ------------------------------------------------------------------

    @property
    def dissemination(self):
        """The inner dissemination component (crash/respawn hooks)."""
        return self.process.dissemination

    @property
    def pending_count(self) -> int:
        """Received-but-undelivered events (including gate-held ones)."""
        return self.process.pending_count + len(self._held)

    @property
    def held_count(self) -> int:
        """Deliveries currently blocked on payload arrival."""
        return len(self._held)

    @property
    def delivered_count(self) -> int:
        """Events released to the application in total order."""
        return self.process.delivered_count - len(self._held)

    def peek(self):
        """§8.4 stability estimates (delegates to the inner process)."""
        return self.process.peek()

    def stats_snapshot(self) -> dict:
        """All lazy counters in one flat dict (benchmarks, drills)."""
        snapshot = {
            "id_balls_sent": self.lazy_stats.id_balls_sent,
            "id_balls_received": self.lazy_stats.id_balls_received,
            "requests_received": self.lazy_stats.requests_received,
            "responses_sent": self.lazy_stats.responses_sent,
            "payloads_served": self.lazy_stats.payloads_served,
            "payloads_missing": self.lazy_stats.payloads_missing,
            "deliveries_held": self.lazy_stats.deliveries_held,
            "metadata_bytes": self.lazy_stats.metadata_bytes,
            "payload_bytes": self.lazy_stats.payload_bytes,
            "pulls_issued": self.pull.stats.pulls_issued,
            "pulls_retried": self.pull.stats.pulls_retried,
            "pulls_served": self.pull.stats.pulls_served,
            "pulls_failed": self.pull.stats.pulls_failed,
            "requests_sent": self.pull.stats.requests_sent,
            "store_stored": self.store.stats.stored,
            "store_served": self.store.stats.served,
            "store_evicted": self.store.stats.evicted,
            "store_misses": self.store.stats.misses,
        }
        return snapshot

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LazyEpToProcess(id={self.node_id}, held={len(self._held)}, "
            f"pending_pulls={self.pull.pending_count})"
        )
