"""Lazy-push dissemination: metadata balls plus on-demand payload pull.

EpTO's eager mode ships every event payload to ``K`` peers per round,
so relay traffic is ``O(K * ball_bytes)`` per node-round — the dominant
bandwidth cost at production fan-out. This package implements the
push-pull hybrid analysed in "Optimal epidemic dissemination" (Mercier,
Hayez, Matos): balls carry only event *metadata* (id, source, ts, ttl)
eagerly, and each node pulls every payload exactly once (plus retries)
from a peer that advertised it. The ordering component is untouched —
metadata alone drives ordering, and delivery blocks only on payload
arrival. See docs/OVERLAY.md.

Components:

* :class:`~repro.lazy.protocol.IdBall` /
  :class:`~repro.lazy.protocol.PayloadRequest` /
  :class:`~repro.lazy.protocol.PayloadResponse` — the three wire
  messages (codec kinds 9–11, header version 4);
* :class:`~repro.lazy.store.PayloadStore` — TTL-bounded payload
  retention keyed off the ordering window;
* :class:`~repro.lazy.pull.PullManager` — duplicate-pull suppression,
  per-request timeout/retry, fallback to alternate advertisers;
* :class:`~repro.lazy.process.LazyEpToProcess` — a drop-in
  ``GossipProcess`` wrapping the unmodified core components, selected
  by ``EpToConfig(mode="lazy")`` in both runtimes and the service.
"""

from .process import LazyEpToProcess, LazyStats
from .protocol import (
    LAZY_MESSAGE_TYPES,
    IdBall,
    IdEntry,
    PayloadRequest,
    PayloadResponse,
)
from .pull import PullManager
from .store import PayloadStore

__all__ = [
    "IdBall",
    "IdEntry",
    "LAZY_MESSAGE_TYPES",
    "LazyEpToProcess",
    "LazyStats",
    "PayloadRequest",
    "PayloadResponse",
    "PullManager",
    "PayloadStore",
]
