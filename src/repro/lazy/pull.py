"""Pull scheduling for lazy-push dissemination.

The :class:`PullManager` tracks every event id this node knows only as
metadata, who advertised it, and which pull requests are in flight. Its
job is to get each payload exactly once with bounded chatter:

* **Duplicate-pull suppression** — an id with an in-flight request is
  never re-requested until that request times out or the advertiser
  explicitly reports the id ``missing``.
* **Batching** — all ids due in a round that resolve to the same
  advertiser share one :class:`~repro.lazy.protocol.PayloadRequest`.
* **Timeout/retry with advertiser fallback** — an unanswered request
  expires after ``timeout_rounds`` rounds; the next attempt rotates to
  the next known advertiser (the original sender of the id-ball, any
  later relayers, and the event's source as the fallback of last
  resort). Retries continue until the payload arrives: the payload
  stores of correct peers retain entries for the whole ordering window,
  so a live advertiser eventually answers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.event import EventId
from .protocol import PayloadRequest


@dataclass(slots=True)
class PullStats:
    """Counters for one node's pull scheduling."""

    #: ids for which a first pull request was sent.
    pulls_issued: int = 0
    #: re-requests after a timeout or an explicit miss.
    pulls_retried: int = 0
    #: ids whose payload arrived in a response.
    pulls_served: int = 0
    #: per-id misses reported by advertisers (``missing`` entries).
    pulls_failed: int = 0
    #: requests put on the wire (batched; >= 1 id each).
    requests_sent: int = 0
    #: responses that satisfied at least one pending id.
    responses_used: int = 0


@dataclass(slots=True)
class _PendingPull:
    """Book-keeping for one wanted event id."""

    advertisers: List[int] = field(default_factory=list)
    attempts: int = 0
    inflight_req: Optional[int] = None


class PullManager:
    """Schedules payload pulls for one node.

    Args:
        node_id: Owning node id (never pulled from).
        timeout_rounds: Rounds an in-flight request waits before its
            ids become eligible for a retry at the next advertiser.
        max_ids_per_request: Batch cap per request (wire hygiene).
    """

    def __init__(
        self,
        node_id: int,
        timeout_rounds: int = 2,
        max_ids_per_request: int = 128,
        rng: random.Random | None = None,
    ) -> None:
        if timeout_rounds < 1:
            raise ValueError(f"timeout_rounds must be >= 1, got {timeout_rounds}")
        if max_ids_per_request < 1:
            raise ValueError(
                f"max_ids_per_request must be >= 1, got {max_ids_per_request}"
            )
        self.node_id = node_id
        self.timeout_rounds = timeout_rounds
        self.max_ids_per_request = max_ids_per_request
        self.stats = PullStats()
        self._rng = rng if rng is not None else random.Random()
        self._pending: Dict[EventId, _PendingPull] = {}
        #: req_id -> (advertiser, ids, sent_round).
        self._inflight: Dict[int, Tuple[int, Tuple[EventId, ...], int]] = {}
        self._next_req_id = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Ids whose payload has not arrived yet."""
        return len(self._pending)

    def pending_ids(self) -> Sequence[EventId]:
        """Snapshot of the wanted ids."""
        return tuple(self._pending)

    def is_pending(self, event_id: EventId) -> bool:
        return event_id in self._pending

    # ------------------------------------------------------------------
    # Wants and advertisers
    # ------------------------------------------------------------------

    def want(self, event_id: EventId, advertisers: Iterable[int] = ()) -> bool:
        """Register interest in *event_id*; returns whether it was new.

        Safe to call repeatedly (every duplicate metadata sighting):
        an already-pending id just accumulates alternate advertisers.
        """
        state = self._pending.get(event_id)
        created = state is None
        if created:
            state = _PendingPull()
            self._pending[event_id] = state
        for peer in advertisers:
            if peer != self.node_id and peer not in state.advertisers:
                state.advertisers.append(peer)
        return created

    def note_advertiser(self, event_id: EventId, peer: int) -> None:
        """Record that *peer* (re-)advertised a pending id."""
        state = self._pending.get(event_id)
        if state is not None and peer != self.node_id:
            if peer not in state.advertisers:
                state.advertisers.append(peer)

    # ------------------------------------------------------------------
    # Responses
    # ------------------------------------------------------------------

    def satisfy(self, event_id: EventId) -> bool:
        """The payload of *event_id* arrived; returns whether it was
        still pending (``False`` for duplicate responses)."""
        state = self._pending.pop(event_id, None)
        if state is None:
            return False
        self.stats.pulls_served += 1
        self._detach(event_id, state)
        return True

    def reject(self, event_id: EventId, peer: int) -> None:
        """Advertiser *peer* reported *event_id* missing.

        The id becomes immediately eligible for a retry at the next
        advertiser instead of waiting out the request timeout. The
        rejecting peer stays in the rotation — it may well hold the
        payload later (it is pulling too).
        """
        state = self._pending.get(event_id)
        if state is None:
            return
        self.stats.pulls_failed += 1
        self._detach(event_id, state)

    def acknowledge(self, req_id: int) -> None:
        """Retire an in-flight request once its response is processed."""
        entry = self._inflight.pop(req_id, None)
        if entry is not None:
            self.stats.responses_used += 1
            _, ids, _ = entry
            for event_id in ids:
                state = self._pending.get(event_id)
                if state is not None and state.inflight_req == req_id:
                    state.inflight_req = None

    def _detach(self, event_id: EventId, state: _PendingPull) -> None:
        """Unlink *event_id* from its in-flight request, if any."""
        req_id = state.inflight_req
        state.inflight_req = None
        if req_id is None:
            return
        entry = self._inflight.get(req_id)
        if entry is None:
            return
        peer, ids, sent_round = entry
        remaining = tuple(i for i in ids if i != event_id)
        if remaining:
            self._inflight[req_id] = (peer, remaining, sent_round)
        else:
            del self._inflight[req_id]

    # ------------------------------------------------------------------
    # Round pacing
    # ------------------------------------------------------------------

    def collect(self, current_round: int) -> List[Tuple[int, PayloadRequest]]:
        """Requests to put on the wire this round.

        Expires timed-out in-flight requests, then batches every
        eligible id by its next advertiser. Returns ``(dst, request)``
        pairs; the caller ships them over its transport.
        """
        self._expire(current_round)
        by_peer: Dict[int, List[EventId]] = {}
        for event_id, state in self._pending.items():
            if state.inflight_req is not None or not state.advertisers:
                continue
            peer = state.advertisers[state.attempts % len(state.advertisers)]
            if state.attempts == 0:
                self.stats.pulls_issued += 1
            else:
                self.stats.pulls_retried += 1
            state.attempts += 1
            by_peer.setdefault(peer, []).append(event_id)
        requests: List[Tuple[int, PayloadRequest]] = []
        for peer, ids in by_peer.items():
            for start in range(0, len(ids), self.max_ids_per_request):
                batch = tuple(ids[start : start + self.max_ids_per_request])
                req_id = self._next_req_id
                self._next_req_id = (self._next_req_id + 1) & 0xFFFFFFFF
                self._inflight[req_id] = (peer, batch, current_round)
                for event_id in batch:
                    self._pending[event_id].inflight_req = req_id
                self.stats.requests_sent += 1
                requests.append((peer, PayloadRequest(req_id=req_id, ids=batch)))
        return requests

    def _expire(self, current_round: int) -> None:
        expired = [
            req_id
            for req_id, (_, _, sent_round) in self._inflight.items()
            if current_round - sent_round >= self.timeout_rounds
        ]
        for req_id in expired:
            _, ids, _ = self._inflight.pop(req_id)
            for event_id in ids:
                state = self._pending.get(event_id)
                if state is not None and state.inflight_req == req_id:
                    state.inflight_req = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PullManager(node={self.node_id}, pending={len(self._pending)}, "
            f"inflight={len(self._inflight)})"
        )
