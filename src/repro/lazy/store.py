"""Per-node payload retention for lazy-push dissemination.

A :class:`PayloadStore` holds the full events this node can serve to
pulling peers: its own broadcasts (stored at broadcast time) and every
payload it pulled itself. Retention is TTL-bounded and keyed off the
ordering window: an event older than ``retention_rounds`` rounds can no
longer circulate (its relay TTL expired at most ``ttl`` rounds after it
was broadcast, and delivery lags dissemination by at most another
ordering window), so no correct peer will still pull it and the entry
is garbage-collected.

Membership in the store is also how the delivery gate decides whether
the payload of an event has arrived — a plain ``payload is None`` test
cannot work, because ``None`` is a perfectly legal application payload.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

from ..core.event import Event, EventId


@dataclass(slots=True)
class PayloadStoreStats:
    """Counters for one node's payload store."""

    stored: int = 0
    served: int = 0
    evicted: int = 0
    misses: int = 0


class PayloadStore:
    """TTL-bounded map of event id to full event.

    Args:
        retention_rounds: Rounds an entry survives after it was stored.
            Must cover the ordering window (at least ``2 * ttl`` plus
            latency slack) so every correct peer's pull — including
            retries — finds the payload still present.
    """

    def __init__(self, retention_rounds: int) -> None:
        if retention_rounds < 1:
            raise ValueError(
                f"retention_rounds must be >= 1, got {retention_rounds}"
            )
        self.retention_rounds = retention_rounds
        self.stats = PayloadStoreStats()
        self._events: Dict[EventId, Event] = {}
        # Insertion queue for O(1) amortized GC: rounds only grow, so
        # expired entries cluster at the front.
        self._ages: Deque[Tuple[int, EventId]] = collections.deque()

    def __len__(self) -> int:
        return len(self._events)

    def __contains__(self, event_id: EventId) -> bool:
        return event_id in self._events

    def put(self, event: Event, round_no: int) -> bool:
        """Store *event* (idempotent); returns whether it was new."""
        if event.id in self._events:
            return False
        self._events[event.id] = event
        self._ages.append((round_no, event.id))
        self.stats.stored += 1
        return True

    def get(self, event_id: EventId) -> Optional[Event]:
        """The stored full event, or ``None`` (local lookup, unstated)."""
        return self._events.get(event_id)

    def serve(self, event_id: EventId) -> Optional[Event]:
        """Like :meth:`get` but counts a successful pull served."""
        event = self._events.get(event_id)
        if event is None:
            self.stats.misses += 1
        else:
            self.stats.served += 1
        return event

    def gc(self, current_round: int) -> int:
        """Evict entries stored more than ``retention_rounds`` ago."""
        horizon = current_round - self.retention_rounds
        evicted = 0
        ages = self._ages
        while ages and ages[0][0] < horizon:
            _, event_id = ages.popleft()
            if self._events.pop(event_id, None) is not None:
                evicted += 1
        self.stats.evicted += evicted
        return evicted

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PayloadStore(held={len(self._events)}, "
            f"retention={self.retention_rounds})"
        )
