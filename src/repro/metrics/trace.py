"""Run-trace export and timeline statistics.

Experiments often outlive one Python session: this module serializes a
:class:`~repro.metrics.collector.DeliveryCollector` to JSON-lines for
archival / external plotting, loads traces back, and aggregates
per-round timelines (broadcasts and deliveries per round interval) —
the raw material behind delivery-delay CDFs and churn timelines.

Durable delivery logs (:mod:`repro.storage`) are a second trace
source: :func:`load_delivery_log` / :func:`load_delivery_logs` rebuild
a collector straight from the segments a journaled node wrote, so the
same order/hole analyses — and
:class:`repro.workloads.replay.TraceReplayWorkload` — run over what
actually hit disk.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Union

from ..core.errors import ReproError
from ..core.event import Event
from .collector import DeliveryCollector


class TraceError(ReproError):
    """Raised on malformed trace files."""


def export_trace(collector: DeliveryCollector, path: Union[str, Path]) -> int:
    """Write the collector's full record to *path* as JSON lines.

    One object per line, ``kind`` in ``{broadcast, delivery, node}``.
    Returns the number of lines written. Payloads must be
    JSON-serializable (non-serializable payloads are stored via
    ``repr`` with a marker, so the trace always writes).
    """
    path = Path(path)
    lines = 0
    with path.open("w", encoding="utf-8") as fh:
        for node_id, lifetime in sorted(
            (nid, collector.lifetime_of(nid))
            for nid in _tracked_nodes(collector)
        ):
            if lifetime is None:
                continue
            fh.write(
                json.dumps(
                    {
                        "kind": "node",
                        "node": node_id,
                        "joined": lifetime.joined,
                        "left": lifetime.left,
                    }
                )
                + "\n"
            )
            lines += 1
        for record in collector.broadcasts():
            event = record.event
            fh.write(
                json.dumps(
                    {
                        "kind": "broadcast",
                        "time": record.time,
                        "id": list(event.id),
                        "ts": event.ts,
                        "src": event.source_id,
                        "payload": _jsonable(event.payload),
                    }
                )
                + "\n"
            )
            lines += 1
        for record in collector.deliveries():
            fh.write(
                json.dumps(
                    {
                        "kind": "delivery",
                        "time": record.time,
                        "node": record.node_id,
                        "id": list(record.event_id),
                    }
                )
                + "\n"
            )
            lines += 1
    return lines


def load_trace(path: Union[str, Path]) -> DeliveryCollector:
    """Rebuild a collector from a trace written by :func:`export_trace`.

    Delivery-delay, hole and order analyses all work on the loaded
    collector exactly as on a live one.
    """
    path = Path(path)
    collector = DeliveryCollector()
    events: Dict[tuple, Event] = {}
    pending_deliveries: List[dict] = []
    for line_no, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
            kind = obj["kind"]
        except (ValueError, KeyError) as exc:
            raise TraceError(f"{path}:{line_no}: malformed trace line: {exc}") from exc
        if kind == "node":
            collector.record_node_added(obj["node"], obj["joined"])
            if obj.get("left") is not None:
                collector.record_node_removed(obj["node"], obj["left"])
        elif kind == "broadcast":
            event = Event(
                id=tuple(obj["id"]),  # type: ignore[arg-type]
                ts=obj["ts"],
                source_id=obj["src"],
                payload=obj.get("payload"),
            )
            events[tuple(obj["id"])] = event
            collector.record_broadcast(event, obj["time"])
        elif kind == "delivery":
            pending_deliveries.append(obj)
        else:
            raise TraceError(f"{path}:{line_no}: unknown record kind {kind!r}")
    for obj in pending_deliveries:
        event = events.get(tuple(obj["id"]))
        if event is None:
            raise TraceError(
                f"delivery of unknown event {obj['id']} in {path}"
            )
        collector.record_delivery(obj["node"], event, obj["time"])
    return collector


def load_delivery_log(
    directory: Union[str, Path],
    node_id: int | None = None,
    collector: DeliveryCollector | None = None,
) -> DeliveryCollector:
    """Rebuild a collector from one node's durable delivery log.

    *directory* is a node storage directory as laid out by
    :class:`repro.storage.journal.DeliveryJournal` (segments under
    ``log/``), or the segment directory itself. Each durable delivery
    record becomes one broadcast record (keyed by the event, timed at
    its logical timestamp) plus one delivery by *node_id* — enough for
    order/hole analysis and for
    :class:`repro.workloads.replay.TraceReplayWorkload` to re-drive the
    recorded schedule. Broadcast sequence markers carry no payload and
    are skipped. Torn or corrupt segments are absorbed exactly as in
    recovery: the read stops at the last valid record.

    Args:
        directory: Node storage directory or ``log/`` directory.
        node_id: Delivering node recorded into the collector; inferred
            from a ``node-<id>`` directory name when omitted (0 as the
            last resort).
        collector: Merge target (used by :func:`load_delivery_logs`);
            a fresh collector is created when omitted.
    """
    from ..storage.log import DeliveryLog
    from ..storage.records import DeliveryRecord as DurableDelivery
    from ..storage.recovery import LOG_SUBDIR

    directory = Path(directory)
    log_dir = directory / LOG_SUBDIR if (directory / LOG_SUBDIR).is_dir() else directory
    if not log_dir.is_dir():
        raise TraceError(f"no delivery log at {directory}")
    if node_id is None:
        name = directory.name
        if name == LOG_SUBDIR:
            name = directory.parent.name
        node_id = int(name[5:]) if name.startswith("node-") and name[5:].isdigit() else 0
    collector = collector if collector is not None else DeliveryCollector()
    log = DeliveryLog(log_dir)
    try:
        for record in log.records():
            if not isinstance(record, DurableDelivery):
                continue
            event = record.event
            if event.id not in collector.known_broadcast_ids():
                collector.record_broadcast(event, event.ts)
            collector.record_delivery(node_id, event, event.ts)
    finally:
        log.close()
    return collector


def load_delivery_logs(root: Union[str, Path]) -> DeliveryCollector:
    """Merge every ``node-<id>/`` delivery log under *root* into one
    collector — the durable view of a whole journaled cluster
    (``storage_dir`` of a :class:`~repro.sim.cluster.SimCluster` or
    :class:`~repro.runtime.cluster.AsyncCluster`)."""
    root = Path(root)
    node_dirs = sorted(
        p for p in root.glob("node-*") if p.is_dir() and p.name[5:].isdigit()
    )
    if not node_dirs:
        raise TraceError(f"no node-<id> storage directories under {root}")
    collector = DeliveryCollector()
    for node_dir in node_dirs:
        load_delivery_log(node_dir, collector=collector)
    return collector


@dataclass(frozen=True, slots=True)
class RoundStats:
    """Activity within one round interval."""

    round_index: int
    broadcasts: int
    deliveries: int


def round_timeline(
    collector: DeliveryCollector, round_interval: int
) -> List[RoundStats]:
    """Aggregate broadcasts/deliveries per round interval.

    Returns one entry per interval from 0 through the last interval
    with any activity (empty intervals included, so the list plots
    directly as a timeline).
    """
    if round_interval <= 0:
        raise TraceError(f"round_interval must be > 0, got {round_interval}")
    broadcasts: Dict[int, int] = {}
    deliveries: Dict[int, int] = {}
    for record in collector.broadcasts():
        idx = record.time // round_interval
        broadcasts[idx] = broadcasts.get(idx, 0) + 1
    for record in collector.deliveries():
        idx = record.time // round_interval
        deliveries[idx] = deliveries.get(idx, 0) + 1
    if not broadcasts and not deliveries:
        return []
    last = max(list(broadcasts) + list(deliveries))
    return [
        RoundStats(
            round_index=idx,
            broadcasts=broadcasts.get(idx, 0),
            deliveries=deliveries.get(idx, 0),
        )
        for idx in range(last + 1)
    ]


def _tracked_nodes(collector: DeliveryCollector) -> Iterable[int]:
    return list(collector._lifetimes)  # noqa: SLF001 - same-package helper


def _jsonable(payload) -> object:
    try:
        json.dumps(payload)
        return payload
    except (TypeError, ValueError):
        return {"__repr__": repr(payload)}
