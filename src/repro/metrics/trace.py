"""Run-trace export and timeline statistics.

Experiments often outlive one Python session: this module serializes a
:class:`~repro.metrics.collector.DeliveryCollector` to JSON-lines for
archival / external plotting, loads traces back, and aggregates
per-round timelines (broadcasts and deliveries per round interval) —
the raw material behind delivery-delay CDFs and churn timelines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Union

from ..core.errors import ReproError
from ..core.event import Event
from .collector import DeliveryCollector


class TraceError(ReproError):
    """Raised on malformed trace files."""


def export_trace(collector: DeliveryCollector, path: Union[str, Path]) -> int:
    """Write the collector's full record to *path* as JSON lines.

    One object per line, ``kind`` in ``{broadcast, delivery, node}``.
    Returns the number of lines written. Payloads must be
    JSON-serializable (non-serializable payloads are stored via
    ``repr`` with a marker, so the trace always writes).
    """
    path = Path(path)
    lines = 0
    with path.open("w", encoding="utf-8") as fh:
        for node_id, lifetime in sorted(
            (nid, collector.lifetime_of(nid))
            for nid in _tracked_nodes(collector)
        ):
            if lifetime is None:
                continue
            fh.write(
                json.dumps(
                    {
                        "kind": "node",
                        "node": node_id,
                        "joined": lifetime.joined,
                        "left": lifetime.left,
                    }
                )
                + "\n"
            )
            lines += 1
        for record in collector.broadcasts():
            event = record.event
            fh.write(
                json.dumps(
                    {
                        "kind": "broadcast",
                        "time": record.time,
                        "id": list(event.id),
                        "ts": event.ts,
                        "src": event.source_id,
                        "payload": _jsonable(event.payload),
                    }
                )
                + "\n"
            )
            lines += 1
        for record in collector.deliveries():
            fh.write(
                json.dumps(
                    {
                        "kind": "delivery",
                        "time": record.time,
                        "node": record.node_id,
                        "id": list(record.event_id),
                    }
                )
                + "\n"
            )
            lines += 1
    return lines


def load_trace(path: Union[str, Path]) -> DeliveryCollector:
    """Rebuild a collector from a trace written by :func:`export_trace`.

    Delivery-delay, hole and order analyses all work on the loaded
    collector exactly as on a live one.
    """
    path = Path(path)
    collector = DeliveryCollector()
    events: Dict[tuple, Event] = {}
    pending_deliveries: List[dict] = []
    for line_no, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
            kind = obj["kind"]
        except (ValueError, KeyError) as exc:
            raise TraceError(f"{path}:{line_no}: malformed trace line: {exc}") from exc
        if kind == "node":
            collector.record_node_added(obj["node"], obj["joined"])
            if obj.get("left") is not None:
                collector.record_node_removed(obj["node"], obj["left"])
        elif kind == "broadcast":
            event = Event(
                id=tuple(obj["id"]),  # type: ignore[arg-type]
                ts=obj["ts"],
                source_id=obj["src"],
                payload=obj.get("payload"),
            )
            events[tuple(obj["id"])] = event
            collector.record_broadcast(event, obj["time"])
        elif kind == "delivery":
            pending_deliveries.append(obj)
        else:
            raise TraceError(f"{path}:{line_no}: unknown record kind {kind!r}")
    for obj in pending_deliveries:
        event = events.get(tuple(obj["id"]))
        if event is None:
            raise TraceError(
                f"delivery of unknown event {obj['id']} in {path}"
            )
        collector.record_delivery(obj["node"], event, obj["time"])
    return collector


@dataclass(frozen=True, slots=True)
class RoundStats:
    """Activity within one round interval."""

    round_index: int
    broadcasts: int
    deliveries: int


def round_timeline(
    collector: DeliveryCollector, round_interval: int
) -> List[RoundStats]:
    """Aggregate broadcasts/deliveries per round interval.

    Returns one entry per interval from 0 through the last interval
    with any activity (empty intervals included, so the list plots
    directly as a timeline).
    """
    if round_interval <= 0:
        raise TraceError(f"round_interval must be > 0, got {round_interval}")
    broadcasts: Dict[int, int] = {}
    deliveries: Dict[int, int] = {}
    for record in collector.broadcasts():
        idx = record.time // round_interval
        broadcasts[idx] = broadcasts.get(idx, 0) + 1
    for record in collector.deliveries():
        idx = record.time // round_interval
        deliveries[idx] = deliveries.get(idx, 0) + 1
    if not broadcasts and not deliveries:
        return []
    last = max(list(broadcasts) + list(deliveries))
    return [
        RoundStats(
            round_index=idx,
            broadcasts=broadcasts.get(idx, 0),
            deliveries=deliveries.get(idx, 0),
        )
        for idx in range(last + 1)
    ]


def _tracked_nodes(collector: DeliveryCollector) -> Iterable[int]:
    return list(collector._lifetimes)  # noqa: SLF001 - same-package helper


def _jsonable(payload) -> object:
    try:
        json.dumps(payload)
        return payload
    except (TypeError, ValueError):
        return {"__repr__": repr(payload)}
