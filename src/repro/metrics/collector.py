"""Delivery instrumentation for experiments (paper §6).

The paper's evaluation focuses on the *delivery delay* — "the time
elapsed between an event creation and its reception" — together with
the absence of holes and order violations. :class:`DeliveryCollector`
records every broadcast and delivery in a run and derives:

* the delay samples that back all the CDF figures (6, 7a, 7b, 8, 9, 10);
* per-process delivery sequences for the total-order checker;
* hole accounting restricted to processes "that remained in the system
  long enough" (paper §6, churn experiments).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.event import Event, EventId, OrderKey
from ..sync.protocol import canonical_event_bytes


def event_fingerprint(event: Event) -> int:
    """CRC32 of the event's canonical bytes.

    Two sightings of the same ``(source, seq)`` id with different
    fingerprints mean different *content* travelled under one identity
    — the observable of forgery and equivocation
    (:func:`repro.metrics.checker.check_authenticity`).
    """
    return zlib.crc32(canonical_event_bytes(event))


@dataclass(slots=True)
class BroadcastRecord:
    """One broadcast: who sent what, when."""

    event: Event
    time: int


@dataclass(slots=True)
class DeliveryRecord:
    """One delivery: which process delivered which event, when.

    ``fingerprint`` is only populated by fingerprinting collectors
    (``DeliveryCollector(fingerprints=True)``); ``None`` otherwise.
    """

    node_id: int
    event_id: EventId
    time: int
    fingerprint: Optional[int] = None


@dataclass(slots=True)
class NodeLifetime:
    """Join/leave interval of one process (end ``None`` = still alive)."""

    joined: int
    left: Optional[int] = None


class DeliveryCollector:
    """Accumulates broadcast/delivery records for one simulation run.

    Args:
        fingerprints: When ``True``, every broadcast and delivery also
            records :func:`event_fingerprint` of the event's canonical
            bytes, enabling forgery/equivocation detection
            (:func:`repro.metrics.checker.check_authenticity`). Off by
            default — fingerprinting serializes every payload on the
            delivery hot path, which would tax benchmark timings.
    """

    def __init__(self, fingerprints: bool = False) -> None:
        self.fingerprints = bool(fingerprints)
        self._broadcasts: Dict[EventId, BroadcastRecord] = {}
        self._deliveries: List[DeliveryRecord] = []
        # Per-node delivery sequence as order keys, in delivery order.
        self._sequences: Dict[int, List[OrderKey]] = {}
        self._delivered_sets: Dict[int, Set[EventId]] = {}
        self._lifetimes: Dict[int, NodeLifetime] = {}
        self._order_keys: Dict[EventId, OrderKey] = {}
        # Genuine fingerprint per broadcast id (fingerprints=True only).
        self._genuine: Dict[EventId, int] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_node_added(self, node_id: int, time: int) -> None:
        """A process joined the system at *time*."""
        self._lifetimes[node_id] = NodeLifetime(joined=time)

    def record_node_removed(self, node_id: int, time: int) -> None:
        """A process left (or was churned out) at *time*."""
        lifetime = self._lifetimes.get(node_id)
        if lifetime is not None:
            lifetime.left = time

    def record_broadcast(self, event: Event, time: int) -> None:
        """An event was EpTO-broadcast at *time*."""
        self._broadcasts[event.id] = BroadcastRecord(event=event, time=time)
        self._order_keys[event.id] = event.order_key
        if self.fingerprints:
            self._genuine[event.id] = event_fingerprint(event)

    def record_delivery(self, node_id: int, event: Event, time: int) -> None:
        """*node_id* EpTO-delivered *event* at *time*."""
        fingerprint = event_fingerprint(event) if self.fingerprints else None
        self._deliveries.append(
            DeliveryRecord(
                node_id=node_id,
                event_id=event.id,
                time=time,
                fingerprint=fingerprint,
            )
        )
        self._sequences.setdefault(node_id, []).append(event.order_key)
        self._delivered_sets.setdefault(node_id, set()).add(event.id)
        self._order_keys.setdefault(event.id, event.order_key)

    # ------------------------------------------------------------------
    # Raw access
    # ------------------------------------------------------------------

    @property
    def broadcast_count(self) -> int:
        """Number of events broadcast during the run."""
        return len(self._broadcasts)

    @property
    def delivery_count(self) -> int:
        """Total (event, process) delivery pairs recorded."""
        return len(self._deliveries)

    def broadcasts(self) -> Sequence[BroadcastRecord]:
        """All broadcast records."""
        return list(self._broadcasts.values())

    def deliveries(self) -> Sequence[DeliveryRecord]:
        """All delivery records, in recording order."""
        return list(self._deliveries)

    def sequence_of(self, node_id: int) -> Sequence[OrderKey]:
        """Order keys delivered by *node_id*, in delivery order."""
        return tuple(self._sequences.get(node_id, ()))

    def delivered_ids_of(self, node_id: int) -> Set[EventId]:
        """Event ids delivered by *node_id*."""
        return set(self._delivered_sets.get(node_id, set()))

    def sequences(self) -> Dict[int, Sequence[OrderKey]]:
        """All per-node delivery sequences."""
        return {nid: tuple(seq) for nid, seq in self._sequences.items()}

    def known_broadcast_ids(self) -> Set[EventId]:
        """Ids of every event broadcast during the run."""
        return set(self._broadcasts)

    def lifetime_of(self, node_id: int) -> Optional[NodeLifetime]:
        """Join/leave interval of *node_id*, if tracked."""
        return self._lifetimes.get(node_id)

    def genuine_fingerprint(self, event_id: EventId) -> Optional[int]:
        """Fingerprint recorded at broadcast time for *event_id*
        (``None`` when unknown or fingerprinting is off)."""
        return self._genuine.get(event_id)

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------

    def delivery_delays(self) -> List[int]:
        """Delay samples: delivery time minus broadcast time, per pair.

        Deliveries of events whose broadcast was not recorded (none in a
        correctly wired run) are skipped.
        """
        delays: List[int] = []
        broadcasts = self._broadcasts
        for record in self._deliveries:
            origin = broadcasts.get(record.event_id)
            if origin is not None:
                delays.append(record.time - origin.time)
        return delays

    def stable_nodes(self, since: int, until: int) -> Set[int]:
        """Processes alive for the whole ``[since, until]`` window.

        The churn experiments evaluate "processes that remained in the
        system long enough" (paper §6); this selects exactly those.
        """
        stable: Set[int] = set()
        for node_id, lifetime in self._lifetimes.items():
            if lifetime.joined <= since and (
                lifetime.left is None or lifetime.left >= until
            ):
                stable.add(node_id)
        return stable

    def holes(self, nodes: Sequence[int] | Set[int] | None = None) -> List[Tuple[int, EventId]]:
        """Missing deliveries: ``(node, event)`` pairs with a hole.

        A *hole* at process ``p`` for event ``e`` exists when ``p``
        delivered some event ordered after ``e`` but never delivered
        ``e`` itself (paper §2: holes in the sequence of delivered
        events). Only events delivered by at least one checked node are
        considered — an event that vanished entirely (e.g. its
        broadcaster was churned out before relaying it) violates no
        property, since agreement is conditional on *some* process
        delivering. Restricting *nodes* to :meth:`stable_nodes`
        reproduces the churn experiments' accounting; ``None`` checks
        every process that delivered anything.
        """
        if nodes is None:
            nodes = set(self._sequences)
        holes: List[Tuple[int, EventId]] = []
        delivered_by_any: Set[EventId] = set()
        for node_id in nodes:
            delivered_by_any |= self._delivered_sets.get(node_id, set())
        # Events each node *should* have: all events ordered before its
        # last delivered key that somebody actually delivered.
        all_events = sorted(
            (
                rec
                for rec in self._broadcasts.values()
                if rec.event.id in delivered_by_any
            ),
            key=lambda rec: rec.event.order_key,
        )
        for node_id in nodes:
            seq = self._sequences.get(node_id, [])
            if not seq:
                continue
            last_key = max(seq)
            delivered = self._delivered_sets.get(node_id, set())
            for record in all_events:
                if record.event.order_key > last_key:
                    break
                if record.event.id not in delivered:
                    holes.append((node_id, record.event.id))
        return holes

    def undelivered_events(self, nodes: Sequence[int] | Set[int]) -> List[Tuple[int, EventId]]:
        """Every ``(node, event)`` pair that never delivered, hole or not.

        Unlike :meth:`holes` this also counts events after a node's last
        delivery (useful for agreement accounting at run end, once the
        system has quiesced).
        """
        missing: List[Tuple[int, EventId]] = []
        event_ids = self.known_broadcast_ids()
        for node_id in nodes:
            delivered = self._delivered_sets.get(node_id, set())
            for event_id in event_ids:
                if event_id not in delivered:
                    missing.append((node_id, event_id))
        return missing
