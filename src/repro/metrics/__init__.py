"""Run instrumentation: delivery metrics, spec checking, reporting."""

from .cdf import DelaySummary, cdf_at, cdf_points, percentile
from .checker import (
    AuthenticityReport,
    SpecReport,
    check_authenticity,
    check_integrity,
    check_pairwise_order,
    check_run,
    check_total_order,
    check_validity,
)
from .collector import (
    BroadcastRecord,
    DeliveryCollector,
    DeliveryRecord,
    NodeLifetime,
    event_fingerprint,
)
from .report import format_ascii_cdf, format_cdf_series, format_table
from .trace import (
    RoundStats,
    TraceError,
    export_trace,
    load_delivery_log,
    load_delivery_logs,
    load_trace,
    round_timeline,
)

__all__ = [
    "AuthenticityReport",
    "BroadcastRecord",
    "DelaySummary",
    "DeliveryCollector",
    "DeliveryRecord",
    "NodeLifetime",
    "RoundStats",
    "SpecReport",
    "TraceError",
    "cdf_at",
    "cdf_points",
    "check_authenticity",
    "check_integrity",
    "check_pairwise_order",
    "check_run",
    "check_total_order",
    "check_validity",
    "event_fingerprint",
    "export_trace",
    "format_ascii_cdf",
    "format_cdf_series",
    "format_table",
    "load_delivery_log",
    "load_delivery_logs",
    "load_trace",
    "percentile",
    "round_timeline",
]
