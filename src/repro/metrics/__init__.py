"""Run instrumentation: delivery metrics, spec checking, reporting."""

from .cdf import DelaySummary, cdf_at, cdf_points, percentile
from .checker import (
    SpecReport,
    check_integrity,
    check_pairwise_order,
    check_run,
    check_total_order,
    check_validity,
)
from .collector import (
    BroadcastRecord,
    DeliveryCollector,
    DeliveryRecord,
    NodeLifetime,
)
from .report import format_ascii_cdf, format_cdf_series, format_table
from .trace import (
    RoundStats,
    TraceError,
    export_trace,
    load_delivery_log,
    load_delivery_logs,
    load_trace,
    round_timeline,
)

__all__ = [
    "BroadcastRecord",
    "DelaySummary",
    "DeliveryCollector",
    "DeliveryRecord",
    "NodeLifetime",
    "RoundStats",
    "SpecReport",
    "TraceError",
    "cdf_at",
    "cdf_points",
    "check_integrity",
    "check_pairwise_order",
    "check_run",
    "check_total_order",
    "check_validity",
    "export_trace",
    "format_ascii_cdf",
    "format_cdf_series",
    "format_table",
    "load_delivery_log",
    "load_delivery_logs",
    "load_trace",
    "percentile",
    "round_timeline",
]
