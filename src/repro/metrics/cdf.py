"""CDF and summary-statistics helpers for the evaluation figures.

Every figure in the paper's §6 is a CDF of delivery delays;
:func:`cdf_points` produces the same curve from delay samples, and
:class:`DelaySummary` condenses a sample set into the statistics quoted
in the text (mean, standard deviation, percentiles).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


def percentile(samples: Sequence[float], p: float) -> float:
    """Linear-interpolation percentile (``p`` in ``[0, 100]``).

    Matches numpy's default ``linear`` method so results are directly
    comparable with ad-hoc analysis, without requiring numpy here.
    """
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (p / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high or ordered[low] == ordered[high]:
        return float(ordered[low])
    weight = rank - low
    return float(ordered[low]) * (1.0 - weight) + float(ordered[high]) * weight


def cdf_points(samples: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as ``(value, cumulative_percent)`` steps.

    Produces one point per distinct sample value, with the cumulative
    percentage of samples less than or equal to it — the exact curve
    plotted by the paper's figures.
    """
    if not samples:
        return []
    ordered = sorted(samples)
    total = len(ordered)
    points: List[Tuple[float, float]] = []
    for idx, value in enumerate(ordered, start=1):
        if idx == total or ordered[idx] != value:
            points.append((float(value), 100.0 * idx / total))
    return points


def cdf_at(samples: Sequence[float], value: float) -> float:
    """Fraction (in percent) of samples ``<= value``."""
    if not samples:
        return 0.0
    count = sum(1 for s in samples if s <= value)
    return 100.0 * count / len(samples)


@dataclass(frozen=True, slots=True)
class DelaySummary:
    """Summary statistics of a delay sample set."""

    count: int
    mean: float
    std: float
    minimum: float
    p5: float
    p50: float
    p95: float
    p99: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "DelaySummary":
        """Compute the summary of *samples* (must be non-empty)."""
        if not samples:
            raise ValueError("cannot summarize an empty sample set")
        n = len(samples)
        mean = sum(samples) / n
        variance = sum((s - mean) ** 2 for s in samples) / n
        return cls(
            count=n,
            mean=mean,
            std=math.sqrt(variance),
            minimum=float(min(samples)),
            p5=percentile(samples, 5),
            p50=percentile(samples, 50),
            p95=percentile(samples, 95),
            p99=percentile(samples, 99),
            maximum=float(max(samples)),
        )

    def as_row(self) -> dict[str, float]:
        """Flatten into a dict suitable for report tables."""
        return {
            "count": self.count,
            "mean": round(self.mean, 1),
            "std": round(self.std, 1),
            "min": self.minimum,
            "p5": round(self.p5, 1),
            "p50": round(self.p50, 1),
            "p95": round(self.p95, 1),
            "p99": round(self.p99, 1),
            "max": self.maximum,
        }
