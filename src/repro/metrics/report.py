"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper plots;
these helpers keep that output consistent: fixed-width tables for
parameter sweeps and coarse ASCII CDF curves for eyeballing shapes in a
terminal or CI log.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a fixed-width table with a header rule.

    Args:
        headers: Column titles.
        rows: Row cell values; ``str()`` is applied to each.

    Returns:
        The table as a single string (no trailing newline).
    """
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[idx]) for idx, cell in enumerate(cells))

    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def format_cdf_series(
    series: Dict[str, Sequence[Tuple[float, float]]],
    percentiles: Sequence[float] = (10, 25, 50, 75, 90, 99, 100),
) -> str:
    """Summarize several CDF curves at shared percentile cut points.

    Args:
        series: Label -> CDF points ``(value, cumulative_percent)`` as
            produced by :func:`repro.metrics.cdf.cdf_points`.
        percentiles: Which cumulative levels to tabulate.

    Returns:
        A table with one row per series and one column per percentile,
        containing the smallest value whose cumulative percentage
        reaches the level.
    """
    headers = ["series"] + [f"p{int(p)}" for p in percentiles]
    rows: List[List[object]] = []
    for label, points in series.items():
        row: List[object] = [label]
        for level in percentiles:
            value = next((v for v, c in points if c >= level), None)
            row.append("-" if value is None else f"{value:.0f}")
        rows.append(row)
    return format_table(headers, rows)


def format_ascii_cdf(
    points: Sequence[Tuple[float, float]],
    width: int = 60,
    height: int = 10,
) -> str:
    """Coarse ASCII plot of one CDF curve (for terminal eyeballing)."""
    if not points:
        return "(empty)"
    max_x = points[-1][0] or 1.0
    grid = [[" "] * width for _ in range(height)]
    for value, cum in points:
        col = min(width - 1, int(value / max_x * (width - 1)))
        row = min(height - 1, int((100.0 - cum) / 100.0 * (height - 1)))
        grid[row][col] = "*"
    lines = ["".join(row) for row in grid]
    lines.append("-" * width)
    lines.append(f"0{' ' * (width - len(str(int(max_x))) - 1)}{int(max_x)}")
    return "\n".join(lines)
