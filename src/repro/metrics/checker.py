"""Specification checker: the Table 1 properties over recorded runs.

Validates a finished run (a :class:`~repro.metrics.collector.DeliveryCollector`)
against the Total Order specification of paper Table 1:

* **Integrity** — every process delivered each event at most once, and
  only previously broadcast events;
* **Total Order** — any two processes delivering two common events
  delivered them in the same relative order (paper Figure 1b is the
  canonical violation);
* **Validity** — every correct (surviving) process delivered its own
  broadcasts;
* **Agreement** — holes (paper Figure 1a) are *allowed* but counted,
  so experiments can report them (the paper observed zero across all
  simulations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.event import EventId, OrderKey
from .collector import DeliveryCollector


@dataclass(slots=True)
class SpecReport:
    """Outcome of checking one run against the Table 1 specification.

    ``integrity_violations``, ``order_violations`` and
    ``validity_violations`` must be empty for any legal EpTO run
    (deterministic guarantees); ``holes`` may be non-empty with
    arbitrarily low probability (probabilistic agreement).
    """

    integrity_violations: List[str] = field(default_factory=list)
    order_violations: List[str] = field(default_factory=list)
    validity_violations: List[str] = field(default_factory=list)
    holes: List[Tuple[int, EventId]] = field(default_factory=list)
    checked_nodes: int = 0
    checked_events: int = 0

    @property
    def safety_ok(self) -> bool:
        """Deterministic safety: integrity + total order + validity."""
        return not (
            self.integrity_violations
            or self.order_violations
            or self.validity_violations
        )

    @property
    def agreement_ok(self) -> bool:
        """Probabilistic agreement held exactly (zero holes)."""
        return not self.holes

    def summary(self) -> str:
        """One-line human-readable verdict."""
        return (
            f"safety={'OK' if self.safety_ok else 'VIOLATED'} "
            f"holes={len(self.holes)} nodes={self.checked_nodes} "
            f"events={self.checked_events}"
        )


def check_integrity(
    collector: DeliveryCollector,
    exclude_nodes: Iterable[int] = (),
) -> List[str]:
    """Integrity: at most once, and only broadcast events (Table 1).

    *exclude_nodes* removes specific processes from the scan — used for
    state-scrambled nodes, whose in-memory delivery trace legitimately
    re-covers recovered ground after a journal rewind and is judged on
    the durable log instead (see :mod:`repro.experiments.drill`).
    """
    violations: List[str] = []
    known = collector.known_broadcast_ids()
    excluded = set(exclude_nodes)
    seen: Dict[int, Set[EventId]] = {}
    for record in collector.deliveries():
        if record.node_id in excluded:
            continue
        if record.event_id not in known:
            violations.append(
                f"node {record.node_id} delivered never-broadcast event "
                f"{record.event_id}"
            )
        delivered = seen.setdefault(record.node_id, set())
        if record.event_id in delivered:
            violations.append(
                f"node {record.node_id} delivered event {record.event_id} twice"
            )
        delivered.add(record.event_id)
    return violations


def check_total_order(sequences: Dict[int, Sequence[OrderKey]]) -> List[str]:
    """Total order: common events appear in the same relative order.

    Because EpTO's delivery order is the deterministic key order
    ``(ts, src, seq)``, it suffices to check that every process's
    sequence is strictly increasing in the key — two strictly
    increasing sequences over the same key space can never order a
    common pair differently. This turns the quadratic pairwise check
    into a linear one; the pairwise semantics (paper Figure 1b) are
    exercised directly in the test suite against adversarial sequences
    via :func:`check_pairwise_order`.
    """
    violations: List[str] = []
    for node_id, seq in sequences.items():
        for earlier, later in zip(seq, seq[1:]):
            if earlier >= later:
                violations.append(
                    f"node {node_id} delivered {later} after {earlier} "
                    f"(non-increasing order keys)"
                )
    return violations


def check_pairwise_order(
    seq_p: Sequence[OrderKey], seq_q: Sequence[OrderKey]
) -> List[Tuple[OrderKey, OrderKey]]:
    """Direct Figure 1 check between two delivery sequences.

    Returns the conflicting pairs, each normalized so the smaller order
    key comes first — the exact condition violated in paper Figure 1b.
    Quadratic in the common-event count; intended for tests and small
    diagnostics rather than full runs.
    """
    pos_p = {key: idx for idx, key in enumerate(seq_p)}
    common = [key for key in seq_q if key in pos_p]
    conflicts: List[Tuple[OrderKey, OrderKey]] = []
    pos_q = {key: idx for idx, key in enumerate(seq_q)}
    for i, first in enumerate(common):
        for second in common[i + 1 :]:
            p_order = pos_p[first] < pos_p[second]
            q_order = pos_q[first] < pos_q[second]
            if p_order != q_order:
                low, high = sorted((first, second))
                conflicts.append((low, high))
    return conflicts


def check_validity(
    collector: DeliveryCollector, correct_nodes: Set[int] | Sequence[int]
) -> List[str]:
    """Validity: correct processes delivered their own broadcasts."""
    violations: List[str] = []
    correct = set(correct_nodes)
    for record in collector.broadcasts():
        source = record.event.source_id
        if source not in correct:
            continue
        if record.event.id not in collector.delivered_ids_of(source):
            violations.append(
                f"correct node {source} never delivered its own event "
                f"{record.event.id}"
            )
    return violations


def check_run(
    collector: DeliveryCollector,
    correct_nodes: Set[int] | Sequence[int] | None = None,
    exclude_nodes: Iterable[int] = (),
) -> SpecReport:
    """Full Table 1 check of a recorded run.

    Args:
        collector: The run's recorded broadcasts and deliveries.
        correct_nodes: Processes expected to satisfy validity and to be
            hole-free; defaults to every process that delivered at
            least one event (i.e. the whole system when there is no
            churn).
        exclude_nodes: Processes dropped from every scan (integrity and
            order included) — state-scrambled nodes whose convergence
            is judged on their durable journal instead of the
            in-memory trace.
    """
    excluded = set(exclude_nodes)
    sequences = {
        nid: seq for nid, seq in collector.sequences().items() if nid not in excluded
    }
    if correct_nodes is None:
        correct_nodes = set(sequences)
    correct_set = set(correct_nodes) - excluded
    return SpecReport(
        integrity_violations=check_integrity(collector, excluded),
        order_violations=check_total_order(sequences),
        validity_violations=check_validity(collector, correct_set),
        holes=collector.holes(correct_set),
        checked_nodes=len(correct_set),
        checked_events=collector.broadcast_count,
    )


# ----------------------------------------------------------------------
# Authenticity (hostile-world extension)
# ----------------------------------------------------------------------


@dataclass(slots=True)
class AuthenticityReport:
    """Forgery/equivocation scan over a fingerprinting collector.

    ``forged_deliveries`` are deliveries whose event content differs
    from what its claimed source actually broadcast (or whose id was
    never broadcast at all); ``equivocated_events`` are ids delivered
    with two or more distinct contents across the checked nodes —
    divergent lies that survived to delivery. Both must be empty on an
    authenticated run (the acceptance criterion of
    docs/SECURITY.md).
    """

    forged_deliveries: List[str] = field(default_factory=list)
    equivocated_events: List[str] = field(default_factory=list)
    checked_deliveries: int = 0

    @property
    def ok(self) -> bool:
        """No forged or equivocated content reached a checked node."""
        return not (self.forged_deliveries or self.equivocated_events)

    def summary(self) -> str:
        """One-line human-readable verdict."""
        return (
            f"authenticity={'OK' if self.ok else 'VIOLATED'} "
            f"forged={len(self.forged_deliveries)} "
            f"equivocated={len(self.equivocated_events)} "
            f"deliveries={self.checked_deliveries}"
        )


def check_authenticity(
    collector: DeliveryCollector,
    correct_nodes: Optional[Iterable[int]] = None,
) -> AuthenticityReport:
    """Scan a fingerprinting collector for forged/equivocated content.

    Requires ``DeliveryCollector(fingerprints=True)``: every delivery's
    canonical-bytes fingerprint is compared against the fingerprint its
    claimed source recorded at broadcast time, and mutually against
    other checked nodes' sightings of the same id. *correct_nodes*
    restricts the scan (hostile nodes' own deliveries carry no
    guarantees); ``None`` checks every node.
    """
    report = AuthenticityReport()
    correct = None if correct_nodes is None else set(correct_nodes)
    sightings: Dict[EventId, Set[int]] = {}
    for record in collector.deliveries():
        if correct is not None and record.node_id not in correct:
            continue
        if record.fingerprint is None:
            continue  # non-fingerprinting collector or legacy record
        report.checked_deliveries += 1
        genuine = collector.genuine_fingerprint(record.event_id)
        if genuine is None:
            report.forged_deliveries.append(
                f"node {record.node_id} delivered never-broadcast event "
                f"{record.event_id}"
            )
        elif record.fingerprint != genuine:
            report.forged_deliveries.append(
                f"node {record.node_id} delivered forged content for event "
                f"{record.event_id}"
            )
        sightings.setdefault(record.event_id, set()).add(record.fingerprint)
    for event_id, fingerprints in sorted(sightings.items()):
        if len(fingerprints) > 1:
            report.equivocated_events.append(
                f"event {event_id} delivered with {len(fingerprints)} "
                f"distinct contents across correct nodes"
            )
    return report
