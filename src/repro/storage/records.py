"""Binary record codec for the durable delivery log.

Two record kinds flow through a :class:`~repro.storage.log.DeliveryLog`:

* **delivery** — one totally ordered event the node EpTO-delivered,
  carrying everything needed to rebuild the :class:`~repro.core.event.Event`
  (``ts``, ``source_id``, ``seq``, JSON payload). Appended in delivery
  order, so the log *is* the node's delivery sequence and replaying it
  re-applies commands in total order.
* **broadcast marker** — the per-source sequence number of an event
  this node EpTO-broadcast. Markers exist so a same-identity restart
  can resume its event-id sequence past everything it ever *issued*,
  not merely everything it delivered — an event broadcast moments
  before the crash may still be in flight, and reissuing its
  ``(source, seq)`` id would violate integrity.

The layout deliberately mirrors :mod:`repro.runtime.codec` (fixed
big-endian structs plus JSON payloads, never pickle): decoding a log
written by a crashed — or malicious — process must not execute code.
Framing (length prefix + CRC32) lives in :mod:`repro.storage.log`;
this module only encodes and decodes the frame payloads.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Union

from ..core.errors import StorageError
from ..core.event import Event

#: Payload kind tags (first byte of every record payload).
KIND_DELIVERY = 1
KIND_BROADCAST = 2

_DELIVERY_HEAD = struct.Struct("!BqqqI")  # kind, ts, source, seq, payload_len
_BROADCAST = struct.Struct("!Bq")  # kind, seq


@dataclass(frozen=True, slots=True)
class DeliveryRecord:
    """One delivered event, as persisted."""

    event: Event


@dataclass(frozen=True, slots=True)
class BroadcastMarker:
    """Sequence-number high-water mark of a local broadcast."""

    seq: int


#: Everything a delivery log can hold.
LogRecord = Union[DeliveryRecord, BroadcastMarker]


def encode_record(record: LogRecord) -> bytes:
    """Serialize *record* into an (unframed) payload.

    Raises:
        StorageError: If the event payload is not JSON-serializable or
            the record type is unknown.
    """
    if isinstance(record, DeliveryRecord):
        event = record.event
        try:
            payload = json.dumps(event.payload).encode()
        except (TypeError, ValueError) as exc:
            raise StorageError(
                f"payload of event {event.id} is not JSON-serializable: {exc}"
            ) from exc
        return (
            _DELIVERY_HEAD.pack(
                KIND_DELIVERY, event.ts, event.source_id, event.seq, len(payload)
            )
            + payload
        )
    if isinstance(record, BroadcastMarker):
        return _BROADCAST.pack(KIND_BROADCAST, record.seq)
    raise StorageError(f"cannot encode log record of type {type(record).__name__}")


def decode_record(payload: bytes) -> LogRecord:
    """Parse one frame payload back into a record.

    Raises:
        StorageError: On any malformed payload. The log reader treats
            this exactly like a CRC mismatch — stop, never skip.
    """
    if not payload:
        raise StorageError("empty log record payload")
    kind = payload[0]
    if kind == KIND_DELIVERY:
        if len(payload) < _DELIVERY_HEAD.size:
            raise StorageError("truncated delivery record header")
        _, ts, source, seq, payload_len = _DELIVERY_HEAD.unpack_from(payload)
        raw = payload[_DELIVERY_HEAD.size :]
        if len(raw) != payload_len:
            raise StorageError(
                f"delivery record payload is {len(raw)} bytes, expected {payload_len}"
            )
        try:
            event_payload = json.loads(raw.decode())
        except (ValueError, UnicodeDecodeError) as exc:
            raise StorageError(f"corrupt event payload: {exc}") from exc
        return DeliveryRecord(
            Event(id=(source, seq), ts=ts, source_id=source, payload=event_payload)
        )
    if kind == KIND_BROADCAST:
        if len(payload) != _BROADCAST.size:
            raise StorageError(
                f"broadcast marker is {len(payload)} bytes, expected {_BROADCAST.size}"
            )
        _, seq = _BROADCAST.unpack(payload)
        if seq < 0:
            raise StorageError(f"negative broadcast sequence {seq}")
        return BroadcastMarker(seq)
    raise StorageError(f"unknown log record kind {kind}")
