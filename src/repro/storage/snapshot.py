"""Snapshot store for replicated state-machine state.

A snapshot freezes everything the delivery log would otherwise have to
replay: the machine state (whatever :meth:`StateMachine.snapshot`
returns, as JSON), the order key of the last delivery folded into it,
the next broadcast sequence number, and the total applied count. After
a snapshot, log segments at or below the snapshot's key are dead
weight and can be pruned (:meth:`repro.storage.log.DeliveryLog.truncate_upto`)
— the checkpoint/truncate cycle of every WAL-based store.

Snapshots are written crash-atomically: serialize to a temp file in
the same directory, ``fsync`` it, then ``os.replace`` onto the final
name (atomic on POSIX within one filesystem). A crash mid-save leaves
either the old set of snapshots or the old set plus a complete new one
— never a half-written file under a valid name. Each file embeds a
CRC32 of its body, and :meth:`SnapshotStore.load_latest` falls back to
the next-newest snapshot when the newest fails validation, which is
why ``retain`` defaults to keeping more than one.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from ..core.errors import StorageError
from ..core.event import OrderKey

_SNAP_PREFIX = "snap-"
_SNAP_SUFFIX = ".json"


def _snapshot_name(index: int) -> str:
    return f"{_SNAP_PREFIX}{index:08d}{_SNAP_SUFFIX}"


def _snapshot_index(path: Path) -> Optional[int]:
    name = path.name
    if not (name.startswith(_SNAP_PREFIX) and name.endswith(_SNAP_SUFFIX)):
        return None
    digits = name[len(_SNAP_PREFIX) : -len(_SNAP_SUFFIX)]
    return int(digits) if digits.isdigit() else None


@dataclass(frozen=True, slots=True)
class Snapshot:
    """One durable checkpoint of a replica.

    Attributes:
        index: Monotonically increasing snapshot number.
        state: The machine state as returned by ``StateMachine.snapshot``
            (round-tripped through JSON: tuples come back as lists —
            machines' ``restore`` implementations accept either).
        last_delivered_key: Order key ``(ts, src, seq)`` of the newest
            delivery folded into *state*; ``None`` when nothing was
            delivered yet.
        next_seq: Broadcast sequence the node must resume from.
        applied_count: Total commands applied into *state*.
        source_watermarks: Per-source high watermarks (source id ->
            highest delivered sequence) as of this checkpoint; the
            digest seed for anti-entropy (:mod:`repro.sync`). Empty for
            snapshots written before the field existed.
    """

    index: int
    state: Any
    last_delivered_key: Optional[OrderKey]
    next_seq: int
    applied_count: int
    source_watermarks: Dict[int, int] = field(default_factory=dict)


class SnapshotStore:
    """Atomic, retained snapshots in one directory.

    Args:
        directory: Snapshot directory; created (with parents) if missing.
        retain: How many newest snapshots to keep on :meth:`save`
            (minimum 1; keep >= 2 so a latest-snapshot corruption still
            recovers from the previous one).
    """

    def __init__(self, directory: Union[str, Path], retain: int = 2) -> None:
        if retain < 1:
            raise StorageError(f"retain must be >= 1, got {retain}")
        self.directory = Path(directory)
        self.retain = retain
        #: Snapshot files that failed validation during loads.
        self.rejected: List[str] = []
        self.directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Saving
    # ------------------------------------------------------------------

    def save(
        self,
        state: Any,
        last_delivered_key: Optional[OrderKey],
        next_seq: int,
        applied_count: int = 0,
        source_watermarks: Optional[Mapping[int, int]] = None,
    ) -> Snapshot:
        """Write the next snapshot atomically; returns it.

        Raises:
            StorageError: If *state* is not JSON-serializable.
        """
        index = (self._latest_index() or 0) + 1
        watermarks = {
            int(src): int(seq) for src, seq in (source_watermarks or {}).items()
        }
        body = {
            "index": index,
            "state": state,
            "last_delivered_key": (
                list(last_delivered_key) if last_delivered_key is not None else None
            ),
            "next_seq": int(next_seq),
            "applied_count": int(applied_count),
            # JSON object keys are strings; loads convert back to int.
            "source_watermarks": {
                str(src): seq for src, seq in sorted(watermarks.items())
            },
        }
        try:
            encoded = json.dumps(body, sort_keys=True)
        except (TypeError, ValueError) as exc:
            raise StorageError(
                f"snapshot state is not JSON-serializable: {exc}"
            ) from exc
        document = json.dumps(
            {"crc": zlib.crc32(encoded.encode()), "body": body}, sort_keys=True
        )

        final = self.directory / _snapshot_name(index)
        tmp = final.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(document)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)
        self._prune()
        return Snapshot(
            index=index,
            state=state,
            last_delivered_key=last_delivered_key,
            next_seq=int(next_seq),
            applied_count=int(applied_count),
            source_watermarks=watermarks,
        )

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def load_latest(self) -> Optional[Snapshot]:
        """The newest snapshot that validates, or ``None``.

        A snapshot whose CRC or structure fails validation is recorded
        in :attr:`rejected` and the next-newest is tried — corruption
        of the latest checkpoint degrades recovery (more log replay),
        it must not abort it.
        """
        for path in sorted(
            self._paths(), key=lambda p: _snapshot_index(p), reverse=True  # type: ignore[arg-type, return-value]
        ):
            snapshot = self._load(path)
            if snapshot is not None:
                return snapshot
            self.rejected.append(path.name)
        return None

    def indices(self) -> List[int]:
        """Snapshot indices currently on disk, oldest first."""
        return sorted(
            idx for path in self._paths() if (idx := _snapshot_index(path)) is not None
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _load(self, path: Path) -> Optional[Snapshot]:
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
            body = document["body"]
            encoded = json.dumps(body, sort_keys=True)
            if zlib.crc32(encoded.encode()) != document["crc"]:
                return None
            key = body["last_delivered_key"]
            return Snapshot(
                index=int(body["index"]),
                state=body["state"],
                last_delivered_key=tuple(key) if key is not None else None,
                next_seq=int(body["next_seq"]),
                applied_count=int(body["applied_count"]),
                source_watermarks={
                    int(src): int(seq)
                    for src, seq in (body.get("source_watermarks") or {}).items()
                },
            )
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def _paths(self) -> List[Path]:
        return [
            path for path in self.directory.iterdir() if _snapshot_index(path) is not None
        ]

    def _latest_index(self) -> Optional[int]:
        indices = self.indices()
        return indices[-1] if indices else None

    def _prune(self) -> None:
        paths = sorted(self._paths(), key=lambda p: _snapshot_index(p))  # type: ignore[arg-type, return-value]
        for path in paths[: -self.retain]:
            path.unlink()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SnapshotStore(dir={str(self.directory)!r}, "
            f"snapshots={len(self._paths())})"
        )
