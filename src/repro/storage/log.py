"""Segmented, CRC-checksummed append-only delivery log.

The write-ahead half of the crash-recovery subsystem: every EpTO
delivery (and every locally issued broadcast sequence number) is
appended as one framed record, so a process restarted under the same
identity can rebuild exactly what it had delivered — the durable
counterpart of the in-memory journals the clusters keep.

On-disk layout
--------------

A log is a directory of segment files named ``seg-<8-digit index>.log``.
Each segment is a sequence of frames::

    frame: length u32 | crc32 u32 | payload (length bytes)

where ``crc32`` covers the payload only and the payload is one record
from :mod:`repro.storage.records`. Segments rotate once they exceed
``segment_max_bytes``; only the highest-indexed segment is ever
appended to, so older ("sealed") segments are immutable and can be
deleted wholesale when a snapshot covers them (:meth:`DeliveryLog.truncate_upto`).

Failure handling
----------------

* **Torn tail** — a crash mid-``write`` leaves a partial frame at the
  end of the active segment. Opening for append scans the tail segment
  and truncates it back to the last frame boundary that checks out
  (standard WAL repair), so the next append never lands after garbage.
* **Corrupt interior** — a CRC mismatch anywhere makes the reader
  *stop at the last valid record*. It never raises (crashing on the
  artifact of the crash being recovered from would defeat recovery)
  and never skips ahead (records after a corrupt region have no
  trustworthy prefix, and replaying a command stream with an interior
  gap silently diverges the state machine). What was lost is reported
  in :attr:`DeliveryLog.last_read`.

Durability is tunable per deployment via the fsync policy:
``"never"`` (leave flushing to the OS — in-process crash simulations
and benchmarks), ``"rotate"`` (fsync when sealing a segment and on
close — bounded loss of one active segment), ``"always"`` (fsync every
append — classic WAL durability, one ``fsync`` per delivery). Every
append always ``flush()``\\ es to the OS, so an abrupt *process* death
(the fault injector's crash model) loses nothing under any policy;
the policies differ only in what a *machine* crash could lose.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterator, List, Optional, Tuple, Union

from ..core.errors import StorageError
from ..core.event import Event, OrderKey
from .records import DeliveryRecord, LogRecord, decode_record, encode_record

_FRAME = struct.Struct("!II")  # payload length, crc32(payload)

#: Valid fsync policies, weakest to strongest.
FSYNC_POLICIES = ("never", "rotate", "always")

_SEGMENT_PREFIX = "seg-"
_SEGMENT_SUFFIX = ".log"


def _segment_name(index: int) -> str:
    return f"{_SEGMENT_PREFIX}{index:08d}{_SEGMENT_SUFFIX}"


def _segment_index(path: Path) -> Optional[int]:
    name = path.name
    if not (name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX)):
        return None
    digits = name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
    return int(digits) if digits.isdigit() else None


@dataclass(slots=True)
class LogStats:
    """Write-side counters of one log instance."""

    appended: int = 0
    bytes_written: int = 0
    segments_created: int = 0
    segments_deleted: int = 0
    torn_bytes_repaired: int = 0
    fsyncs: int = 0


@dataclass(slots=True)
class LogReadReport:
    """What the last full read pass observed."""

    records: int = 0
    segments: int = 0
    #: Where reading stopped short, as ``(segment name, byte offset)``;
    #: ``None`` when every byte of every segment parsed cleanly.
    stopped_at: Optional[Tuple[str, int]] = None
    #: Why it stopped: ``"torn"`` (partial final frame), ``"crc"``
    #: (checksum mismatch) or ``"decode"`` (unparseable payload).
    stopped_reason: Optional[str] = None
    #: Segments that were skipped entirely because they come after the
    #: stop point (their prefix is untrusted).
    segments_unread: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """Whether the whole log parsed end to end."""
        return self.stopped_at is None


class DeliveryLog:
    """Append-only log of framed records across rotating segments.

    Args:
        directory: Log directory; created (with parents) if missing.
        segment_max_bytes: Rotation threshold — an append that would
            push the active segment past this seals it and starts the
            next one. Must be large enough for one maximal frame.
        fsync: Durability policy, one of :data:`FSYNC_POLICIES`.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        segment_max_bytes: int = 1 << 20,
        fsync: str = "rotate",
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise StorageError(
                f"unknown fsync policy {fsync!r}; use one of {FSYNC_POLICIES}"
            )
        if segment_max_bytes < _FRAME.size + 1:
            raise StorageError(
                f"segment_max_bytes must exceed one frame header, "
                f"got {segment_max_bytes}"
            )
        self.directory = Path(directory)
        self.segment_max_bytes = segment_max_bytes
        self.fsync_policy = fsync
        self.stats = LogStats()
        #: Report of the most recent :meth:`records` pass.
        self.last_read = LogReadReport()
        self.directory.mkdir(parents=True, exist_ok=True)

        indices = sorted(
            idx
            for path in self.directory.iterdir()
            if (idx := _segment_index(path)) is not None
        )
        self._active_index = indices[-1] if indices else 0
        self._repair_tail(self._active_path())
        self._fh: Optional[IO[bytes]] = open(self._active_path(), "ab")
        self._active_size = self._active_path().stat().st_size

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def append(self, record: LogRecord) -> None:
        """Frame *record* and append it to the active segment.

        Rotates first when the active segment is full. Always flushes
        to the OS; fsyncs according to the policy.
        """
        fh = self._require_open()
        payload = encode_record(record)
        frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        if self._active_size > 0 and self._active_size + len(frame) > self.segment_max_bytes:
            self._rotate()
            fh = self._require_open()
        fh.write(frame)
        fh.flush()
        if self.fsync_policy == "always":
            os.fsync(fh.fileno())
            self.stats.fsyncs += 1
        self._active_size += len(frame)
        self.stats.appended += 1
        self.stats.bytes_written += len(frame)

    def sync(self) -> None:
        """Flush and fsync the active segment right now."""
        fh = self._require_open()
        fh.flush()
        os.fsync(fh.fileno())
        self.stats.fsyncs += 1

    def close(self) -> None:
        """Flush (and, unless policy is ``never``, fsync) and close."""
        if self._fh is None:
            return
        self._fh.flush()
        if self.fsync_policy != "never":
            os.fsync(self._fh.fileno())
            self.stats.fsyncs += 1
        self._fh.close()
        self._fh = None

    @property
    def closed(self) -> bool:
        """Whether the log was closed (reads still work)."""
        return self._fh is None

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def records(self) -> Iterator[LogRecord]:
        """Yield every record in append order, across all segments.

        Reads from fresh file handles, so a closed (or other-process)
        log can be read too. Stops — without raising — at the first
        torn or corrupt frame; :attr:`last_read` describes how far it
        got and why it stopped.
        """
        report = LogReadReport()
        self.last_read = report
        segments = self.segments()
        for position, path in enumerate(segments):
            report.segments += 1
            data = path.read_bytes()
            offset = 0
            while offset < len(data):
                frame = self._parse_frame(data, offset)
                if isinstance(frame, str):
                    report.stopped_at = (path.name, offset)
                    report.stopped_reason = frame
                    report.segments_unread = [
                        later.name for later in segments[position + 1 :]
                    ]
                    return
                record, offset = frame
                report.records += 1
                yield record

    def delivered_events(self) -> Iterator[DeliveryRecord]:
        """Yield only the delivery records (see :meth:`records`)."""
        for record in self.records():
            if isinstance(record, DeliveryRecord):
                yield record

    def delivered_after(self, order_key: Optional[OrderKey]) -> Iterator[Event]:
        """Range-read: events with order key strictly above *order_key*.

        ``None`` means "from the beginning". A node's deliveries are
        strictly increasing in ``(ts, srcId, seq)``, so append order
        *is* order-key order and the scan yields a sorted suffix — the
        read side of the anti-entropy exchange (:mod:`repro.sync`).
        Corruption is absorbed exactly as in :meth:`records`: the scan
        stops at the first bad frame, serving only the trusted prefix.
        """
        for record in self.delivered_events():
            if order_key is None or record.event.order_key > order_key:
                yield record.event

    def segments(self) -> List[Path]:
        """Segment paths, oldest first."""
        return sorted(
            (
                path
                for path in self.directory.iterdir()
                if _segment_index(path) is not None
            ),
            key=lambda path: _segment_index(path),  # type: ignore[arg-type, return-value]
        )

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------

    def truncate_upto(self, order_key: OrderKey) -> int:
        """Delete sealed segments fully covered by a snapshot.

        A segment is deleted when every delivery record in it has an
        order key ``<= order_key`` **and** it parses cleanly end to end
        (a segment the reader cannot finish might hide records past the
        snapshot). The active segment is never deleted. Returns the
        number of segments removed.
        """
        removed = 0
        active = self._active_path()
        for path in self.segments():
            if path == active:
                continue
            verdict = self._segment_covered(path, order_key)
            if not verdict:
                break  # later segments hold later keys; stop scanning
            path.unlink()
            removed += 1
            self.stats.segments_deleted += 1
        return removed

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _segment_covered(self, path: Path, order_key: OrderKey) -> bool:
        data = path.read_bytes()
        offset = 0
        while offset < len(data):
            frame = self._parse_frame(data, offset)
            if isinstance(frame, str):
                return False
            record, offset = frame
            if (
                isinstance(record, DeliveryRecord)
                and record.event.order_key > order_key
            ):
                return False
        return True

    @staticmethod
    def _parse_frame(
        data: bytes, offset: int
    ) -> Union[Tuple[LogRecord, int], str]:
        """One frame at *offset*, or the reason it cannot be read."""
        if offset + _FRAME.size > len(data):
            return "torn"
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        end = start + length
        if end > len(data):
            return "torn"
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            return "crc"
        try:
            record = decode_record(payload)
        except StorageError:
            return "decode"
        return record, end

    def _active_path(self) -> Path:
        return self.directory / _segment_name(self._active_index)

    def _rotate(self) -> None:
        fh = self._require_open()
        fh.flush()
        if self.fsync_policy in ("rotate", "always"):
            os.fsync(fh.fileno())
            self.stats.fsyncs += 1
        fh.close()
        self._active_index += 1
        self._fh = open(self._active_path(), "ab")
        self._active_size = 0
        self.stats.segments_created += 1

    def _repair_tail(self, path: Path) -> None:
        """Truncate a torn final frame off the active segment."""
        if not path.exists():
            return
        data = path.read_bytes()
        offset = 0
        while offset < len(data):
            frame = self._parse_frame(data, offset)
            if isinstance(frame, str):
                break
            _, offset = frame
        if offset < len(data):
            self.stats.torn_bytes_repaired += len(data) - offset
            with open(path, "r+b") as fh:
                fh.truncate(offset)

    def _require_open(self) -> IO[bytes]:
        if self._fh is None:
            raise StorageError(f"log {self.directory} is closed")
        return self._fh

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeliveryLog(dir={str(self.directory)!r}, "
            f"segment={self._active_index}, appended={self.stats.appended})"
        )
