"""Recovery driver: latest snapshot + delivery-log suffix replay.

:func:`recover` is the single entry point a restarting node (or its
supervisor) calls: point it at the node's storage directory and it
returns everything a same-identity replacement needs to come back
*with state* instead of blank — the restored machine state, the order
key of the last delivery already folded in, and the broadcast sequence
to resume from.

The replay deduplicates by the ``(ts, srcId)`` order key: a record
whose key is at or below the snapshot's key (or below anything already
replayed) is counted and skipped, never re-applied. The same watermark
is then carried forward into the live journal, so events still
circulating in the epidemic when the node restarts — EpTO will happily
re-deliver anything whose TTL has not expired to a process with no
memory — are filtered out of the application's delivery stream too:
exactly-once application relative to the node's own durable history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..core.event import OrderKey
from ..smr.machine import StateMachine
from .log import DeliveryLog, LogReadReport
from .records import BroadcastMarker, DeliveryRecord
from .snapshot import SnapshotStore

#: Subdirectory of a node's storage directory holding its segments.
LOG_SUBDIR = "log"


@dataclass(slots=True)
class RecoveredState:
    """Everything :func:`recover` reconstructed for one node.

    Attributes:
        node_id: The identity being recovered.
        machine: The machine passed in, now restored to snapshot state
            with the log suffix applied (``None`` when no machine was
            supplied — callers that only need the counters).
        machine_state: ``machine.snapshot()`` after recovery, or the
            raw snapshot state when no machine was supplied.
        last_delivered_key: Order key of the newest recovered delivery;
            the dedupe watermark for the node's next incarnation.
        next_seq: Broadcast sequence the replacement must resume from.
        applied_count: Total commands applied across all incarnations.
        replayed: Log records applied on top of the snapshot.
        deduplicated: Log records skipped as already covered.
        snapshot_index: Index of the snapshot used (``None`` = none).
        log_report: How far the log read got (torn/corrupt diagnosis).
        source_watermarks: Per-source high watermarks (source id ->
            highest delivered sequence) across the recovered history;
            seeds the successor journal's anti-entropy digest.
    """

    node_id: int
    machine: Optional[StateMachine]
    machine_state: Any
    last_delivered_key: Optional[OrderKey]
    next_seq: int
    applied_count: int = 0
    replayed: int = 0
    deduplicated: int = 0
    snapshot_index: Optional[int] = None
    log_report: LogReadReport = field(default_factory=LogReadReport)
    source_watermarks: Dict[int, int] = field(default_factory=dict)

    @property
    def blank(self) -> bool:
        """Whether there was nothing on disk to recover."""
        return (
            self.snapshot_index is None
            and self.last_delivered_key is None
            and self.next_seq == 0
        )


def recover(
    node_id: int,
    directory: Union[str, Path],
    machine: Optional[StateMachine] = None,
) -> RecoveredState:
    """Restore one node's durable state from *directory*.

    Loads the newest valid snapshot, restores *machine* from it (when
    both exist), then replays the delivery-log suffix — every record
    with an order key above the snapshot's — applying payloads to
    *machine* in log order and deduplicating re-deliveries by order
    key. Broadcast markers advance ``next_seq`` past everything the
    node ever issued; own-source delivery records are folded in too,
    so a log written before markers existed still resumes safely.

    Never raises on torn or corrupt log data: the replay simply stops
    at the last valid record (see :attr:`RecoveredState.log_report`).
    A missing or empty directory yields a blank state — recovery of a
    node that never journaled is a normal cold start.
    """
    directory = Path(directory)
    recovered = RecoveredState(
        node_id=node_id,
        machine=machine,
        machine_state=None,
        last_delivered_key=None,
        next_seq=0,
    )
    if not directory.exists():
        recovered.machine_state = machine.snapshot() if machine is not None else None
        return recovered

    snapshot = SnapshotStore(directory).load_latest()
    if snapshot is not None:
        recovered.snapshot_index = snapshot.index
        recovered.last_delivered_key = snapshot.last_delivered_key
        recovered.next_seq = snapshot.next_seq
        recovered.applied_count = snapshot.applied_count
        recovered.source_watermarks.update(snapshot.source_watermarks)
        if machine is not None:
            machine.restore(snapshot.state)

    log_dir = directory / LOG_SUBDIR
    if log_dir.exists():
        log = DeliveryLog(log_dir)
        try:
            for record in log.records():
                if isinstance(record, BroadcastMarker):
                    recovered.next_seq = max(recovered.next_seq, record.seq + 1)
                    continue
                if isinstance(record, DeliveryRecord):
                    event = record.event
                    key = event.order_key
                    # Watermarks accumulate over every record seen, even
                    # deduplicated ones — a snapshot from before the
                    # field existed carries none, so the log is the only
                    # witness for the covered prefix.
                    watermarks = recovered.source_watermarks
                    if event.seq > watermarks.get(event.source_id, -1):
                        watermarks[event.source_id] = event.seq
                    if (
                        recovered.last_delivered_key is not None
                        and key <= recovered.last_delivered_key
                    ):
                        recovered.deduplicated += 1
                        continue
                    if machine is not None:
                        machine.apply(event.payload)
                    recovered.last_delivered_key = key
                    recovered.applied_count += 1
                    recovered.replayed += 1
                    if event.source_id == node_id:
                        recovered.next_seq = max(recovered.next_seq, event.seq + 1)
            recovered.log_report = log.last_read
        finally:
            log.close()

    recovered.machine_state = (
        machine.snapshot() if machine is not None
        else (snapshot.state if snapshot is not None else None)
    )
    return recovered
