"""Durable delivery log + snapshot/recovery subsystem.

EpTO's safety is deterministic but, without this package, dies with
the process: a respawned node resumes its broadcast sequence in-memory
and forgets every delivered event and all replicated state. The
storage subsystem makes node state outlive the process — the
crash-recovery analogue of checkpoint/resume in a training stack, and
the behaviour that motivates self-stabilizing total-order broadcast
(Lundström, Raynal & Schiller 2022):

* :class:`~repro.storage.log.DeliveryLog` — segmented, CRC-checksummed
  append-only log of deliveries (+ broadcast sequence markers), with
  segment rotation, torn-tail repair on open, a reader that stops at
  the last valid record instead of crashing or skipping, and a
  tunable fsync policy;
* :class:`~repro.storage.snapshot.SnapshotStore` — atomic
  (write-temp, fsync, rename) retained checkpoints of
  :class:`~repro.smr.machine.StateMachine` state;
* :func:`~repro.storage.recovery.recover` — restores a replica from
  latest-snapshot + log-suffix replay, deduplicating re-delivered
  events by their ``(ts, srcId)`` order key;
* :class:`~repro.storage.journal.DeliveryJournal` — the live per-node
  object the runtimes wire in via their ``journal=`` /
  ``storage_dir=`` hooks.

See docs/STORAGE.md for the on-disk format and recovery protocol.
"""

from .journal import DeliveryJournal, JournalStats
from .log import FSYNC_POLICIES, DeliveryLog, LogReadReport, LogStats
from .records import BroadcastMarker, DeliveryRecord, LogRecord
from .recovery import LOG_SUBDIR, RecoveredState, recover
from .snapshot import Snapshot, SnapshotStore

__all__ = [
    "BroadcastMarker",
    "DeliveryJournal",
    "DeliveryLog",
    "DeliveryRecord",
    "FSYNC_POLICIES",
    "JournalStats",
    "LOG_SUBDIR",
    "LogReadReport",
    "LogRecord",
    "LogStats",
    "RecoveredState",
    "Snapshot",
    "SnapshotStore",
    "recover",
]
