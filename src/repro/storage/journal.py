"""Per-node delivery journal: the live side of durable recovery.

A :class:`DeliveryJournal` is what a running node holds: it owns the
node's :class:`~repro.storage.log.DeliveryLog` and
:class:`~repro.storage.snapshot.SnapshotStore` under one directory,
appends a record per EpTO delivery and a sequence marker per local
broadcast, and — after a restart — filters re-delivered events out of
the application stream using the recovered order-key watermark.

The watermark dedupe is what turns at-least-once epidemic re-delivery
into exactly-once application: a replacement process has no ordering
memory, so events still circulating within their TTL get delivered to
it again; :meth:`record_delivery` returns ``False`` for any event at
or below the watermark and the hosting node drops it before the
application callback. EpTO's total order makes the single watermark
sufficient — deliveries are strictly increasing in ``(ts, srcId, seq)``,
so "already recovered" is exactly "key <= watermark".

Journaling is strictly opt-in and free when absent: nodes constructed
with ``journal=None`` run the identical delivery path with zero extra
work (the acceptance bar: bit-identical benchmark metrics).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from ..core.event import Event, OrderKey
from .log import DeliveryLog
from .records import BroadcastMarker, DeliveryRecord
from .recovery import LOG_SUBDIR, RecoveredState
from .snapshot import Snapshot, SnapshotStore


@dataclass(slots=True)
class JournalStats:
    """Counters of one journal incarnation."""

    recorded: int = 0
    deduplicated: int = 0
    markers: int = 0
    snapshots: int = 0
    segments_pruned: int = 0


class DeliveryJournal:
    """Durable delivery log + snapshots for one node identity.

    Args:
        directory: This node's storage directory (snapshots at the top
            level, log segments under ``log/``).
        fsync: Log durability policy
            (:data:`repro.storage.log.FSYNC_POLICIES`).
        segment_max_bytes: Log segment rotation threshold.
        snapshot_retain: Snapshots kept by the store.
        resume: Recovery outcome to continue from
            (:func:`repro.storage.recovery.recover`); seeds the dedupe
            watermark, sequence counter and applied count. ``None``
            starts a fresh history. The caller must run recovery
            *before* constructing the journal — construction opens the
            log for append (repairing any torn tail in the process).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        fsync: str = "rotate",
        segment_max_bytes: int = 1 << 20,
        snapshot_retain: int = 2,
        resume: Optional[RecoveredState] = None,
    ) -> None:
        self.directory = Path(directory)
        self.stats = JournalStats()
        self.snapshots = SnapshotStore(self.directory, retain=snapshot_retain)
        self.log = DeliveryLog(
            self.directory / LOG_SUBDIR,
            segment_max_bytes=segment_max_bytes,
            fsync=fsync,
        )
        self._watermark: Optional[OrderKey] = None
        self._last_key: Optional[OrderKey] = None
        self._next_seq = 0
        self._applied_total = 0
        self._source_watermarks: Dict[int, int] = {}
        if resume is not None:
            self._watermark = resume.last_delivered_key
            self._last_key = resume.last_delivered_key
            self._next_seq = resume.next_seq
            self._applied_total = resume.applied_count
            self._source_watermarks.update(resume.source_watermarks)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_delivery(self, event: Event) -> bool:
        """Journal one EpTO delivery; returns whether to apply it.

        ``False`` means the event is a post-restart re-delivery already
        covered by the recovered history: it is neither logged nor — by
        contract with the hosting node — handed to the application.
        """
        key = event.order_key
        if self._watermark is not None and key <= self._watermark:
            self.stats.deduplicated += 1
            return False
        self.log.append(DeliveryRecord(event))
        self._last_key = key
        self._applied_total += 1
        self.stats.recorded += 1
        source = event.source_id
        if event.seq > self._source_watermarks.get(source, -1):
            self._source_watermarks[source] = event.seq
        return True

    def record_broadcast(self, event: Event) -> None:
        """Journal the sequence number of a local broadcast."""
        self.log.append(BroadcastMarker(event.seq))
        self._next_seq = max(self._next_seq, event.seq + 1)
        self.stats.markers += 1

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def save_snapshot(self, state: Any, prune_log: bool = True) -> Snapshot:
        """Checkpoint *state* (covering every delivery journaled so
        far) and, by default, prune log segments the snapshot covers.

        *state* must be the machine state with exactly the journaled
        deliveries applied — the caller snapshots the same machine the
        delivery stream feeds.
        """
        snapshot = self.snapshots.save(
            state,
            last_delivered_key=self._last_key,
            next_seq=self._next_seq,
            applied_count=self._applied_total,
            source_watermarks=self._source_watermarks,
        )
        self.stats.snapshots += 1
        if prune_log and self._last_key is not None:
            self.stats.segments_pruned += self.log.truncate_upto(self._last_key)
        return snapshot

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    @property
    def last_delivered_key(self) -> Optional[OrderKey]:
        """Order key of the newest journaled delivery (this history)."""
        return self._last_key

    @property
    def next_seq(self) -> int:
        """Broadcast sequence a successor must resume from."""
        return self._next_seq

    @property
    def applied_count(self) -> int:
        """Deliveries journaled across all recovered incarnations."""
        return self._applied_total

    @property
    def source_watermarks(self) -> Dict[int, int]:
        """Per-source high watermarks: for every source id, the highest
        sequence number this history has delivered from it (across all
        recovered incarnations). The digest half of the anti-entropy
        exchange (:mod:`repro.sync`)."""
        return dict(self._source_watermarks)

    def delivered_after(self, order_key: Optional[OrderKey]) -> Iterator[Event]:
        """Serve the delivery-log suffix strictly above *order_key*.

        The range read behind ``SYNC_REQUEST``: events come back in
        ``(ts, srcId, seq)`` order straight from the retained log
        segments. History already compacted into a snapshot (pruned
        segments) is not servable — peers that far behind catch up from
        a node with a longer retained log.
        """
        return self.log.delivered_after(order_key)

    def sync(self) -> None:
        """Force the log to disk now (overrides the fsync policy)."""
        self.log.sync()

    def close(self) -> None:
        """Close the log; the journal must not be written afterwards."""
        self.log.close()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` ran."""
        return self.log.closed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeliveryJournal(dir={str(self.directory)!r}, "
            f"recorded={self.stats.recorded}, deduped={self.stats.deduplicated})"
        )
