"""Brahms: Byzantine-resilient random peer sampling.

Implementation of the Brahms membership protocol (Bortnikov, Gurevich,
Keidar, Kliot and Shraer) as a
:class:`~repro.pss.base.PeerSamplingService`. Brahms defends the view
against adversaries that flood honest nodes with Byzantine addresses:

* each round a node **pushes** its own id to a few view peers and
  **pulls** whole views from a few others;
* the next view is a fixed-ratio blend — ``alpha`` from received
  pushes, ``beta`` from pulled entries, ``gamma`` from **history
  samplers**: min-wise independent permutation samplers that each
  converge to one uniform sample of every id ever observed. An
  adversary can bias what a node hears *now*, but not the minimum of a
  random hash over everything it ever heard, so poisoned views
  self-heal from the sampler tail;
* **attack detection**: a round that receives more pushes than the
  blend could legitimately want (a push flood) skips the view update
  entirely — the flood wastes the adversary's round instead of
  capturing the view.

Messages are frozen dataclasses routed to :meth:`handle_message`;
:data:`BRAHMS_MESSAGE_TYPES` is the dispatch tuple. ``shuffle()`` runs
one round (blend the previous round's harvest, then solicit the next),
mirroring how the hosting runtimes already pace Cyclon.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Sequence, Set, Tuple

from ..core.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class BrahmsPush:
    """Sender advertises itself for the receiver's next view blend."""


@dataclass(frozen=True, slots=True)
class BrahmsPullRequest:
    """Ask the receiver for its current view."""


@dataclass(frozen=True, slots=True)
class BrahmsPullReply:
    """The receiver's view at the time of the pull."""

    entries: Tuple[int, ...]


BRAHMS_MESSAGE_TYPES = (BrahmsPush, BrahmsPullRequest, BrahmsPullReply)

#: 64-bit mixing (splitmix64 finalizer) for the min-wise samplers —
#: deterministic under a seeded RNG, unlike Python's salted ``hash``.
_MASK = 0xFFFFFFFFFFFFFFFF


def _mix(value: int) -> int:
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & _MASK
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & _MASK
    return value ^ (value >> 31)


class _MinWiseSampler:
    """One min-wise independent sampler: a uniform id from the history.

    Feeding the stream of observed ids, the retained element — the
    minimizer of a fixed random hash — is a uniform sample of the
    stream's *set*, regardless of how often an adversary repeats its
    own ids.
    """

    __slots__ = ("_seed", "_best", "_best_id")

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._best: int | None = None
        self._best_id: int | None = None

    def observe(self, node_id: int) -> None:
        score = _mix(self._seed ^ (node_id & _MASK))
        if self._best is None or score < self._best:
            self._best = score
            self._best_id = node_id

    @property
    def sample(self) -> int | None:
        return self._best_id


class BrahmsPss:
    """One node's Brahms instance.

    Args:
        node_id: Owning node id.
        view_size: View capacity (``l1`` in the paper).
        send: Outgoing channel ``send(dst, message)``.
        rng: Randomness for peer choices and sampler seeds.
        alpha, beta, gamma: Blend ratios for push / pull / history
            entries; must be positive and sum to 1.
        sampler_count: Number of history samplers (``l2``); defaults to
            ``view_size``.
    """

    def __init__(
        self,
        node_id: int,
        view_size: int,
        send: Callable[[int, object], None],
        rng: random.Random,
        alpha: float = 0.45,
        beta: float = 0.45,
        gamma: float = 0.10,
        sampler_count: int | None = None,
    ) -> None:
        if view_size < 1:
            raise ConfigurationError(f"view_size must be >= 1, got {view_size}")
        if min(alpha, beta, gamma) <= 0 or abs(alpha + beta + gamma - 1.0) > 1e-9:
            raise ConfigurationError(
                f"alpha/beta/gamma must be positive and sum to 1, got "
                f"{alpha}/{beta}/{gamma}"
            )
        self.node_id = node_id
        self.view_size = view_size
        self._send = send
        self._rng = rng
        self._push_count = max(1, round(alpha * view_size))
        self._pull_count = max(1, round(beta * view_size))
        self._history_count = max(1, round(gamma * view_size))
        count = sampler_count if sampler_count is not None else view_size
        self._samplers = [
            _MinWiseSampler(rng.getrandbits(64)) for _ in range(count)
        ]
        self._view: List[int] = []
        self._pushes: Set[int] = set()
        self._pulled: Set[int] = set()
        self._pull_answers = 0
        self.rounds = 0
        self.floods_detected = 0

    # ------------------------------------------------------------------
    # Bootstrap / introspection
    # ------------------------------------------------------------------

    def bootstrap(self, peer_ids: Sequence[int]) -> None:
        """Seed the view (and the samplers) with *peer_ids*."""
        for peer in peer_ids:
            if peer == self.node_id or peer in self._view:
                continue
            self._observe(peer)
            if len(self._view) < self.view_size:
                self._view.append(peer)

    def view_snapshot(self) -> Sequence[int]:
        return tuple(self._view)

    def history_samples(self) -> Sequence[int]:
        """Current sampler outputs (uniform over the observed history)."""
        seen: Set[int] = set()
        out: List[int] = []
        for sampler in self._samplers:
            sample = sampler.sample
            if sample is not None and sample not in seen:
                seen.add(sample)
                out.append(sample)
        return tuple(out)

    # ------------------------------------------------------------------
    # PeerSampler protocol
    # ------------------------------------------------------------------

    def sample(self, k: int) -> Sequence[int]:
        """Up to *k* peers from the view, topped up from the samplers."""
        peers = list(self._view)
        if len(peers) < k:
            extra = [
                p
                for p in self.history_samples()
                if p != self.node_id and p not in peers
            ]
            peers.extend(extra[: k - len(peers)])
        if k >= len(peers):
            self._rng.shuffle(peers)
            return peers
        return self._rng.sample(peers, k)

    # ------------------------------------------------------------------
    # Rounds
    # ------------------------------------------------------------------

    def shuffle(self) -> None:
        """One Brahms round: blend last round's harvest, solicit anew."""
        self.rounds += 1
        self._blend()
        targets = self._view or list(self.history_samples())
        if not targets:
            return
        for dst in self._choose(targets, self._push_count):
            self._send(dst, BrahmsPush())
        for dst in self._choose(targets, self._pull_count):
            self._send(dst, BrahmsPullRequest())

    def _blend(self) -> None:
        pushes = self._pushes
        pulled = self._pulled
        answers = self._pull_answers
        self._pushes = set()
        self._pulled = set()
        self._pull_answers = 0
        if not pushes and not pulled:
            return
        # Attack detection: a flood of pushes (more than the blend
        # could want) means an adversary is stuffing the channel —
        # keep the current view untouched this round.
        if len(pushes) > self._push_count + self._pull_count:
            self.floods_detected += 1
            return
        # The paper blends only on a balanced round (both channels
        # heard); with no pull answers yet (bootstrap) fall through so
        # the view still mixes.
        new_view: List[int] = []

        def extend(pool: Sequence[int], want: int) -> None:
            candidates = [
                p for p in pool if p != self.node_id and p not in new_view
            ]
            self._rng.shuffle(candidates)
            new_view.extend(candidates[:want])

        extend(tuple(pushes), self._push_count)
        if answers:
            extend(tuple(pulled), self._pull_count)
        extend(self.history_samples(), self._history_count)
        if not new_view:
            return
        # Top up from the previous view so the view never shrinks just
        # because a round heard from few peers.
        extend(self._view, self.view_size - len(new_view))
        self._view = new_view[: self.view_size]

    def _choose(self, pool: Sequence[int], k: int) -> Sequence[int]:
        if k >= len(pool):
            return list(pool)
        return self._rng.sample(list(pool), k)

    def _observe(self, peer: int) -> None:
        if peer == self.node_id:
            return
        for sampler in self._samplers:
            sampler.observe(peer)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------

    def handle_message(self, src: int, message: object) -> None:
        if isinstance(message, BrahmsPush):
            if src != self.node_id:
                self._pushes.add(src)
                self._observe(src)
        elif isinstance(message, BrahmsPullRequest):
            self._send(src, BrahmsPullReply(entries=tuple(self._view)))
        elif isinstance(message, BrahmsPullReply):
            self._pull_answers += 1
            for peer in message.entries:
                if peer != self.node_id:
                    self._pulled.add(peer)
                    self._observe(peer)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BrahmsPss(node={self.node_id}, view={len(self._view)}/"
            f"{self.view_size}, rounds={self.rounds})"
        )
