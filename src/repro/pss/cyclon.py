"""Cyclon: inexpensive membership management for unstructured overlays.

Implementation of the Cyclon peer-sampling protocol (Voulgaris, Gavidia
and van Steen [28]) used by the paper's Figure 9 experiment. Each node
keeps a small partial *view* — a set of ``(peer, age)`` entries — and
periodically *shuffles* with its oldest neighbour:

1. age every view entry, pick the entry ``q`` with the highest age and
   remove it from the view (dead peers are thereby recycled even if
   they never answer);
2. send ``q`` a random subset of the view plus a fresh ``(self, 0)``
   entry;
3. ``q`` replies with a random subset of its own view and merges the
   received entries, preferentially replacing the ones it just sent;
4. the initiator merges the reply the same way.

Views are therefore continuously mixed, approximate a uniform random
sample of the live membership, and — crucially for EpTO under churn —
may transiently contain failed peers or miss fresh ones. Balls gossiped
to stale entries are lost, which is exactly the degradation Figure 9
measures relative to the idealized PSS.

Joining follows the simplified bootstrap used in practice: the joiner
seeds its view from an introducer's sample. (The original paper's
random-walk join refines load balance, not correctness; the difference
is invisible at the shuffle rates the experiments use.)
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from ..core.errors import ConfigurationError

#: A shuffled view entry: ``(peer_id, age)``.
CyclonEntry = Tuple[int, int]


@dataclass(frozen=True, slots=True)
class CyclonRequest:
    """Active-thread shuffle request carrying a view subset."""

    entries: Tuple[CyclonEntry, ...]


@dataclass(frozen=True, slots=True)
class CyclonResponse:
    """Passive-thread shuffle reply carrying a view subset."""

    entries: Tuple[CyclonEntry, ...]


class CyclonPss:
    """One node's Cyclon instance.

    Args:
        node_id: Owning node id.
        view_size: Maximum number of view entries (``c`` in [28]).
        shuffle_size: Entries exchanged per shuffle (``l`` in [28]),
            must be <= ``view_size``.
        send: Outgoing channel ``send(dst, message)`` where message is
            a :class:`CyclonRequest` or :class:`CyclonResponse`; the
            hosting runtime routes these over the (lossy) network.
        rng: Randomness for subset selection.
    """

    def __init__(
        self,
        node_id: int,
        view_size: int,
        shuffle_size: int,
        send: Callable[[int, object], None],
        rng: random.Random,
    ) -> None:
        if view_size < 1:
            raise ConfigurationError(f"view_size must be >= 1, got {view_size}")
        if not 1 <= shuffle_size <= view_size:
            raise ConfigurationError(
                f"need 1 <= shuffle_size <= view_size, got {shuffle_size}/{view_size}"
            )
        self.node_id = node_id
        self.view_size = view_size
        self.shuffle_size = shuffle_size
        self._send = send
        self._rng = rng
        self._view: Dict[int, int] = {}  # peer id -> age
        # Subsets sent per outstanding shuffle, keyed by the remote
        # peer; consumed when its response arrives.
        self._pending: Dict[int, Tuple[CyclonEntry, ...]] = {}
        self.shuffles_started = 0
        self.shuffles_answered = 0

    # ------------------------------------------------------------------
    # Bootstrap / introspection
    # ------------------------------------------------------------------

    def bootstrap(self, peer_ids: Iterable[int]) -> None:
        """Seed the view with fresh entries for *peer_ids*."""
        for peer in peer_ids:
            if peer == self.node_id:
                continue
            if len(self._view) >= self.view_size:
                break
            self._view.setdefault(peer, 0)

    def view_snapshot(self) -> Sequence[int]:
        """Peer ids currently in the view (possibly stale)."""
        return tuple(self._view)

    def view_entries(self) -> Sequence[CyclonEntry]:
        """Full ``(peer, age)`` view contents."""
        return tuple(self._view.items())

    @property
    def view_fill(self) -> int:
        """Number of entries currently in the view."""
        return len(self._view)

    # ------------------------------------------------------------------
    # PeerSampler protocol
    # ------------------------------------------------------------------

    def sample(self, k: int) -> Sequence[int]:
        """Up to *k* distinct peers from the current (possibly stale) view."""
        peers = list(self._view)
        if k >= len(peers):
            self._rng.shuffle(peers)
            return peers
        return self._rng.sample(peers, k)

    # ------------------------------------------------------------------
    # Shuffling
    # ------------------------------------------------------------------

    def shuffle(self) -> None:
        """Run one active shuffle step (called periodically)."""
        if not self._view:
            return
        self.shuffles_started += 1
        # 1. Age the whole view, pick the oldest peer.
        for peer in self._view:
            self._view[peer] += 1
        oldest = max(self._view, key=lambda peer: (self._view[peer], peer))
        # 2. Remove it — if it is dead we forget it; if alive it comes
        # back through future shuffles with a fresh age.
        del self._view[oldest]
        # 3. Ship a subset plus a fresh self-entry.
        subset = self._random_subset(self.shuffle_size - 1, exclude=oldest)
        sent = tuple(subset) + ((self.node_id, 0),)
        self._pending[oldest] = sent
        self._send(oldest, CyclonRequest(entries=sent))

    def handle_request(self, src: int, request: CyclonRequest) -> None:
        """Passive thread: answer a shuffle request from *src*."""
        self.shuffles_answered += 1
        reply = tuple(self._random_subset(self.shuffle_size, exclude=src))
        self._send(src, CyclonResponse(entries=reply))
        self._merge(request.entries, sent=reply)

    def handle_response(self, src: int, response: CyclonResponse) -> None:
        """Active thread: merge the reply to an earlier request."""
        sent = self._pending.pop(src, ())
        self._merge(response.entries, sent=sent)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _random_subset(self, k: int, exclude: int) -> List[CyclonEntry]:
        """Up to *k* random view entries, never the *exclude* peer."""
        candidates = [
            (peer, age) for peer, age in self._view.items() if peer != exclude
        ]
        if k >= len(candidates):
            return candidates
        return self._rng.sample(candidates, k)

    def _merge(self, received: Tuple[CyclonEntry, ...], sent: Tuple[CyclonEntry, ...]) -> None:
        """Merge *received* entries, replacing *sent* ones when full.

        Cyclon merge rules: drop entries pointing at self; for a peer
        already in the view keep the younger occurrence; fill empty
        slots first; once full, evict entries that were shipped out in
        this shuffle (they live on at the other side).
        """
        evictable = [peer for peer, _ in sent if peer != self.node_id]
        for peer, age in received:
            if peer == self.node_id:
                continue
            if peer in self._view:
                if age < self._view[peer]:
                    self._view[peer] = age
                continue
            if len(self._view) < self.view_size:
                self._view[peer] = age
                continue
            # Full: replace one of the entries we sent away, if any is
            # still present; otherwise drop the received entry.
            while evictable:
                victim = evictable.pop()
                if victim in self._view:
                    del self._view[victim]
                    self._view[peer] = age
                    break

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CyclonPss(node={self.node_id}, view={len(self._view)}/"
            f"{self.view_size}, shuffles={self.shuffles_started})"
        )
