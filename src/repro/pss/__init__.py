"""Peer sampling services: idealized uniform view and Cyclon [28]."""

from .base import MembershipDirectory, PeerSamplingService
from .cyclon import CyclonEntry, CyclonPss, CyclonRequest, CyclonResponse
from .uniform import UniformViewPss

__all__ = [
    "CyclonEntry",
    "CyclonPss",
    "CyclonRequest",
    "CyclonResponse",
    "MembershipDirectory",
    "PeerSamplingService",
    "UniformViewPss",
]
