"""Peer sampling services: idealized uniform view, Cyclon [28], and the
realistic overlay family (HyParView's two-tier views with reactive
repair, Brahms's Byzantine-resilient sampling)."""

from .base import MembershipDirectory, PeerSamplingService
from .brahms import (
    BRAHMS_MESSAGE_TYPES,
    BrahmsPss,
    BrahmsPullReply,
    BrahmsPullRequest,
    BrahmsPush,
)
from .cyclon import CyclonEntry, CyclonPss, CyclonRequest, CyclonResponse
from .hyparview import (
    HYPARVIEW_MESSAGE_TYPES,
    Disconnect,
    ForwardJoin,
    HvShuffle,
    HvShuffleReply,
    HyParViewPss,
    JoinRequest,
    NeighborReply,
    NeighborRequest,
)
from .uniform import UniformViewPss

#: Every overlay-maintenance message the realistic PSS family puts on
#: the wire; hosting runtimes dispatch these to ``pss.handle_message``.
OVERLAY_MESSAGE_TYPES = HYPARVIEW_MESSAGE_TYPES + BRAHMS_MESSAGE_TYPES

__all__ = [
    "BRAHMS_MESSAGE_TYPES",
    "BrahmsPss",
    "BrahmsPullReply",
    "BrahmsPullRequest",
    "BrahmsPush",
    "CyclonEntry",
    "CyclonPss",
    "CyclonRequest",
    "CyclonResponse",
    "Disconnect",
    "ForwardJoin",
    "HYPARVIEW_MESSAGE_TYPES",
    "HvShuffle",
    "HvShuffleReply",
    "HyParViewPss",
    "JoinRequest",
    "MembershipDirectory",
    "NeighborReply",
    "NeighborRequest",
    "OVERLAY_MESSAGE_TYPES",
    "PeerSamplingService",
    "UniformViewPss",
]
