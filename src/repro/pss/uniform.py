"""Idealized peer sampling: a perfect, always-fresh global view.

This is the PSS the paper's main evaluation assumes: "a uniform random
sample of other processes" with inaccuracies treated separately (the
Cyclon experiment of Figure 9 quantifies the cost of a realistic PSS).

Every sample is drawn uniformly from the *current* ground-truth
membership, so failed processes are never selected and new processes
are immediately visible.
"""

from __future__ import annotations

import random
from typing import Sequence

from .base import MembershipDirectory


class UniformViewPss:
    """Perfect-view PSS for one node, backed by the shared directory.

    Args:
        node_id: The owning node (never returned by :meth:`sample`).
        directory: Ground-truth membership maintained by the cluster.
        rng: Randomness for sampling (seeded per node by the cluster).
    """

    def __init__(
        self,
        node_id: int,
        directory: MembershipDirectory,
        rng: random.Random,
    ) -> None:
        self.node_id = node_id
        self._directory = directory
        self._rng = rng

    def sample(self, k: int) -> Sequence[int]:
        """Up to *k* distinct live peers, uniformly at random."""
        return self._directory.sample(self._rng, k, exclude=self.node_id)

    def view_snapshot(self) -> Sequence[int]:
        """The full live membership (minus self)."""
        return tuple(
            nid for nid in self._directory.alive_ids() if nid != self.node_id
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UniformViewPss(node={self.node_id}, n={len(self._directory)})"
