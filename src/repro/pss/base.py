"""Peer sampling service interfaces (paper §2, Jelasity et al. [17]).

EpTO assumes "a peer sampling service (PSS) providing a uniform random
sample of other processes". Two implementations are provided:

* :class:`repro.pss.uniform.UniformViewPss` — an idealized PSS with a
  perfect, instantly updated global view (the paper's default
  evaluation setting);
* :class:`repro.pss.cyclon.CyclonPss` — the Cyclon shuffling protocol
  [28], a realistic gossip-based PSS whose views lag behind churn
  (paper Figure 9).

Both satisfy the minimal :class:`repro.core.interfaces.PeerSampler`
protocol the EpTO core consumes.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

from ..core.interfaces import PeerSampler


@runtime_checkable
class PeerSamplingService(PeerSampler, Protocol):
    """A PSS as seen by the hosting runtime (lifecycle included)."""

    def sample(self, k: int) -> Sequence[int]:
        """Up to *k* uniformly random peer ids (never the caller's)."""
        ...

    def view_snapshot(self) -> Sequence[int]:
        """Current view contents, for metrics and debugging."""
        ...


class MembershipDirectory:
    """Ground-truth membership shared by idealized components.

    The simulated cluster keeps this directory exact (nodes are added
    and removed synchronously with churn); the idealized
    :class:`~repro.pss.uniform.UniformViewPss` samples from it, whereas
    Cyclon maintains its own, possibly stale, per-node views.
    """

    def __init__(self) -> None:
        self._alive: list[int] = []
        self._index: dict[int, int] = {}

    def add(self, node_id: int) -> None:
        """Register a live node (O(1))."""
        if node_id in self._index:
            return
        self._index[node_id] = len(self._alive)
        self._alive.append(node_id)

    def remove(self, node_id: int) -> None:
        """Remove a node via swap-with-last (O(1))."""
        idx = self._index.pop(node_id, None)
        if idx is None:
            return
        last = self._alive.pop()
        if last != node_id:
            self._alive[idx] = last
            self._index[last] = idx

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._index

    def __len__(self) -> int:
        return len(self._alive)

    def alive_ids(self) -> Sequence[int]:
        """Snapshot of live node ids."""
        return tuple(self._alive)

    def sample(self, rng, k: int, exclude: int | None = None) -> list[int]:
        """Up to *k* distinct random live ids, excluding *exclude*.

        Uses rejection sampling against the O(1)-indexable live list,
        which is fast when ``k`` is much smaller than the population.
        """
        population = self._alive
        n = len(population)
        if exclude is not None and exclude in self._index:
            n -= 1
        k = min(k, n)
        if k <= 0:
            return []
        chosen: list[int] = []
        seen: set[int] = set() if exclude is None else {exclude}
        # Rejection sampling with a fallback to full shuffle for dense
        # requests (k close to the population size).
        if k * 3 < n:
            while len(chosen) < k:
                candidate = population[rng.randrange(len(population))]
                if candidate not in seen:
                    seen.add(candidate)
                    chosen.append(candidate)
            return chosen
        pool = [nid for nid in population if nid not in seen]
        rng.shuffle(pool)
        return pool[:k]
