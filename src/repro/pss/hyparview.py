"""HyParView: a membership protocol with two-tier partial views.

Implementation of the HyParView overlay (Leitão, Pereira and Rodrigues)
as a :class:`~repro.pss.base.PeerSamplingService` for the EpTO
runtimes. Each node keeps:

* a small **active view** — the peers it gossips to. Links are meant to
  be symmetric: joining a peer's active view goes through an explicit
  ``NeighborRequest`` / ``NeighborReply`` handshake, and leaving it
  sends a ``Disconnect`` so the other side can repair immediately;
* a larger **passive view** — a reservoir of backup peers, refreshed by
  periodic shuffles walking the overlay, from which the active view is
  **reactively repaired**: whenever the active view is under capacity
  (a neighbour disconnected, was evicted, or never answered), the node
  promotes a random passive peer by sending it a neighbour request —
  high priority when the active view is empty, so an isolated node is
  always accepted somewhere.

The active view is what :meth:`sample` serves. While the active view is
still filling (bootstrap, or mass failure of neighbours) sampling falls
back to the passive view so dissemination never stalls waiting for
handshakes — a pragmatic deviation that matters only for a round or
two.

All messages are frozen dataclasses routed by the hosting runtime to
:meth:`handle_message`, exactly like Cyclon's request/response pair;
:data:`HYPARVIEW_MESSAGE_TYPES` is the dispatch tuple.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from ..core.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class JoinRequest:
    """A newcomer asks a contact node to admit it to the overlay."""


@dataclass(frozen=True, slots=True)
class ForwardJoin:
    """Random walk propagating a join through the overlay."""

    joiner: int
    ttl: int


@dataclass(frozen=True, slots=True)
class NeighborRequest:
    """Ask *dst* to add the sender to its active view.

    ``priority`` requests (sender's active view is empty) must be
    accepted even at capacity — the receiver evicts a random neighbour.
    """

    priority: bool = False


@dataclass(frozen=True, slots=True)
class NeighborReply:
    """Answer to a :class:`NeighborRequest`."""

    accepted: bool


@dataclass(frozen=True, slots=True)
class HvShuffle:
    """Passive-view shuffle walking ``ttl`` random active-view hops."""

    origin: int
    ttl: int
    entries: Tuple[int, ...]


@dataclass(frozen=True, slots=True)
class HvShuffleReply:
    """Shuffle answer carrying the responder's passive sample."""

    entries: Tuple[int, ...]


@dataclass(frozen=True, slots=True)
class Disconnect:
    """Clean active-view removal: the receiver repairs immediately."""


HYPARVIEW_MESSAGE_TYPES = (
    JoinRequest,
    ForwardJoin,
    NeighborRequest,
    NeighborReply,
    HvShuffle,
    HvShuffleReply,
    Disconnect,
)


class HyParViewPss:
    """One node's HyParView instance.

    Args:
        node_id: Owning node id.
        active_size: Active view capacity (the protocol's fanout+1
            guideline; EpTO's gossip fanout should not exceed it).
        passive_size: Passive view capacity (the backup reservoir).
        shuffle_size: Passive entries exchanged per shuffle.
        arwl: Active random-walk length for forwarded joins/shuffles.
        send: Outgoing channel ``send(dst, message)``.
        rng: Randomness for eviction and subset choices.
    """

    def __init__(
        self,
        node_id: int,
        active_size: int,
        passive_size: int,
        send: Callable[[int, object], None],
        rng: random.Random,
        shuffle_size: int | None = None,
        arwl: int = 3,
    ) -> None:
        if active_size < 1:
            raise ConfigurationError(f"active_size must be >= 1, got {active_size}")
        if passive_size < 1:
            raise ConfigurationError(
                f"passive_size must be >= 1, got {passive_size}"
            )
        if arwl < 0:
            raise ConfigurationError(f"arwl must be >= 0, got {arwl}")
        self.node_id = node_id
        self.active_size = active_size
        self.passive_size = passive_size
        self.shuffle_size = (
            shuffle_size if shuffle_size is not None else max(1, passive_size // 2)
        )
        self.arwl = arwl
        self._send = send
        self._rng = rng
        self._active: List[int] = []
        self._passive: List[int] = []
        self.repairs_attempted = 0
        self.disconnects_received = 0

    # ------------------------------------------------------------------
    # Bootstrap / introspection
    # ------------------------------------------------------------------

    def bootstrap(self, peer_ids: Sequence[int], contact: int | None = None) -> None:
        """Seed the passive view and join through *contact*.

        The introducer sample lands in the passive view; the first
        shuffle tick promotes from it. When a *contact* is given (or
        available in the sample) a :class:`JoinRequest` kicks off the
        protocol's own admission walk as well.
        """
        for peer in peer_ids:
            self._add_passive(peer)
        if contact is None and self._passive:
            contact = self._passive[0]
        if contact is not None and contact != self.node_id:
            self._send(contact, JoinRequest())
        self._repair()

    def view_snapshot(self) -> Sequence[int]:
        """Active view contents (the gossip targets)."""
        return tuple(self._active)

    def active_view(self) -> Sequence[int]:
        return tuple(self._active)

    def passive_view(self) -> Sequence[int]:
        return tuple(self._passive)

    # ------------------------------------------------------------------
    # PeerSampler protocol
    # ------------------------------------------------------------------

    def sample(self, k: int) -> Sequence[int]:
        """Up to *k* peers, preferring the active view.

        Falls back to passive entries while the active view is under
        strength so dissemination keeps flowing during handshakes.
        """
        peers = list(self._active)
        if len(peers) < k:
            extra = [p for p in self._passive if p not in peers]
            self._rng.shuffle(extra)
            peers.extend(extra[: k - len(peers)])
        if k >= len(peers):
            self._rng.shuffle(peers)
            return peers
        return self._rng.sample(peers, k)

    # ------------------------------------------------------------------
    # Periodic maintenance
    # ------------------------------------------------------------------

    def shuffle(self) -> None:
        """One maintenance tick: repair the active view, then shuffle.

        Repair is the reactive leg run proactively: any capacity gap
        (failed or disconnected neighbour) triggers a promotion attempt
        from the passive view. The shuffle leg refreshes the passive
        reservoir through a TTL-limited walk, as in the original
        protocol.
        """
        self._repair()
        if not self._active:
            return
        entries = self._shuffle_sample()
        dst = self._active[self._rng.randrange(len(self._active))]
        self._send(dst, HvShuffle(origin=self.node_id, ttl=self.arwl, entries=entries))

    def on_peer_down(self, peer: int) -> None:
        """Reactive repair hook: *peer* is known failed; replace it."""
        self._drop_everywhere(peer)
        self._repair()

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------

    def handle_message(self, src: int, message: object) -> None:
        if isinstance(message, JoinRequest):
            self._on_join(src)
        elif isinstance(message, ForwardJoin):
            self._on_forward_join(src, message)
        elif isinstance(message, NeighborRequest):
            self._on_neighbor_request(src, message)
        elif isinstance(message, NeighborReply):
            self._on_neighbor_reply(src, message)
        elif isinstance(message, HvShuffle):
            self._on_shuffle(src, message)
        elif isinstance(message, HvShuffleReply):
            self._merge_passive(message.entries)
        elif isinstance(message, Disconnect):
            self.disconnects_received += 1
            if src in self._active:
                self._active.remove(src)
                self._add_passive(src)
            self._repair()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _on_join(self, joiner: int) -> None:
        self._add_active(joiner)
        for peer in self._active:
            if peer != joiner:
                self._send(peer, ForwardJoin(joiner=joiner, ttl=self.arwl))

    def _on_forward_join(self, src: int, message: ForwardJoin) -> None:
        joiner = message.joiner
        if joiner == self.node_id:
            return
        if message.ttl <= 0 or len(self._active) <= 1:
            self._add_active(joiner)
            self._send(joiner, NeighborReply(accepted=True))
            return
        self._add_passive(joiner)
        forwards = [p for p in self._active if p not in (src, joiner)]
        if forwards:
            dst = forwards[self._rng.randrange(len(forwards))]
            self._send(dst, ForwardJoin(joiner=joiner, ttl=message.ttl - 1))

    def _on_neighbor_request(self, src: int, message: NeighborRequest) -> None:
        if src in self._active:
            self._send(src, NeighborReply(accepted=True))
            return
        if len(self._active) < self.active_size or message.priority:
            self._add_active(src)
            self._send(src, NeighborReply(accepted=True))
        else:
            self._add_passive(src)
            self._send(src, NeighborReply(accepted=False))

    def _on_neighbor_reply(self, src: int, message: NeighborReply) -> None:
        if message.accepted:
            self._add_active(src)
        else:
            # Keep it as a backup; the next repair tick tries another.
            self._add_passive(src)

    def _on_shuffle(self, src: int, message: HvShuffle) -> None:
        if message.ttl > 0 and len(self._active) > 1:
            forwards = [p for p in self._active if p not in (src, message.origin)]
            if forwards:
                dst = forwards[self._rng.randrange(len(forwards))]
                self._send(
                    dst,
                    HvShuffle(
                        origin=message.origin,
                        ttl=message.ttl - 1,
                        entries=message.entries,
                    ),
                )
                return
        if message.origin != self.node_id:
            self._send(message.origin, HvShuffleReply(entries=self._shuffle_sample()))
        self._merge_passive(message.entries)

    def _shuffle_sample(self) -> Tuple[int, ...]:
        pool = [p for p in self._active + self._passive if p != self.node_id]
        self._rng.shuffle(pool)
        # Dedup while preserving the shuffled order.
        seen: set[int] = set()
        sample: List[int] = [self.node_id]
        for peer in pool:
            if peer not in seen:
                seen.add(peer)
                sample.append(peer)
            if len(sample) > self.shuffle_size:
                break
        return tuple(sample)

    def _repair(self) -> None:
        """Promote passive peers while the active view is under strength."""
        while len(self._active) < self.active_size and self._passive:
            idx = self._rng.randrange(len(self._passive))
            candidate = self._passive.pop(idx)
            self.repairs_attempted += 1
            self._send(
                candidate, NeighborRequest(priority=not self._active)
            )
            # Optimistic: treat the candidate as active immediately so
            # gossip can use it; a rejection demotes it back to passive
            # via the NeighborReply handler.
            self._add_active(candidate)

    def _add_active(self, peer: int) -> None:
        if peer == self.node_id or peer in self._active:
            return
        if peer in self._passive:
            self._passive.remove(peer)
        while len(self._active) >= self.active_size:
            victim = self._active.pop(self._rng.randrange(len(self._active)))
            self._send(victim, Disconnect())
            self._add_passive(victim)
        self._active.append(peer)

    def _add_passive(self, peer: int) -> None:
        if peer == self.node_id or peer in self._active or peer in self._passive:
            return
        while len(self._passive) >= self.passive_size:
            self._passive.pop(self._rng.randrange(len(self._passive)))
        self._passive.append(peer)

    def _merge_passive(self, entries: Sequence[int]) -> None:
        for peer in entries:
            self._add_passive(peer)

    def _drop_everywhere(self, peer: int) -> None:
        if peer in self._active:
            self._active.remove(peer)
        if peer in self._passive:
            self._passive.remove(peer)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HyParViewPss(node={self.node_id}, "
            f"active={len(self._active)}/{self.active_size}, "
            f"passive={len(self._passive)}/{self.passive_size})"
        )
