"""End-to-end latency models (paper §6, Figure 5).

The paper draws message latencies from a sample of 226 geographically
dispersed PlanetLab nodes (Figure 5): mean ≈ 157 ticks, standard
deviation ≈ 119, and 5th/50th/95th percentiles of 15, 125 and 366
ticks. We do not have the raw trace, so :class:`PlanetLabLatency`
synthesizes an equivalent distribution — a mixture of a small
low-latency component (nearby nodes) and a log-normal body with a heavy
tail — whose parameters were fitted to those published statistics. The
simulation consumes only latency *samples*, so matching the summary
statistics preserves the behaviour the experiments exercise (most links
comfortably below the round duration ``delta = 125``, a tail up to
several times ``delta``).

All models return integer tick latencies ``>= 1`` (a message can never
arrive at the tick it was sent, keeping causality trivially visible in
traces).
"""

from __future__ import annotations

import math
import random
from typing import Protocol, Sequence, runtime_checkable

from ..core.errors import ConfigurationError


@runtime_checkable
class LatencyModel(Protocol):
    """Samples one-way message latencies in ticks."""

    def sample(self, rng: random.Random, src: int, dst: int) -> int:
        """Latency in ticks for one message from *src* to *dst*."""
        ...


class FixedLatency:
    """Constant latency — handy for deterministic unit tests."""

    def __init__(self, ticks: int) -> None:
        if ticks < 1:
            raise ConfigurationError(f"latency must be >= 1 tick, got {ticks}")
        self.ticks = ticks

    def sample(self, rng: random.Random, src: int, dst: int) -> int:
        return self.ticks


class UniformLatency:
    """Uniformly distributed latency over ``[low, high]`` ticks."""

    def __init__(self, low: int, high: int) -> None:
        if not 1 <= low <= high:
            raise ConfigurationError(f"need 1 <= low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random, src: int, dst: int) -> int:
        return rng.randint(self.low, self.high)


class LogNormalLatency:
    """Log-normally distributed latency, the classic WAN heavy tail.

    Args:
        mu: Location parameter (log-scale).
        sigma: Shape parameter (log-scale).
        cap: Optional hard upper bound in ticks, to keep pathological
            samples from stalling a simulation.
    """

    def __init__(self, mu: float, sigma: float, cap: int | None = None) -> None:
        if sigma <= 0:
            raise ConfigurationError(f"sigma must be > 0, got {sigma}")
        if cap is not None and cap < 1:
            raise ConfigurationError(f"cap must be >= 1, got {cap}")
        self.mu = mu
        self.sigma = sigma
        self.cap = cap

    def sample(self, rng: random.Random, src: int, dst: int) -> int:
        value = int(round(rng.lognormvariate(self.mu, self.sigma)))
        if self.cap is not None and value > self.cap:
            value = self.cap
        return max(1, value)


class EmpiricalLatency:
    """Resamples latencies uniformly from a supplied trace.

    Use this when an actual latency trace is available; the Figure 5
    reproduction uses :class:`PlanetLabLatency` instead because the
    paper's trace is not published.
    """

    def __init__(self, samples: Sequence[int]) -> None:
        if not samples:
            raise ConfigurationError("empirical latency needs at least one sample")
        cleaned = [max(1, int(s)) for s in samples]
        self._samples = cleaned

    def sample(self, rng: random.Random, src: int, dst: int) -> int:
        return rng.choice(self._samples)

    @property
    def trace(self) -> Sequence[int]:
        """The (cleaned) backing samples."""
        return tuple(self._samples)


class PlanetLabLatency:
    """Synthetic stand-in for the paper's PlanetLab trace (Figure 5).

    A two-component mixture:

    * with probability ``p_near`` (default 10%), a short uniform
      latency in ``[5, 30]`` ticks — the nearby-node mass that puts the
      5th percentile at ≈ 15 ticks;
    * otherwise, a log-normal body ``LogNormal(mu, sigma)`` fitted so
      the mixture matches the published median (≈ 125), 95th percentile
      (≈ 366), mean (≈ 157) and standard deviation (≈ 119).

    Samples are capped at ``cap`` (default 800 ticks, the figure's
    x-axis limit) — about 6.4x the round duration, matching the paper's
    "up to six times the round duration in the worst case".
    """

    #: Fitted constants (see class docstring; validated by the Figure 5
    #: benchmark and tests/sim/test_latency.py).
    P_NEAR = 0.10
    NEAR_LOW = 5
    NEAR_HIGH = 30
    MU = 4.915
    SIGMA = 0.62
    CAP = 800

    def __init__(
        self,
        p_near: float = P_NEAR,
        mu: float = MU,
        sigma: float = SIGMA,
        cap: int = CAP,
    ) -> None:
        if not 0.0 <= p_near < 1.0:
            raise ConfigurationError(f"p_near must be in [0, 1), got {p_near}")
        self.p_near = p_near
        self.mu = mu
        self.sigma = sigma
        self.cap = cap

    def sample(self, rng: random.Random, src: int, dst: int) -> int:
        if rng.random() < self.p_near:
            return rng.randint(self.NEAR_LOW, self.NEAR_HIGH)
        value = int(round(rng.lognormvariate(self.mu, self.sigma)))
        return max(1, min(self.cap, value))

    def percentiles(self, rng: random.Random, points: Sequence[float], draws: int = 20000) -> list[float]:
        """Monte-Carlo percentile estimates (used by tests/benchmarks)."""
        samples = sorted(self.sample(rng, 0, 1) for _ in range(draws))
        result = []
        for p in points:
            idx = min(len(samples) - 1, max(0, int(p / 100.0 * len(samples))))
            result.append(float(samples[idx]))
        return result


def make_latency_model(name: str, **kwargs: object) -> LatencyModel:
    """Build a latency model by name.

    Recognized names: ``fixed``, ``uniform``, ``lognormal``,
    ``empirical``, ``planetlab``.
    """
    factories = {
        "fixed": FixedLatency,
        "uniform": UniformLatency,
        "lognormal": LogNormalLatency,
        "empirical": EmpiricalLatency,
        "planetlab": PlanetLabLatency,
    }
    try:
        factory = factories[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown latency model {name!r}; choose from {sorted(factories)}"
        ) from None
    return factory(**kwargs)  # type: ignore[arg-type]
