"""Deterministic discrete-event simulation engine (paper §6).

The paper's evaluation uses "a realistic discrete simulator [...] using
a priority queue and a monotonically increasing integer to represent
the passage of time, i.e., a tick". This module is that engine:

* time is an integer tick counter, advanced only by popping the next
  scheduled action off a heap;
* ties are broken by insertion order, so a run is a pure function of
  ``(seed, configuration)`` — no wall-clock, no hash-order dependence;
* every piece of randomness in a simulation flows through
  :attr:`Simulator.rng` (or generators forked from it via
  :meth:`Simulator.fork_rng`), keeping runs reproducible.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from ..core.errors import SimulationError

#: Scheduled actions take no arguments; close over what you need.
Action = Callable[[], None]


@dataclass(slots=True)
class ScheduledEvent:
    """Internal heap entry; exposed only through :class:`Handle`."""

    time: int
    seq: int
    action: Optional[Action]

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Handle:
    """Cancellation handle returned by :meth:`Simulator.schedule`."""

    __slots__ = ("_entry",)

    def __init__(self, entry: ScheduledEvent) -> None:
        self._entry = entry

    def cancel(self) -> None:
        """Prevent the action from running (idempotent)."""
        self._entry.action = None

    @property
    def cancelled(self) -> bool:
        """Whether the action was cancelled or already executed."""
        return self._entry.action is None

    @property
    def time(self) -> int:
        """Tick at which the action is (was) due."""
        return self._entry.time


class Simulator:
    """Priority-queue discrete-event simulator with integer ticks.

    Args:
        seed: Seed for the simulation-wide random generator. Two
            simulators created with the same seed and fed the same
            schedule produce bit-identical runs.

    Example:
        >>> sim = Simulator(seed=42)
        >>> fired = []
        >>> _ = sim.schedule(10, lambda: fired.append(sim.now()))
        >>> sim.run()
        >>> fired
        [10]
    """

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)
        self._seed = seed
        self._queue: List[ScheduledEvent] = []
        self._time = 0
        self._seq = itertools.count()
        self._executed = 0
        self._running = False

    # ------------------------------------------------------------------
    # Time and randomness
    # ------------------------------------------------------------------

    def now(self) -> int:
        """Current simulation time in ticks."""
        return self._time

    def fork_rng(self, label: str) -> random.Random:
        """Derive an independent, reproducible random stream.

        Distinct subsystems (network loss, latency sampling, workload,
        churn, per-node peer selection...) should each own a forked
        stream so that changing how one subsystem consumes randomness
        does not perturb the others across runs.
        """
        return random.Random(f"{self._seed}:{label}")

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(self, delay: int, action: Action) -> Handle:
        """Run *action* ``delay`` ticks from now (``delay >= 0``)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        return self.schedule_at(self._time + int(delay), action)

    def schedule_at(self, time: int, action: Action) -> Handle:
        """Run *action* at absolute tick *time* (``time >= now()``)."""
        if time < self._time:
            raise SimulationError(
                f"cannot schedule at {time}, current time is {self._time}"
            )
        entry = ScheduledEvent(time=int(time), seq=next(self._seq), action=action)
        heapq.heappush(self._queue, entry)
        return Handle(entry)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of scheduled (possibly cancelled) future actions."""
        return len(self._queue)

    @property
    def executed(self) -> int:
        """Number of actions executed so far."""
        return self._executed

    def step(self) -> bool:
        """Execute the next scheduled action.

        Returns:
            ``True`` if an action ran, ``False`` if the queue is empty.
            Cancelled entries are skipped transparently.
        """
        while self._queue:
            entry = heapq.heappop(self._queue)
            if entry.action is None:
                continue  # cancelled
            self._time = entry.time
            action, entry.action = entry.action, None
            self._executed += 1
            action()
            return True
        return False

    def run(self, until: int | None = None, max_events: int | None = None) -> None:
        """Drain the queue, optionally bounded in time or event count.

        Args:
            until: Stop once the next action is strictly after this
                tick (the clock is then advanced to ``until``).
            max_events: Safety bound on the number of actions executed
                by *this call*; exceeding it raises
                :class:`~repro.core.errors.SimulationError`, which
                usually signals a runaway self-rescheduling loop.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        executed_here = 0
        try:
            while self._queue:
                entry = self._queue[0]
                if entry.action is None:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and entry.time > until:
                    break
                if max_events is not None and executed_here >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} at tick {self._time}"
                    )
                self.step()
                executed_here += 1
            if until is not None and self._time < until:
                self._time = until
        finally:
            self._running = False

    def run_for(self, ticks: int) -> None:
        """Advance the simulation by *ticks* from the current time."""
        self.run(until=self._time + ticks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Simulator(t={self._time}, pending={len(self._queue)}, "
            f"executed={self._executed})"
        )


class PeriodicTask:
    """Self-rescheduling periodic action with optional per-period jitter.

    Models the paper's round task: "processes execute at time
    ``now() + delta ± Delta``" where ``Delta`` is the process drift
    (§6). The next period is sampled independently each time through
    ``period_source``, so drift does not accumulate bias.

    Args:
        sim: Host simulator.
        action: Zero-argument callable to run every period.
        period_source: Callable returning the next period length in
            ticks (e.g. a :class:`repro.sim.drift.DriftModel` bound to
            a node).
        initial_delay: Ticks before the first execution.
    """

    def __init__(
        self,
        sim: Simulator,
        action: Action,
        period_source: Callable[[], int],
        initial_delay: int = 0,
    ) -> None:
        self._sim = sim
        self._action = action
        self._period_source = period_source
        self._stopped = False
        self._handle = sim.schedule(initial_delay, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._action()
        if not self._stopped:
            period = max(1, int(self._period_source()))
            self._handle = self._sim.schedule(period, self._fire)

    def stop(self) -> None:
        """Stop the task permanently (idempotent)."""
        self._stopped = True
        self._handle.cancel()

    @property
    def stopped(self) -> bool:
        """Whether :meth:`stop` was called."""
        return self._stopped
