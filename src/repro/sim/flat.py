"""Flat-array batch simulation engine for paper-scale EpTO runs.

The object engine (:mod:`repro.sim.engine` + :mod:`repro.sim.cluster`)
hosts one Python object graph per node — an
:class:`~repro.core.process.EpToProcess` wired to per-node
:class:`~repro.core.dissemination.DisseminationComponent` /
:class:`~repro.core.ordering.OrderingComponent` instances — and drives
every round through heap callbacks and dynamic dispatch. That is the
right shape for correctness work, but attribute lookups, bound-method
calls and per-event closure allocation cap it near ``n = 4096``
(ROADMAP "paper-scale simulation").

This module re-hosts the *same algorithm* in flat per-node state:

* every per-node quantity lives in a plain list indexed by node id
  (pending-ball dicts, ordering heaps, logical clocks, RNG streams —
  stdlib containers only, no numpy);
* one calendar-queue pass executes a whole tick — all round fires and
  ball deliveries due at that time — without constructing
  ``ScheduledEvent`` / ``Handle`` / lambda objects per message;
* the dissemination + ordering round body is inlined into two methods
  (:meth:`FlatCluster._run_round`, :meth:`FlatCluster._receive_ball`)
  with hot values hoisted into locals.

**Bit-for-bit equivalence with the object engine is a hard contract**,
enforced by ``tests/sim/test_flat_equivalence.py`` through
:mod:`repro.analysis.differential`: same seed + same config must yield
identical per-node delivery sequences, delivery times and network
counters. Every RNG stream keeps the object engine's label
(``cluster``, ``node:<id>``, ``network.loss``, ``network.latency``,
``faults``, ``workload`` …) and every draw happens in the same order,
so the driver layer — :class:`~repro.sim.engine.PeriodicTask`,
:class:`~repro.workloads.broadcast.ProbabilisticWorkload`,
:class:`~repro.sim.churn.ChurnDriver`,
:class:`~repro.faults.sim_injector.SimFaultInjector` — runs unchanged
against :class:`FlatEngine` / :class:`FlatCluster`.

Deliberately out of scope (the object engine remains the reference for
these; constructors raise rather than silently diverge): the Cyclon
PSS, durable storage / anti-entropy sync, tagged delivery, the §8.4
stability estimator and Byzantine adversaries. See
docs/PERFORMANCE.md for when to choose which engine.
"""

from __future__ import annotations

import random
from heapq import heappop, heappush
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.errors import MembershipError, SimulationError
from ..core.event import Event, OrderKey
from ..metrics.collector import DeliveryCollector
from ..pss.base import MembershipDirectory
from .cluster import ClusterConfig
from .drift import NoDrift
from .latency import FixedLatency, LatencyModel
from .network import NetworkStats

__all__ = ["FlatEngine", "FlatHandle", "FlatCluster", "FlatNetwork"]

# Calendar entry opcodes. Tuples beat objects here: no per-message
# allocation beyond the tuple itself, and dispatch is one int compare.
_OP_CALL = 0  # (_OP_CALL, [action-or-None])
_OP_ROUND = 1  # (_OP_ROUND, node_id, incarnation)
_OP_BALL = 2  # (_OP_BALL, src, dst, ball)

#: Order key smaller than every real key (mirrors ordering.py).
_MINUS_INFINITY_KEY: OrderKey = (-1, -1, -1)

# FNV-1a-style rolling hash over delivered order keys: lets the
# low-memory "stats" recording mode prove total-order agreement (equal
# hash + equal count => equal sequence w.h.p.) without storing
# per-node key lists at n = 64k.
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_U64 = 0xFFFFFFFFFFFFFFFF


class FlatHandle:
    """Cancellation token for a generic :meth:`FlatEngine.schedule` call.

    Mirrors :class:`repro.sim.engine.Handle` closely enough for
    :class:`~repro.sim.engine.PeriodicTask` to run unchanged: the
    action lives in a one-slot list shared with the calendar entry, and
    cancelling nulls it out.
    """

    __slots__ = ("_cell",)

    def __init__(self, cell: List[Optional[Callable[[], None]]]) -> None:
        self._cell = cell

    def cancel(self) -> None:
        """Prevent the scheduled action from running (idempotent)."""
        self._cell[0] = None

    @property
    def cancelled(self) -> bool:
        """Whether the action was cancelled or already executed."""
        return self._cell[0] is None


class FlatEngine:
    """Calendar-queue discrete-event core of the flat engine.

    Time and randomness are API-compatible with
    :class:`~repro.sim.engine.Simulator` (``now``/``schedule``/
    ``schedule_at``/``fork_rng``/``run``), but the event queue is a
    ``{tick: FIFO bucket}`` calendar plus a min-heap of tick keys:
    one heap operation drains a whole tick instead of one per entry,
    and the bucket append order reproduces the object engine's
    ``(time, seq)`` tie-break exactly — entries scheduled at the
    current tick while it is being processed run after the remaining
    entries of that tick, just as a higher ``seq`` would.
    """

    __slots__ = (
        "seed",
        "_time",
        "_calendar",
        "_ticks",
        "_cluster",
        "_executed",
        "_running",
    )

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._time = 0
        self._calendar: Dict[int, list] = {}
        self._ticks: List[int] = []
        self._cluster: Optional["FlatCluster"] = None
        self._executed = 0
        self._running = False

    # ------------------------------------------------------------------
    # Simulator-compatible surface
    # ------------------------------------------------------------------

    def now(self) -> int:
        """Current simulated time."""
        return self._time

    @property
    def executed_count(self) -> int:
        """Number of calendar entries processed so far."""
        return self._executed

    def fork_rng(self, label: str) -> random.Random:
        """Derive a named random stream (same derivation as Simulator).

        Identical ``(seed, label)`` pairs yield identical streams in
        both engines — the foundation of the differential harness.
        """
        return random.Random(f"{self.seed}:{label}")

    def schedule(self, delay: int, action: Callable[[], None]) -> FlatHandle:
        """Run *action* after *delay* ticks; returns a cancel handle."""
        delay = int(delay)
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        cell: List[Optional[Callable[[], None]]] = [action]
        self._push(self._time + delay, (_OP_CALL, cell))
        return FlatHandle(cell)

    def schedule_at(self, time: int, action: Callable[[], None]) -> FlatHandle:
        """Run *action* at absolute tick *time*."""
        time = int(time)
        if time < self._time:
            raise SimulationError(
                f"cannot schedule at {time}, current time is {self._time}"
            )
        cell: List[Optional[Callable[[], None]]] = [action]
        self._push(time, (_OP_CALL, cell))
        return FlatHandle(cell)

    def run(
        self, until: Optional[int] = None, max_events: Optional[int] = None
    ) -> int:
        """Process entries in time order; returns how many ran.

        With ``until`` the clock always advances to exactly ``until``
        (Simulator parity), even when the calendar drains early.
        """
        if self._running:
            raise SimulationError("engine is already running")
        self._running = True
        processed = 0
        calendar = self._calendar
        ticks = self._ticks
        cluster = self._cluster
        if cluster is not None:
            # Hot references for the inlined ball-delivery path below.
            # All of these are stable objects mutated in place for the
            # cluster's lifetime (lists indexed per node, the shared
            # partition dict, the stats record) — never rebound.
            run_round = cluster._run_round
            run_round_batch = cluster._run_round_batch
            alive = cluster._alive
            next_ball = cluster._next_ball
            clock_value = cluster._clock_value
            ttl_bound = cluster._ttl
            logical = cluster._logical
            net = cluster.network
            stats = net.stats
            partition = net._partition
        else:
            run_round = None
        try:
            while ticks:
                tick = ticks[0]
                if until is not None and tick > until:
                    break
                heappop(ticks)
                bucket = calendar.pop(tick, None)
                if bucket is None:
                    # Stale heap key: the tick's bucket was recreated
                    # and re-pushed while being processed.
                    continue
                self._time = tick
                index = 0
                # Index loop, not iteration: actions may append more
                # same-tick entries to this very bucket.
                while index < len(bucket):
                    entry = bucket[index]
                    index += 1
                    op = entry[0]
                    if op == _OP_ROUND:
                        if max_events is None:
                            # Whole-bucket fast path: consume the run of
                            # consecutive round entries in one call.
                            consumed = run_round_batch(bucket, index - 1)
                            index += consumed - 1
                            processed += consumed
                            continue
                        run_round(entry[1], entry[2])
                    elif op == _OP_BALL:
                        # FlatCluster._receive_ball, inlined (keep the
                        # two in sync — the method remains the reference
                        # implementation and is what shard.py calls).
                        dst = entry[2]
                        if not alive[dst]:
                            stats.dropped_dead += 1
                        elif net._partitioned and partition.get(
                            entry[1]
                        ) != partition.get(dst):
                            stats.dropped_partition += 1
                        else:
                            stats.delivered += 1
                            nb = next_ball[dst]
                            nb_get = nb.get
                            if logical:
                                clock = clock_value[dst]
                                for e in entry[3]:
                                    if e[3] < ttl_bound:
                                        eid = e[0]
                                        record = nb_get(eid)
                                        if record is None:
                                            nb[eid] = [eid, e[1], e[2], e[3]]
                                        elif e[3] > record[3]:
                                            record[3] = e[3]
                                    ts = e[1][0]
                                    if ts > clock:
                                        clock = ts
                                clock_value[dst] = clock
                            else:
                                for e in entry[3]:
                                    if e[3] < ttl_bound:
                                        eid = e[0]
                                        record = nb_get(eid)
                                        if record is None:
                                            nb[eid] = [eid, e[1], e[2], e[3]]
                                        elif e[3] > record[3]:
                                            record[3] = e[3]
                    else:
                        cell = entry[1]
                        action = cell[0]
                        if action is None:
                            continue
                        cell[0] = None
                        action()
                    processed += 1
                    if max_events is not None and processed >= max_events:
                        return processed
        finally:
            self._executed += processed
            self._running = False
        if until is not None and self._time < until:
            self._time = until
        return processed

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _push(self, tick: int, entry: tuple) -> None:
        """Append *entry* to the calendar bucket for *tick*."""
        bucket = self._calendar.get(tick)
        if bucket is None:
            self._calendar[tick] = [entry]
            heappush(self._ticks, tick)
        else:
            bucket.append(entry)

    def _bind_cluster(self, cluster: "FlatCluster") -> None:
        if self._cluster is not None:
            raise SimulationError("a FlatCluster is already bound to this engine")
        self._cluster = cluster

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FlatEngine(time={self._time}, pending_ticks={len(self._calendar)}, "
            f"executed={self._executed})"
        )


class FlatNetwork:
    """Message-fabric state for :class:`FlatCluster`.

    Holds exactly the knobs the object fabric
    (:class:`~repro.sim.network.SimNetwork`) exposes to fault
    injectors — ``loss_rate``, ``duplicate_rate``, ``latency``,
    partitions, :class:`~repro.sim.network.NetworkStats` — with the
    same RNG stream labels and draw order. The send/deliver paths
    themselves are inlined into :class:`FlatCluster` for speed; this
    object is the mutable control surface
    :class:`~repro.faults.sim_injector.SimFaultInjector` manipulates.
    """

    __slots__ = (
        "sim",
        "latency",
        "loss_rate",
        "duplicate_rate",
        "stats",
        "_loss_rng",
        "_latency_rng",
        "_partition",
        "_partitioned",
    )

    def __init__(
        self,
        sim: FlatEngine,
        latency: LatencyModel | None = None,
        loss_rate: float = 0.0,
        duplicate_rate: float = 0.0,
    ) -> None:
        self.sim = sim
        self.latency = latency if latency is not None else FixedLatency(1)
        self.loss_rate = float(loss_rate)
        self.duplicate_rate = float(duplicate_rate)
        self.stats = NetworkStats()
        self._loss_rng = sim.fork_rng("network.loss")
        self._latency_rng = sim.fork_rng("network.latency")
        self._partition: Dict[int, object] = {}
        self._partitioned = False

    def set_partition(self, groups: Dict[int, object]) -> None:
        """Partition the network: only same-group nodes can talk.

        Mutates the partition dict in place — the engine's run loop
        holds a reference to it across an entire ``run()`` call.
        """
        self._partition.clear()
        self._partition.update(groups)
        self._partitioned = True

    def heal_partition(self) -> None:
        """Remove any partition; full connectivity is restored."""
        self._partition.clear()
        self._partitioned = False

    def set_adversary(self, router: object) -> None:
        """Unsupported: Byzantine runs need the object engine."""
        raise MembershipError(
            "the flat engine does not support Byzantine adversaries; "
            "use SimNetwork/SimCluster for hostile-behavior runs"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FlatNetwork(loss={self.loss_rate}, sent={self.stats.sent}, "
            f"delivered={self.stats.delivered})"
        )


class FlatCluster:
    """All-node EpTO state in flat indexed arrays.

    Exposes the :class:`~repro.sim.cluster.SimCluster` membership and
    workload surface (``add_node(s)`` / ``remove_node`` /
    ``crash_node`` / ``respawn_node`` / ``broadcast_from`` /
    ``random_alive`` / ``alive_ids`` / ``size`` / ``directory`` /
    ``config`` / ``network`` / ``sim``) so churn drivers, workloads and
    fault injectors written against the object engine run unchanged —
    plus the delivery surfaces the metrics checkers consume
    (:meth:`sequences`, :meth:`deliveries`, :meth:`delivery_delays`,
    :meth:`as_collector`).

    Args:
        sim: A :class:`FlatEngine` (one cluster per engine).
        network: The :class:`FlatNetwork` control surface.
        config: The same :class:`~repro.sim.cluster.ClusterConfig` the
            object engine takes. Restricted to the idealized uniform
            PSS and the plain (untagged, no stability estimator) EpTO
            configuration; anything else raises ``MembershipError``.
        record: ``"sequences"`` (default) keeps full per-node delivery
            sequences and a global delivery log — what the differential
            harness and :meth:`as_collector` need. ``"stats"`` keeps
            only delivery delays, per-node counts and a rolling
            sequence hash — O(1) memory per delivery, for ``n >= 16k``
            runs where per-node key lists would dominate RSS.
    """

    def __init__(
        self,
        sim: FlatEngine,
        network: FlatNetwork,
        config: ClusterConfig,
        record: str = "sequences",
    ) -> None:
        if config.pss != "uniform":
            raise MembershipError(
                f"flat engine supports only the uniform PSS, got {config.pss!r}; "
                "use SimCluster for cyclon runs"
            )
        if config.epto.tagged_delivery or config.epto.expose_stability:
            raise MembershipError(
                "flat engine does not support tagged_delivery/expose_stability; "
                "use SimCluster for the §8.2/§8.4 extensions"
            )
        if record not in ("sequences", "stats"):
            raise MembershipError(f"unknown record mode {record!r}")
        self.sim = sim
        self.network = network
        self.config = config
        sim._bind_cluster(self)

        epto = config.epto
        self._fanout = epto.fanout
        self._ttl = epto.ttl
        self._interval = epto.round_interval
        self._logical = epto.clock == "logical"
        # Duplicate-memory horizon: ids stay in the delivered set for
        # 2*TTL+2 ordering rounds (same window as OrderingComponent).
        self._prune_window = 2 * epto.ttl + 2
        self._drift = config.drift
        # NoDrift consumes no RNG draws, so skipping the call outright
        # cannot perturb any stream (checked by the differential tests).
        self._no_drift = type(config.drift) is NoDrift
        self._staggered = config.round_phase == "staggered"

        self.directory = MembershipDirectory()
        self._rng = sim.fork_rng("cluster")
        self._next_id = 0
        self._crashed: Dict[int, int] = {}

        # -- flat per-node state, every list indexed by node id --------
        self._alive: List[bool] = []
        self._incarnation: List[int] = []
        self._node_rng: List[Optional[random.Random]] = []
        self._issued: List[int] = []  # broadcast sequence counter
        self._clock_value: List[int] = []  # logical clock (Alg. 4)
        self._next_ball: List[Optional[dict]] = []  # eid -> [eid, key, payload, ttl]
        self._ord_rounds: List[int] = []
        self._received: List[Optional[dict]] = []  # eid -> [key, payload, ttl, round]
        self._frontier: List[Optional[dict]] = []  # due round -> [eid, ...]
        self._queued: List[Optional[list]] = []  # min-heap of (key, eid)
        self._ready: List[Optional[list]] = []  # min-heap of (key, eid)
        self._ready_ids: List[Optional[set]] = []
        self._delivered_ids: List[Optional[set]] = []
        self._expiry: List[Optional[list]] = []  # [(round, eid), ...] FIFO
        self._expiry_head: List[int] = []
        self._last_key: List[OrderKey] = []

        # -- aggregate counters (cluster-wide, cheap to keep) ----------
        self.delivered_total = 0
        self.discarded_duplicates = 0
        self.discarded_late = 0

        # -- delivery recording ----------------------------------------
        self._record_sequences = record == "sequences"
        #: eid -> (order key, broadcast tick, payload)
        self._broadcasts: Dict[Tuple[int, int], tuple] = {}
        self._membership_log: List[tuple] = []
        self._sequences: Dict[int, List[OrderKey]] = {}
        self._delivery_log: List[tuple] = []
        self._delays: List[int] = []
        self._counts: Dict[int, int] = {}
        self._hashes: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Membership (SimCluster surface)
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of live nodes."""
        return len(self.directory)

    def alive_ids(self) -> Sequence[int]:
        """Ids of every live node."""
        return self.directory.alive_ids()

    def add_node(self) -> int:
        """Provision and start one node; returns its id."""
        node_id = self._next_id
        self._next_id += 1
        self._start_node(node_id, None)
        return node_id

    def add_nodes(self, count: int) -> Sequence[int]:
        """Provision *count* nodes."""
        return [self.add_node() for _ in range(count)]

    def remove_node(self, node_id: int) -> None:
        """Stop a node permanently; in-flight messages to it are lost."""
        if node_id >= len(self._alive) or not self._alive[node_id]:
            raise MembershipError(f"node {node_id} is not alive")
        self._alive[node_id] = False
        # Bumping the incarnation invalidates the pending round fire —
        # the flat equivalent of PeriodicTask.stop().
        self._incarnation[node_id] += 1
        # Release the per-node state (the object engine drops the whole
        # process object here).
        self._node_rng[node_id] = None
        self._next_ball[node_id] = None
        self._received[node_id] = None
        self._frontier[node_id] = None
        self._queued[node_id] = None
        self._ready[node_id] = None
        self._ready_ids[node_id] = None
        self._delivered_ids[node_id] = None
        self._expiry[node_id] = None
        # SimNetwork.unregister drops the node's partition label.
        self.network._partition.pop(node_id, None)
        self.directory.remove(node_id)
        self._membership_log.append(("remove", node_id, self.sim._time))

    def crash_node(self, node_id: int) -> None:
        """Crash a node, remembering its broadcast sequence for respawn."""
        if node_id >= len(self._alive) or not self._alive[node_id]:
            raise MembershipError(f"node {node_id} is not alive")
        issued = self._issued[node_id]
        self.remove_node(node_id)
        self._crashed[node_id] = issued

    def respawn_node(self, node_id: int) -> int:
        """Restart a crashed node under the same id.

        The broadcast sequence resumes past the crashed incarnation's
        last issue (no id reuse); ordering state and the logical clock
        restart empty, exactly like a memory-only SimCluster respawn.
        """
        try:
            issued = self._crashed.pop(node_id)
        except KeyError:
            raise MembershipError(f"node {node_id} was not crashed") from None
        self._start_node(node_id, issued)
        return node_id

    def crashed_ids(self) -> Sequence[int]:
        """Ids of crashed nodes that have not been respawned."""
        return tuple(sorted(self._crashed))

    def random_alive(self, rng: random.Random | None = None) -> int:
        """Pick a uniformly random live node id."""
        chooser = rng if rng is not None else self._rng
        ids = self.directory.alive_ids()
        if not ids:
            raise MembershipError("no alive nodes")
        return ids[chooser.randrange(len(ids))]

    def broadcast_from(self, node_id: int, payload: Any = None) -> Event:
        """EpTO-broadcast *payload* from *node_id* (Algorithm 1)."""
        if node_id >= len(self._alive) or not self._alive[node_id]:
            raise MembershipError(f"node {node_id} is not alive")
        if self._logical:
            ts = self._clock_value[node_id] + 1
            self._clock_value[node_id] = ts
        else:
            ts = self.sim._time
        seq = self._issued[node_id]
        self._issued[node_id] = seq + 1
        eid = (node_id, seq)
        key = (ts, node_id, seq)
        self._next_ball[node_id][eid] = [eid, key, payload, 0]
        self._broadcasts[eid] = (key, self.sim._time, payload)
        return Event(id=eid, ts=ts, source_id=node_id, payload=payload)

    def run(self, until: Optional[int] = None) -> int:
        """Convenience passthrough to :meth:`FlatEngine.run`."""
        return self.sim.run(until=until)

    # ------------------------------------------------------------------
    # Node lifecycle
    # ------------------------------------------------------------------

    def _ensure_capacity(self, node_id: int) -> None:
        while len(self._alive) <= node_id:
            self._alive.append(False)
            self._incarnation.append(0)
            self._node_rng.append(None)
            self._issued.append(0)
            self._clock_value.append(0)
            self._next_ball.append(None)
            self._ord_rounds.append(0)
            self._received.append(None)
            self._frontier.append(None)
            self._queued.append(None)
            self._ready.append(None)
            self._ready_ids.append(None)
            self._delivered_ids.append(None)
            self._expiry.append(None)
            self._expiry_head.append(0)
            self._last_key.append(_MINUS_INFINITY_KEY)

    def _start_node(self, node_id: int, resume_sequence: Optional[int]) -> None:
        sim = self.sim
        # Same stream label as the object engine; a same-id respawn
        # restarts the stream from its beginning there too (the node
        # object is rebuilt from the same fork).
        node_rng = sim.fork_rng(f"node:{node_id}")
        self._ensure_capacity(node_id)
        self._incarnation[node_id] += 1
        incarnation = self._incarnation[node_id]
        self._alive[node_id] = True
        self._node_rng[node_id] = node_rng
        self._issued[node_id] = int(resume_sequence) if resume_sequence else 0
        self._clock_value[node_id] = 0
        self._next_ball[node_id] = {}
        self._ord_rounds[node_id] = 0
        self._received[node_id] = {}
        self._frontier[node_id] = {}
        self._queued[node_id] = []
        self._ready[node_id] = []
        self._ready_ids[node_id] = set()
        self._delivered_ids[node_id] = set()
        self._expiry[node_id] = []
        self._expiry_head[node_id] = 0
        self._last_key[node_id] = _MINUS_INFINITY_KEY
        self.directory.add(node_id)
        now = sim._time
        self._membership_log.append(("add", node_id, now))
        if self._record_sequences and node_id not in self._sequences:
            self._sequences[node_id] = []
        interval = self._interval
        if self._staggered:
            first = self._rng.randrange(max(1, interval)) + 1
        else:
            first = self._drift.next_period(node_rng, node_id, interval)
        sim._push(now + int(first), (_OP_ROUND, node_id, incarnation))

    # ------------------------------------------------------------------
    # Hot path: one node-round (Algorithms 1 + 2, inlined)
    # ------------------------------------------------------------------

    def _run_round(self, node: int, incarnation: int) -> None:
        """One node-round; thin wrapper over :meth:`_run_round_batch`.

        The sharded driver calls this per node; the engine's run loop
        calls the batch form directly over whole calendar buckets.
        """
        self._run_round_batch(((_OP_ROUND, node, incarnation),), 0)

    def _run_round_batch(self, bucket: Sequence[tuple], start: int) -> int:
        """Execute a maximal run of consecutive ``_OP_ROUND`` entries.

        Processes ``bucket[start:]`` up to the first non-round entry
        and returns how many entries were consumed. Batching is sound
        because round bodies never append same-tick work (every latency
        model and round period is >= 1 tick) and never mutate
        membership, the partition map or the network knobs — those
        change only through ``_OP_CALL`` actions, which terminate a
        batch. Under synchronized rounds one tick holds a round entry
        for every node, so hoisting engine/network state once per batch
        instead of once per node is a large share of the flat engine's
        advantage at n >= 4k.
        """
        sim = self.sim
        now_tick = sim._time
        calendar = sim._calendar
        calendar_get = calendar.get
        ticks = sim._ticks
        incarnations = self._incarnation
        node_rngs = self._node_rng
        next_balls = self._next_ball
        ord_rounds = self._ord_rounds
        expiries = self._expiry
        expiry_heads = self._expiry_head
        frontiers = self._frontier
        readies = self._ready
        prune_window = self._prune_window
        no_drift = self._no_drift
        interval = self._interval
        drift = self._drift
        alive = self._alive
        directory = self.directory
        population = directory._alive
        net = self.network
        stats = net.stats
        loss_rate = net.loss_rate
        duplicate_rate = net.duplicate_rate
        loss_random = net._loss_rng.random
        latency = net.latency
        # FixedLatency draws nothing from the latency RNG, so its
        # constant can be hoisted out of the send loops entirely.
        if type(latency) is FixedLatency:
            latency_sample = None
            fixed_delay = now_tick + int(latency.ticks)
        else:
            latency_sample = latency.sample
            fixed_delay = 0
        latency_rng = net._latency_rng
        partition = net._partition
        partitioned = net._partitioned
        # Peer-sampling constants: membership is fixed for the batch.
        fanout = self._fanout
        pool_n = len(population)
        avail = pool_n - 1  # the sampling node is alive, hence excluded
        k = fanout if fanout < avail else avail
        sparse = k * 3 < avail
        nbits = pool_n.bit_length()

        index = start
        end = len(bucket)
        while index < end:
            entry = bucket[index]
            if entry[0] != _OP_ROUND:
                break
            index += 1
            node = entry[1]
            incarnation = entry[2]
            if incarnations[node] != incarnation:
                continue  # node removed/respawned since this fire queued
            node_rng = node_rngs[node]
            nb = next_balls[node]
            if nb:
                # Age every pending record and relay the ball to K
                # peers. One ball list is shared by all K sends (and
                # any duplicates) — never copied, matching send_many.
                ball = [
                    (rec[0], rec[1], rec[2], rec[3] + 1) for rec in nb.values()
                ]
                nb.clear()
                # Peer sampling, inlined from MembershipDirectory.sample
                # for the sparse rejection branch. The getrandbits loop
                # is byte-for-byte CPython's Random._randbelow, so it
                # consumes the identical bit stream randrange() would.
                if k <= 0:
                    peers: Sequence[int] = ()
                elif sparse:
                    getrandbits = node_rng.getrandbits
                    peers = []
                    peers_append = peers.append
                    seen = {node}
                    seen_add = seen.add
                    count = 0
                    while count < k:
                        r = getrandbits(nbits)
                        while r >= pool_n:
                            r = getrandbits(nbits)
                        candidate = population[r]
                        if candidate not in seen:
                            seen_add(candidate)
                            peers_append(candidate)
                            count += 1
                else:
                    peers = directory.sample(node_rng, fanout, exclude=node)
                for dst in peers:
                    stats.sent += 1
                    if partitioned and partition.get(node) != partition.get(dst):
                        stats.dropped_partition += 1
                        continue
                    if loss_rate > 0.0 and loss_random() < loss_rate:
                        stats.dropped_loss += 1
                        continue
                    if not alive[dst]:
                        stats.dropped_dead += 1
                        continue
                    if latency_sample is None:
                        tick = fixed_delay
                    else:
                        tick = now_tick + int(
                            latency_sample(latency_rng, node, dst)
                        )
                    # sim._push, inlined: one dict probe per message
                    # (the heap only grows on fresh ticks).
                    slot = calendar_get(tick)
                    if slot is None:
                        calendar[tick] = [(_OP_BALL, node, dst, ball)]
                        heappush(ticks, tick)
                    else:
                        slot.append((_OP_BALL, node, dst, ball))
                    if duplicate_rate > 0.0 and loss_random() < duplicate_rate:
                        stats.duplicated += 1
                        if latency_sample is None:
                            tick = fixed_delay
                        else:
                            tick = now_tick + int(
                                latency_sample(latency_rng, node, dst)
                            )
                        slot = calendar_get(tick)
                        if slot is None:
                            calendar[tick] = [(_OP_BALL, node, dst, ball)]
                            heappush(ticks, tick)
                        else:
                            slot.append((_OP_BALL, node, dst, ball))
            else:
                ball = None

            # -- ordering round (OrderingComponent.order_events) -------
            rounds = ord_rounds[node] + 1
            ord_rounds[node] = rounds
            expiry = expiries[node]
            head = expiry_heads[node]
            if head < len(expiry) and expiry[head][0] < rounds - prune_window:
                horizon = rounds - prune_window
                delivered_ids = self._delivered_ids[node]
                while head < len(expiry) and expiry[head][0] < horizon:
                    delivered_ids.discard(expiry[head][1])
                    head += 1
                # Compact the FIFO once the dead prefix dominates; a
                # plain list + head index beats a deque in the common
                # no-op case.
                if head > 64 and head * 2 >= len(expiry):
                    del expiry[:head]
                    head = 0
                expiry_heads[node] = head
            if ball:
                self._merge_ball(node, ball, rounds)
            due = frontiers[node].pop(rounds, None)
            if due:
                self._promote(node, due, rounds)
            if readies[node]:
                self._deliver_ready(node)

            # -- reschedule (PeriodicTask parity: drift drawn after the
            #    round body, max(1, int(period))) ----------------------
            if no_drift:
                period = interval
            else:
                period = int(drift.next_period(node_rng, node, interval))
                if period < 1:
                    period = 1
            tick = now_tick + period
            slot = calendar_get(tick)
            if slot is None:
                calendar[tick] = [(_OP_ROUND, node, incarnation)]
                heappush(ticks, tick)
            else:
                slot.append((_OP_ROUND, node, incarnation))
        return index - start

    def _receive_ball(self, src: int, dst: int, ball: list) -> None:
        """Deliver one ball: fabric checks + Algorithm 1 receive merge.

        Reference implementation of the ``_OP_BALL`` handling that
        :meth:`FlatEngine.run` inlines for speed (keep the two in
        sync). The sharded driver calls this method directly when
        routing cross-shard balls.
        """
        net = self.network
        stats = net.stats
        if not self._alive[dst]:
            # Destination died while the ball was in flight.
            stats.dropped_dead += 1
            return
        if net._partitioned and net._partition.get(src) != net._partition.get(dst):
            stats.dropped_partition += 1
            return
        stats.delivered += 1
        nb = self._next_ball[dst]
        ttl_bound = self._ttl
        if self._logical:
            # The logical clock (Alg. 4) max-merges every entry's
            # timestamp, including expired ones.
            clock = self._clock_value[dst]
            for entry in ball:
                if entry[3] < ttl_bound:
                    eid = entry[0]
                    record = nb.get(eid)
                    if record is None:
                        nb[eid] = [eid, entry[1], entry[2], entry[3]]
                    elif entry[3] > record[3]:
                        record[3] = entry[3]
                ts = entry[1][0]
                if ts > clock:
                    clock = ts
            self._clock_value[dst] = clock
        else:
            for entry in ball:
                if entry[3] < ttl_bound:
                    eid = entry[0]
                    record = nb.get(eid)
                    if record is None:
                        nb[eid] = [eid, entry[1], entry[2], entry[3]]
                    elif entry[3] > record[3]:
                        record[3] = entry[3]

    # ------------------------------------------------------------------
    # Ordering internals (flat port of core/ordering.py)
    # ------------------------------------------------------------------

    def _merge_ball(self, node: int, ball: list, now: int) -> None:
        received = self._received[node]
        delivered_ids = self._delivered_ids[node]
        ready_ids = self._ready_ids[node]
        frontier = self._frontier[node]
        queued = self._queued[node]
        ttl_bound = self._ttl
        last_key = self._last_key[node]
        for entry in ball:
            eid = entry[0]
            if eid in delivered_ids:
                self.discarded_duplicates += 1
                continue
            key = entry[1]
            if key <= last_key:
                self.discarded_late += 1
                continue
            record = received.get(eid)
            ttl = entry[3]
            if record is None:
                received[eid] = [key, entry[2], ttl, now]
                due = now + ttl_bound - ttl + 1
                if due <= now:
                    self._promote(node, (eid,), now)
                else:
                    slot = frontier.get(due)
                    if slot is None:
                        frontier[due] = [eid]
                    else:
                        slot.append(eid)
                    heappush(queued, (key, eid))
            else:
                # Rebase the stored TTL to this round, then max-merge.
                aged = record[2] + (now - record[3])
                if eid in ready_ids:
                    record[2] = aged if aged >= ttl else ttl
                    record[3] = now
                    continue
                old_due = now + ttl_bound - aged + 1
                merged = aged if aged >= ttl else ttl
                record[2] = merged
                record[3] = now
                new_due = now + ttl_bound - merged + 1
                if new_due < old_due:
                    target = new_due if new_due > now else now
                    slot = frontier.get(target)
                    if slot is None:
                        frontier[target] = [eid]
                    else:
                        slot.append(eid)

    def _promote(self, node: int, bucket: Sequence, now: int) -> None:
        received = self._received[node]
        ready_ids = self._ready_ids[node]
        ready = self._ready[node]
        ttl_bound = self._ttl
        for eid in bucket:
            record = received.get(eid)
            if record is None or eid in ready_ids:
                continue
            aged = record[2] + (now - record[3])
            record[2] = aged
            record[3] = now
            if aged > ttl_bound:
                ready_ids.add(eid)
                heappush(ready, (record[0], eid))
            else:
                frontier = self._frontier[node]
                slot = frontier.get(now + 1)
                if slot is None:
                    frontier[now + 1] = [eid]
                else:
                    slot.append(eid)

    def _deliver_ready(self, node: int) -> None:
        received = self._received[node]
        ready = self._ready[node]
        ready_ids = self._ready_ids[node]
        queued = self._queued[node]
        # Lazily-deleted head of the queued-key guard: the smallest
        # order key that is known but not yet deliverable.
        min_queued = None
        while queued:
            head = queued[0]
            if head[1] in received and head[1] not in ready_ids:
                min_queued = head[0]
                break
            heappop(queued)
        last_key = self._last_key[node]
        delivered_ids = self._delivered_ids[node]
        expiry = self._expiry[node]
        rounds = self._ord_rounds[node]
        record_sequences = self._record_sequences
        tick = self.sim._time
        while ready:
            key, eid = ready[0]
            if eid not in received:
                heappop(ready)  # stale heap entry
                continue
            if min_queued is not None and key >= min_queued:
                break
            heappop(ready)
            del received[eid]
            ready_ids.discard(eid)
            if key <= last_key:
                self.discarded_late += 1
                continue
            last_key = key
            delivered_ids.add(eid)
            expiry.append((rounds, eid))
            self.delivered_total += 1
            if record_sequences:
                self._sequences[node].append(key)
                self._delivery_log.append((node, eid, tick))
            else:
                info = self._broadcasts.get(eid)
                if info is not None:
                    self._delays.append(tick - info[1])
                self._counts[node] = self._counts.get(node, 0) + 1
                h = self._hashes.get(node, _FNV_OFFSET)
                self._hashes[node] = ((h * _FNV_PRIME) & _U64) ^ (hash(key) & _U64)
        self._last_key[node] = last_key

    # ------------------------------------------------------------------
    # Results surface
    # ------------------------------------------------------------------

    def sequences(self) -> Dict[int, Tuple[OrderKey, ...]]:
        """Per-node delivered order-key sequences (``record="sequences"``)."""
        self._require_sequences("sequences")
        # Nodes that never delivered are absent, matching
        # DeliveryCollector.sequences() (which only learns about a node
        # on its first record_delivery).
        return {node: tuple(keys) for node, keys in self._sequences.items() if keys}

    def deliveries(self) -> Tuple[tuple, ...]:
        """Global delivery log as ``(node_id, event_id, tick)`` tuples."""
        self._require_sequences("deliveries")
        return tuple(self._delivery_log)

    def delivery_delays(self) -> List[int]:
        """Broadcast-to-delivery delay of every delivery, in ticks."""
        if self._record_sequences:
            broadcasts = self._broadcasts
            return [tick - broadcasts[eid][1] for _node, eid, tick in self._delivery_log]
        return list(self._delays)

    def delivery_counts(self) -> Dict[int, int]:
        """Per-node delivered-event counts (both recording modes)."""
        if self._record_sequences:
            return {node: len(keys) for node, keys in self._sequences.items() if keys}
        return dict(self._counts)

    def sequence_hashes(self) -> Dict[int, int]:
        """Per-node rolling hash over the delivered key sequence.

        Two nodes delivered the same totally-ordered sequence iff their
        (count, hash) pairs match — the cheap agreement verdict used at
        paper scale where full sequences are too big to keep.
        """
        if not self._record_sequences:
            return dict(self._hashes)
        out: Dict[int, int] = {}
        for node, keys in self._sequences.items():
            if not keys:
                continue
            h = _FNV_OFFSET
            for key in keys:
                h = ((h * _FNV_PRIME) & _U64) ^ (hash(key) & _U64)
            out[node] = h
        return out

    def broadcast_count(self) -> int:
        """Number of events broadcast into the cluster."""
        return len(self._broadcasts)

    def as_collector(self) -> DeliveryCollector:
        """Rebuild a :class:`~repro.metrics.collector.DeliveryCollector`.

        Lets every existing metrics checker (``check_run``, hole/
        agreement scans, CDF reports) consume a flat run unchanged.
        Requires ``record="sequences"``.
        """
        self._require_sequences("as_collector")
        collector = DeliveryCollector()
        events: Dict[Tuple[int, int], Event] = {}
        for eid, (key, _tick, payload) in self._broadcasts.items():
            events[eid] = Event(id=eid, ts=key[0], source_id=eid[0], payload=payload)
        for op, node, tick in self._membership_log:
            if op == "add":
                collector.record_node_added(node, tick)
            else:
                collector.record_node_removed(node, tick)
        for eid, (_key, tick, _payload) in self._broadcasts.items():
            collector.record_broadcast(events[eid], tick)
        for node, eid, tick in self._delivery_log:
            collector.record_delivery(node, events[eid], tick)
        return collector

    def _require_sequences(self, what: str) -> None:
        if not self._record_sequences:
            raise SimulationError(
                f"{what}() needs record='sequences'; this cluster was built "
                "with record='stats' (delays/counts/hashes only)"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FlatCluster(n={self.size}, delivered={self.delivered_total}, "
            f"record={'sequences' if self._record_sequences else 'stats'})"
        )
