"""Simulated network: latency, loss and partitions (paper §6).

Routes opaque messages between registered nodes. Each send:

1. may be dropped with probability ``loss_rate`` (paper §5.4 / Fig. 10);
2. may be dropped because the destination is not registered — the
   simulated equivalent of gossiping to a failed process under churn
   (paper §6: stale PSS views "imply there will be less balls in the
   system");
3. may be dropped by a configured partition;
4. may additionally be *duplicated* with probability
   ``duplicate_rate`` — a second copy ships with an independent
   latency, modelling retransmitting middleboxes and multipath
   anomalies (EpTO's integrity property must absorb duplicates);
5. otherwise is delivered at ``now() + latency`` with the latency drawn
   from the configured :class:`~repro.sim.latency.LatencyModel`
   (paper §6: "balls sent are delivered at processes at time
   now() + networkLatency").

Destination liveness is checked at *delivery* time too: a message in
flight to a process that dies before it lands is lost, exactly as in a
real network.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..auth.guard import BallGuard
from ..core.errors import MembershipError
from .engine import Simulator
from .latency import FixedLatency, LatencyModel

#: Message handler: ``handler(src, message)``.
MessageHandler = Callable[[int, Any], None]


@dataclass(slots=True)
class NetworkStats:
    """Counters describing everything the network did.

    The ``dropped_bad_signature`` / ``dropped_unknown_key`` /
    ``dropped_unsigned`` counters are per *ball entry*, not per
    message: an authenticating fabric admits the verified sub-ball and
    counts the forged remainder, mirroring
    :class:`repro.runtime.udp.UdpStats`.
    """

    sent: int = 0
    delivered: int = 0
    dropped_loss: int = 0
    dropped_dead: int = 0
    dropped_partition: int = 0
    dropped_bad_signature: int = 0
    dropped_unknown_key: int = 0
    dropped_unsigned: int = 0
    duplicated: int = 0

    @property
    def dropped(self) -> int:
        """Total messages that never reached a handler."""
        return self.dropped_loss + self.dropped_dead + self.dropped_partition

    @property
    def delivery_ratio(self) -> float:
        """Fraction of sent messages that were delivered."""
        return self.delivered / self.sent if self.sent else 1.0


class SimNetwork:
    """Message router over a :class:`~repro.sim.engine.Simulator`.

    Args:
        sim: Host simulator (supplies time, scheduling and the base
            random seed).
        latency: Latency model for message transit times; defaults to a
            fixed 1-tick latency.
        loss_rate: Probability that any given message is silently lost.
        duplicate_rate: Probability that a surviving message is
            delivered twice (independent latencies).
        authenticator: Optional
            :class:`~repro.auth.authenticator.HmacAuthenticator`. When
            set, balls are sealed at send time and verified at delivery
            through a fabric-shared :class:`~repro.auth.guard.BallGuard`
            (the object-fabric equivalent of the UDP signed-ball path:
            signatures travel in the guard's cache instead of the
            message). Forged or unsigned entries never reach a handler.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: LatencyModel | None = None,
        loss_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        authenticator=None,
    ) -> None:
        self.sim = sim
        self.latency = latency if latency is not None else FixedLatency(1)
        self.loss_rate = float(loss_rate)
        self.duplicate_rate = float(duplicate_rate)
        self.stats = NetworkStats()
        self._guard = BallGuard(authenticator) if authenticator else None
        self._adversary = None
        self._handlers: Dict[int, MessageHandler] = {}
        self._loss_rng = sim.fork_rng("network.loss")
        self._latency_rng = sim.fork_rng("network.latency")
        # Partition: node id -> group label. Nodes in different groups
        # cannot exchange messages; unlabelled nodes are in group None
        # together.
        self._partition: Dict[int, object] = {}
        self._partitioned = False

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def register(self, node_id: int, handler: MessageHandler) -> None:
        """Attach *handler* as the inbox of *node_id*."""
        if node_id in self._handlers:
            raise MembershipError(f"node {node_id} is already registered")
        self._handlers[node_id] = handler

    def unregister(self, node_id: int) -> None:
        """Detach *node_id*; in-flight messages to it will be lost."""
        if node_id not in self._handlers:
            raise MembershipError(f"node {node_id} is not registered")
        del self._handlers[node_id]
        self._partition.pop(node_id, None)

    def is_registered(self, node_id: int) -> bool:
        """Whether *node_id* currently has an inbox."""
        return node_id in self._handlers

    @property
    def registered_count(self) -> int:
        """Number of attached nodes."""
        return len(self._handlers)

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------

    def set_partition(self, groups: Dict[int, object]) -> None:
        """Partition the network: only same-group nodes can talk.

        Args:
            groups: Mapping from node id to an arbitrary group label.
                Nodes absent from the mapping share the implicit
                ``None`` group.
        """
        self._partition = dict(groups)
        self._partitioned = True

    def heal_partition(self) -> None:
        """Remove any partition; full connectivity is restored."""
        self._partition = {}
        self._partitioned = False

    def _crosses_partition(self, src: int, dst: int) -> bool:
        if not self._partitioned:
            return False
        return self._partition.get(src) != self._partition.get(dst)

    # ------------------------------------------------------------------
    # Hostile behavior
    # ------------------------------------------------------------------

    def set_adversary(self, router) -> None:
        """Install a hostile-behavior router (see
        :class:`repro.faults.byzantine.ByzantineRouter`): balls sent by
        its hostile nodes are transformed per destination before
        delivery is scheduled."""
        self._adversary = router

    def clear_adversary(self) -> None:
        """Remove any installed hostile-behavior router."""
        self._adversary = None

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(self, src: int, dst: int, message: Any) -> None:
        """Best-effort send; never raises on loss or dead destinations."""
        message = self._outbound(src, dst, message)
        self.stats.sent += 1
        if self._crosses_partition(src, dst):
            self.stats.dropped_partition += 1
            return
        if self.loss_rate > 0.0 and self._loss_rng.random() < self.loss_rate:
            self.stats.dropped_loss += 1
            return
        if dst not in self._handlers:
            self.stats.dropped_dead += 1
            return
        delay = self.latency.sample(self._latency_rng, src, dst)
        self.sim.schedule(delay, lambda: self._deliver(src, dst, message))
        if self.duplicate_rate > 0.0 and self._loss_rng.random() < self.duplicate_rate:
            self.stats.duplicated += 1
            extra = self.latency.sample(self._latency_rng, src, dst)
            self.sim.schedule(extra, lambda: self._deliver(src, dst, message))

    def send_many(self, src: int, dsts, message: Any) -> None:
        """Fan one message out to every id in *dsts*.

        Loss, partition and duplication decisions stay independent per
        destination (identical randomness consumption to *dsts*
        sequential :meth:`send` calls, keeping seeded runs bit-stable);
        the message object itself is shared, never copied.
        """
        for dst in dsts:
            self.send(src, dst, message)

    def _outbound(self, src: int, dst: int, message: Any) -> Any:
        """Seal and (for hostile senders) transform an outgoing ball.

        Sealing runs on the genuine ball *before* any adversary
        transform, so the guard's signature cache always pins the
        original canonical bytes — a mutated relay copy under the same
        event id fails verification at delivery.
        """
        if not isinstance(message, tuple):
            return message
        ball = message
        if self._guard is not None:
            self._guard.seal(src, ball)
        if self._adversary is not None and self._adversary.is_hostile(src):
            ball = self._adversary.transform(src, dst, ball)
        return ball

    def _deliver(self, src: int, dst: int, message: Any) -> None:
        handler = self._handlers.get(dst)
        if handler is None:
            # Destination died while the message was in flight.
            self.stats.dropped_dead += 1
            return
        if self._crosses_partition(src, dst):
            self.stats.dropped_partition += 1
            return
        if self._guard is not None and isinstance(message, tuple):
            message, counts = self._guard.admit_ball(message)
            self.stats.dropped_bad_signature += counts.bad_signature
            self.stats.dropped_unknown_key += counts.unknown_key
            self.stats.dropped_unsigned += counts.unsigned
        self.stats.delivered += 1
        handler(src, message)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SimNetwork(nodes={len(self._handlers)}, loss={self.loss_rate}, "
            f"sent={self.stats.sent}, delivered={self.stats.delivered})"
        )
