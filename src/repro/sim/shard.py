"""Sharded lockstep driver for the largest flat-engine runs.

Under a *restricted* configuration the flat engine's timeline becomes
embarrassingly parallel: with synchronized round phases, no drift, a
fixed network latency shorter than the round interval, zero loss/
duplication and static membership, every node's round ``r`` fires at
exactly ``r * interval`` ticks, every ball sent in round ``r`` lands
strictly before round ``r + 1``, and the only RNG draws are each
node's *private* peer-sampling stream. Node state therefore never
interacts within a round — shards covering disjoint node ranges can
step round-by-round in lockstep, exchanging only the cross-shard ball
batches between rounds (optionally in separate OS processes via
:mod:`multiprocessing`).

Each shard hosts a real :class:`~repro.sim.flat.FlatCluster` (full
membership directory, so peer sampling is bit-identical to a
single-engine run) and drives it manually: apply inbound balls, apply
this round's broadcasts, run the local node range, drain the calendar
into local/outbound batches. No algorithm code is duplicated — the
equivalence test pins ``ShardedSimulation`` against both the plain
flat engine and the object engine on the same broadcast plan.

Because per-round delivery *order across nodes* is interleaved
differently than a single engine's calendar, the contract here is
per-node delivery sequences (and delays/counts), not the global
delivery log. Within a node, EpTO delivers in order-key order, which
is invariant to ball arrival order.

Anything outside the restricted configuration raises
``MembershipError`` at construction — fall back to
:class:`~repro.sim.flat.FlatCluster` (any config) or
:class:`~repro.sim.cluster.SimCluster` (reference) instead.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.errors import MembershipError
from .cluster import ClusterConfig
from .drift import NoDrift
from .flat import FlatCluster, FlatEngine, FlatNetwork, _OP_BALL
from .latency import FixedLatency

__all__ = ["BroadcastPlan", "ShardedResult", "ShardedSimulation"]

#: One planned broadcast: (round index >= 1, node id, payload).
#: Round ``r`` broadcasts are applied at tick ``r * interval`` before
#: any node's round action fires — the same position an upfront
#: ``schedule_at`` callback occupies in a single-engine run.
BroadcastPlan = Sequence[Tuple[int, int, Any]]


@dataclass(frozen=True)
class ShardedResult:
    """Merged outcome of a sharded lockstep run."""

    #: node -> delivered order-key tuple (``record="sequences"`` only).
    sequences: Dict[int, Tuple]
    #: node -> delivered-event count.
    counts: Dict[int, int]
    #: node -> rolling sequence hash (agreement check at scale).
    hashes: Dict[int, int]
    #: broadcast-to-delivery delays in ticks, shard-major order.
    delays: List[int]
    #: total balls sent / delivered across all shards.
    sent: int
    delivered: int


class _ShardWorker:
    """One node-range shard wrapping a full-membership FlatCluster."""

    def __init__(
        self,
        seed: int,
        n: int,
        lo: int,
        hi: int,
        config: ClusterConfig,
        latency: int,
        record: str,
    ) -> None:
        self.lo = lo
        self.hi = hi
        self.interval = config.epto.round_interval
        self.engine = FlatEngine(seed=seed)
        self.network = FlatNetwork(self.engine, latency=FixedLatency(latency))
        self.cluster = FlatCluster(self.engine, self.network, config, record=record)
        self.cluster.add_nodes(n)
        # Rounds are driven manually in lockstep: discard the initial
        # round schedule, then free the non-local per-node state the
        # shard will never touch (it only needs every node's *alive*
        # flag for the send path and the shared membership directory
        # for bit-identical peer sampling).
        self.engine._calendar.clear()
        self.engine._ticks.clear()
        cluster = self.cluster
        for node in range(n):
            if lo <= node < hi:
                continue
            cluster._node_rng[node] = None
            cluster._next_ball[node] = None
            cluster._received[node] = None
            cluster._frontier[node] = None
            cluster._queued[node] = None
            cluster._ready[node] = None
            cluster._ready_ids[node] = None
            cluster._delivered_ids[node] = None
            cluster._expiry[node] = None
        #: balls sent shard-locally, pending for the next round.
        self._local: List[tuple] = []

    def prime_broadcast_ticks(self, ticks: Dict[tuple, int]) -> None:
        """Teach the shard when every *foreign* event was broadcast.

        Delivery-delay accounting needs the broadcast tick of events
        that originated on other shards. The event ids and ticks are
        fully determined by the plan, so the master precomputes them;
        local ``broadcast_from`` calls later overwrite their own
        entries with the full (key, tick, payload) record.
        """
        broadcasts = self.cluster._broadcasts
        for eid, tick in ticks.items():
            broadcasts[eid] = (None, tick, None)

    def run_round(
        self, round_index: int, broadcasts: Sequence[tuple], inbound: Sequence[tuple]
    ) -> List[tuple]:
        """Step every local node through round *round_index*.

        Returns the cross-shard outbound batch as ``(src, dst, ball)``
        tuples; shard-local balls are retained internally.
        """
        engine = self.engine
        cluster = self.cluster
        engine._time = round_index * self.interval
        receive = cluster._receive_ball
        for src, dst, ball in self._local:
            receive(src, dst, ball)
        for src, dst, ball in inbound:
            receive(src, dst, ball)
        for node, payload in broadcasts:
            cluster.broadcast_from(node, payload)
        run_round = cluster._run_round
        incarnations = cluster._incarnation
        for node in range(self.lo, self.hi):
            run_round(node, incarnations[node])
        # Drain the calendar: in-flight balls are routed, round
        # reschedules are discarded (the lockstep loop replaces them).
        local: List[tuple] = []
        outbound: List[tuple] = []
        lo, hi = self.lo, self.hi
        for bucket in engine._calendar.values():
            for entry in bucket:
                if entry[0] == _OP_BALL:
                    if lo <= entry[2] < hi:
                        local.append((entry[1], entry[2], entry[3]))
                    else:
                        outbound.append((entry[1], entry[2], entry[3]))
        engine._calendar.clear()
        engine._ticks.clear()
        self._local = local
        return outbound

    def finish(self) -> dict:
        """Collect this shard's recorded results."""
        cluster = self.cluster
        return {
            "sequences": (
                cluster.sequences() if cluster._record_sequences else {}
            ),
            "counts": cluster.delivery_counts(),
            "hashes": cluster.sequence_hashes(),
            "delays": cluster.delivery_delays(),
            "sent": self.network.stats.sent,
            "delivered": self.network.stats.delivered,
        }


def _worker_main(conn, seed, n, lo, hi, config, latency, record, ticks) -> None:
    """Subprocess loop: build the shard, answer round/finish requests."""
    worker = _ShardWorker(seed, n, lo, hi, config, latency, record)
    worker.prime_broadcast_ticks(ticks)
    while True:
        message = conn.recv()
        op = message[0]
        if op == "round":
            conn.send(worker.run_round(message[1], message[2], message[3]))
        elif op == "finish":
            conn.send(worker.finish())
            conn.close()
            return


class ShardedSimulation:
    """Lockstep driver over node-range shards of a flat EpTO run.

    Args:
        n: System size (static for the whole run).
        config: Cluster configuration. Must be lockstep-safe:
            synchronized phase, :class:`~repro.sim.drift.NoDrift`,
            uniform PSS, plain EpTO options.
        seed: Base seed; per-node streams derive from it exactly as in
            the single engines.
        latency: Fixed network latency in ticks; must satisfy
            ``1 <= latency < round_interval`` so every ball lands
            before the next round boundary.
        shards: Number of node-range shards.
        record: ``"sequences"`` or ``"stats"`` (see
            :class:`~repro.sim.flat.FlatCluster`).
    """

    def __init__(
        self,
        n: int,
        config: ClusterConfig,
        seed: int = 0,
        latency: int = 1,
        shards: int = 4,
        record: str = "sequences",
    ) -> None:
        if config.round_phase != "synchronized":
            raise MembershipError(
                "sharded lockstep requires round_phase='synchronized'"
            )
        if not isinstance(config.drift, NoDrift):
            raise MembershipError("sharded lockstep requires NoDrift")
        latency = int(latency)
        if not 1 <= latency < config.epto.round_interval:
            raise MembershipError(
                "sharded lockstep requires 1 <= latency < round_interval, "
                f"got latency={latency} interval={config.epto.round_interval}"
            )
        if shards < 1 or shards > n:
            raise MembershipError(f"need 1 <= shards <= n, got {shards}")
        self.n = n
        self.config = config
        self.seed = seed
        self.latency = latency
        self.shards = shards
        self.record = record
        bounds = [
            (shard * n) // shards for shard in range(shards)
        ] + [n]
        self._ranges = [
            (bounds[i], bounds[i + 1]) for i in range(shards)
        ]

    def _owner(self, node: int) -> int:
        for index, (lo, hi) in enumerate(self._ranges):
            if lo <= node < hi:
                return index
        raise MembershipError(f"node {node} outside [0, {self.n})")

    def run(
        self,
        rounds: int,
        broadcasts: BroadcastPlan = (),
        processes: int = 0,
    ) -> ShardedResult:
        """Run *rounds* lockstep rounds, applying the broadcast plan.

        Args:
            rounds: Number of synchronized rounds to execute.
            broadcasts: ``(round, node, payload)`` plan; rounds are
                1-based and must fit in ``[1, rounds]``.
            processes: 0 runs every shard in-process (deterministic,
                no pickling); otherwise each shard runs in its own
                ``multiprocessing`` worker and per-round batches cross
                process boundaries.
        """
        plan: Dict[int, List[List[tuple]]] = {}
        for round_index, node, payload in broadcasts:
            if not 1 <= round_index <= rounds:
                raise MembershipError(
                    f"broadcast round {round_index} outside [1, {rounds}]"
                )
            shard_lists = plan.setdefault(
                round_index, [[] for _ in range(self.shards)]
            )
            shard_lists[self._owner(node)].append((node, payload))
        # Event ids assign deterministically from the plan (per-node
        # sequence counter in application order), so every shard can be
        # told every event's broadcast tick up front.
        ticks: Dict[tuple, int] = {}
        issued: Dict[int, int] = {}
        interval = self.config.epto.round_interval
        for round_index in sorted(plan):
            for shard_list in plan[round_index]:
                for node, _payload in shard_list:
                    seq = issued.get(node, 0)
                    issued[node] = seq + 1
                    ticks[(node, seq)] = round_index * interval
        if processes:
            return self._run_processes(rounds, plan, ticks)
        return self._run_inline(rounds, plan, ticks)

    def _route(
        self, outbounds: Sequence[Sequence[tuple]]
    ) -> List[List[tuple]]:
        """Split every shard's outbound batch by destination shard."""
        inbounds: List[List[tuple]] = [[] for _ in range(self.shards)]
        ranges = self._ranges
        for outbound in outbounds:
            for item in outbound:
                dst = item[1]
                for index, (lo, hi) in enumerate(ranges):
                    if lo <= dst < hi:
                        inbounds[index].append(item)
                        break
        return inbounds

    def _run_inline(self, rounds: int, plan: dict, ticks: dict) -> ShardedResult:
        workers = [
            _ShardWorker(
                self.seed, self.n, lo, hi, self.config, self.latency, self.record
            )
            for lo, hi in self._ranges
        ]
        for worker in workers:
            worker.prime_broadcast_ticks(ticks)
        inbounds: List[List[tuple]] = [[] for _ in range(self.shards)]
        empty: List[tuple] = []
        for round_index in range(1, rounds + 1):
            shard_broadcasts = plan.get(round_index)
            outbounds = [
                worker.run_round(
                    round_index,
                    shard_broadcasts[i] if shard_broadcasts else empty,
                    inbounds[i],
                )
                for i, worker in enumerate(workers)
            ]
            inbounds = self._route(outbounds)
        return self._merge([worker.finish() for worker in workers])

    def _run_processes(self, rounds: int, plan: dict, ticks: dict) -> ShardedResult:
        context = multiprocessing.get_context()
        connections = []
        procs = []
        try:
            for lo, hi in self._ranges:
                parent, child = context.Pipe()
                proc = context.Process(
                    target=_worker_main,
                    args=(
                        child,
                        self.seed,
                        self.n,
                        lo,
                        hi,
                        self.config,
                        self.latency,
                        self.record,
                        ticks,
                    ),
                    daemon=True,
                )
                proc.start()
                child.close()
                connections.append(parent)
                procs.append(proc)
            inbounds: List[List[tuple]] = [[] for _ in range(self.shards)]
            empty: List[tuple] = []
            for round_index in range(1, rounds + 1):
                shard_broadcasts = plan.get(round_index)
                for i, conn in enumerate(connections):
                    conn.send(
                        (
                            "round",
                            round_index,
                            shard_broadcasts[i] if shard_broadcasts else empty,
                            inbounds[i],
                        )
                    )
                outbounds = [conn.recv() for conn in connections]
                inbounds = self._route(outbounds)
            for conn in connections:
                conn.send(("finish",))
            results = [conn.recv() for conn in connections]
            return self._merge(results)
        finally:
            for conn in connections:
                conn.close()
            for proc in procs:
                proc.join(timeout=5)
                if proc.is_alive():  # pragma: no cover - defensive
                    proc.terminate()

    def _merge(self, results: Sequence[dict]) -> ShardedResult:
        sequences: Dict[int, Tuple] = {}
        counts: Dict[int, int] = {}
        hashes: Dict[int, int] = {}
        delays: List[int] = []
        sent = delivered = 0
        for result in results:
            sequences.update(result["sequences"])
            counts.update(result["counts"])
            hashes.update(result["hashes"])
            delays.extend(result["delays"])
            sent += result["sent"]
            delivered += result["delivered"]
        return ShardedResult(
            sequences=sequences,
            counts=counts,
            hashes=hashes,
            delays=delays,
            sent=sent,
            delivered=delivered,
        )
