"""Discrete-event simulation substrate (paper §6's simulator)."""

from .churn import ChurnDriver, ChurnStats
from .cluster import ClusterConfig, GossipProcess, SimCluster
from .drift import BoundedDrift, DriftModel, NoDrift, UniformDrift
from .engine import Handle, PeriodicTask, ScheduledEvent, Simulator
from .flat import FlatCluster, FlatEngine, FlatHandle, FlatNetwork
from .latency import (
    EmpiricalLatency,
    FixedLatency,
    LatencyModel,
    LogNormalLatency,
    PlanetLabLatency,
    UniformLatency,
    make_latency_model,
)
from .network import MessageHandler, NetworkStats, SimNetwork

__all__ = [
    "BoundedDrift",
    "ChurnDriver",
    "ChurnStats",
    "ClusterConfig",
    "DriftModel",
    "EmpiricalLatency",
    "FixedLatency",
    "FlatCluster",
    "FlatEngine",
    "FlatHandle",
    "FlatNetwork",
    "GossipProcess",
    "Handle",
    "LatencyModel",
    "LogNormalLatency",
    "MessageHandler",
    "NetworkStats",
    "NoDrift",
    "PeriodicTask",
    "PlanetLabLatency",
    "ScheduledEvent",
    "SimCluster",
    "SimNetwork",
    "Simulator",
    "UniformDrift",
    "UniformLatency",
    "make_latency_model",
]
