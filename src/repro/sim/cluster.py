"""Simulated cluster: hosts gossip processes over the simulated network.

Ties together everything a §6 experiment needs: the discrete-event
engine, the network model, per-node peer sampling (idealized uniform
view or Cyclon), round scheduling with drift, delivery instrumentation,
and membership management (used by the churn driver).

The cluster is generic over the hosted process type: any object with
``broadcast(payload)``, ``on_ball(ball)`` and ``on_round()`` can be
hosted, which is how the EpTO processes (:class:`repro.core.EpToProcess`)
and the unordered baseline (:class:`repro.broadcast.BallsBinsProcess`)
share all the surrounding machinery in the Figure 6 comparison.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Union,
)

from ..core.config import EpToConfig
from ..core.errors import MembershipError
from ..core.event import Ball, Event
from ..core.process import EpToProcess
from ..lazy.process import LazyEpToProcess
from ..lazy.protocol import LAZY_MESSAGE_TYPES
from ..metrics.collector import DeliveryCollector
from ..pss import OVERLAY_MESSAGE_TYPES
from ..pss.base import MembershipDirectory
from ..pss.brahms import BrahmsPss
from ..pss.cyclon import CyclonPss, CyclonRequest, CyclonResponse
from ..pss.hyparview import HyParViewPss
from ..pss.uniform import UniformViewPss
from ..sync.config import SyncConfig
from ..sync.manager import SyncManager, epto_chunk_applier
from ..sync.protocol import SYNC_MESSAGE_TYPES
from .drift import DriftModel, UniformDrift
from .engine import PeriodicTask, Simulator
from .network import SimNetwork

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..storage.journal import DeliveryJournal
    from ..storage.recovery import RecoveredState


class GossipProcess(Protocol):
    """Minimal interface a cluster-hosted process must implement."""

    def broadcast(self, payload: Any = None) -> Event: ...

    def on_ball(self, ball: Ball) -> None: ...

    def on_round(self) -> None: ...


#: Builds a hosted process. Receives everything the cluster provisions
#: per node; returns the process object.
ProcessFactory = Callable[..., GossipProcess]

#: Default slack, in rounds, added on top of the TTL for the respawn
#: catch-up gate (docs/SYNC.md). A respawned sync-enabled node holds its
#: epidemic rounds for ``ttl + slack`` rounds: ``ttl`` covers the full
#: dissemination window of any event broadcast before the gate opened,
#: and the slack absorbs round-phase offsets, period drift, and the
#: network latency tail (up to several round durations under the
#: PlanetLab model) so every such event has reached peers' delivery
#: logs before the node starts relaying again.
RESPAWN_HOLD_SLACK_ROUNDS = 6


@dataclass(slots=True)
class ClusterConfig:
    """Static description of a simulated deployment.

    Attributes:
        epto: EpTO algorithm configuration shared by every node.
        pss: ``"uniform"`` (idealized, paper default), ``"cyclon"``
            (realistic, paper Figure 9), ``"hyparview"`` (two-tier
            views with reactive repair) or ``"brahms"``
            (Byzantine-resilient sampling); see docs/OVERLAY.md.
        drift: Round-period drift model (paper default: 1% uniform).
        cyclon_view_size: Cyclon view capacity; defaults to
            ``2 * fanout`` so the view always has enough entries to
            serve a fanout-sized sample.
        cyclon_shuffle_size: Entries exchanged per shuffle; defaults to
            half the view size, the original paper's recommendation.
        cyclon_period: Ticks between shuffles; defaults to the EpTO
            round interval.
        expected_size: System-size hint forwarded to processes that
            need it (the §8.4 stability estimator).
        round_phase: ``"synchronized"`` starts every node's round timer
            a full round interval after it joins — the paper simulator's
            ``now() + delta ± Delta`` schedule, under which an event's
            TTL ages about once per ``delta`` and delivery delays match
            the paper's ``~TTL * delta`` magnitudes. ``"staggered"``
            starts each node at a random phase instead; relay chains
            then hop between phase-offset nodes and age TTLs faster
            than once per ``delta``, delivering earlier at identical
            relay-generation counts (safety is unaffected — stability
            counts relay generations, not wall time). See the phase
            ablation benchmark.
        respawn_hold_slack: Rounds added on top of the TTL for the
            respawn catch-up gate of sync-enabled nodes (defaults to
            :data:`RESPAWN_HOLD_SLACK_ROUNDS`; see its docs for why 6).
    """

    epto: EpToConfig
    pss: str = "uniform"
    drift: DriftModel = field(default_factory=lambda: UniformDrift(0.01))
    cyclon_view_size: Optional[int] = None
    cyclon_shuffle_size: Optional[int] = None
    cyclon_period: Optional[int] = None
    expected_size: Optional[int] = None
    round_phase: str = "synchronized"
    respawn_hold_slack: int = RESPAWN_HOLD_SLACK_ROUNDS

    def __post_init__(self) -> None:
        if self.pss not in ("uniform", "cyclon", "hyparview", "brahms"):
            raise MembershipError(f"unknown PSS kind {self.pss!r}")
        if self.round_phase not in ("synchronized", "staggered"):
            raise MembershipError(f"unknown round phase {self.round_phase!r}")
        if self.respawn_hold_slack < 0:
            raise MembershipError(
                f"respawn_hold_slack must be >= 0, got {self.respawn_hold_slack}"
            )

    def respawn_hold_rounds(self) -> int:
        """Rounds a respawned sync-enabled node gates its epidemic rounds."""
        return self.epto.ttl + self.respawn_hold_slack


class _ClusterNode:
    """Internal per-node wiring: process + PSS + scheduled tasks."""

    __slots__ = (
        "node_id",
        "process",
        "pss",
        "round_task",
        "shuffle_task",
        "sync_task",
    )

    def __init__(
        self,
        node_id: int,
        process: GossipProcess,
        pss: object,
        round_task: PeriodicTask,
        shuffle_task: Optional[PeriodicTask],
        sync_task: Optional[PeriodicTask] = None,
    ) -> None:
        self.node_id = node_id
        self.process = process
        self.pss = pss
        self.round_task = round_task
        self.shuffle_task = shuffle_task
        self.sync_task = sync_task

    def stop(self) -> None:
        self.round_task.stop()
        if self.shuffle_task is not None:
            self.shuffle_task.stop()
        if self.sync_task is not None:
            self.sync_task.stop()


class SimCluster:
    """A set of gossip processes hosted on one simulated network.

    Args:
        sim: Discrete-event engine.
        network: Message router (latency, loss, partitions).
        config: Deployment description.
        collector: Delivery instrumentation; a fresh one is created
            when omitted.
        process_factory: Alternative process constructor (defaults to
            building :class:`~repro.core.process.EpToProcess`). The
            factory is called with keyword arguments ``node_id``,
            ``pss``, ``transport``, ``on_deliver``, ``time_source``,
            ``rng``.
        storage_dir: Root directory for durable per-node journals
            (:mod:`repro.storage`). When set, every node's deliveries
            and broadcast sequence are journaled under
            ``storage_dir/node-<id>/`` and :meth:`respawn_node`
            recovers crashed nodes from disk (snapshot + log replay,
            with re-delivery dedupe ahead of the collector — and so
            ahead of any :class:`~repro.smr.replica.ReplicatedService`
            riding it). ``None`` keeps the simulation fully in-memory.
        storage_fsync: Log fsync policy for journaled nodes
            (:data:`repro.storage.log.FSYNC_POLICIES`).
        sync: Optional :class:`repro.sync.SyncConfig` enabling the
            anti-entropy catch-up protocol (requires ``storage_dir``).
            Every EpTO node then runs a deterministic, round-scheduled
            :class:`~repro.sync.SyncManager`; respawned nodes probe on
            their very next tick so recovery catch-up starts before the
            first epidemic round (docs/SYNC.md).
    """

    def __init__(
        self,
        sim: Simulator,
        network: SimNetwork,
        config: ClusterConfig,
        collector: DeliveryCollector | None = None,
        process_factory: ProcessFactory | None = None,
        storage_dir: Union[str, Path, None] = None,
        storage_fsync: str = "rotate",
        sync: Optional[SyncConfig] = None,
    ) -> None:
        if sync is not None and storage_dir is None:
            raise MembershipError(
                "anti-entropy sync requires storage_dir (it exchanges "
                "delivery-log suffixes)"
            )
        if sync is not None and config.epto.mode == "lazy":
            raise MembershipError(
                "anti-entropy sync is not supported in lazy mode (repaired "
                "events bypass the payload store; run mode='eager' with sync)"
            )
        self.sim = sim
        self.network = network
        self.config = config
        self.collector = collector if collector is not None else DeliveryCollector()
        self._process_factory = process_factory
        self.storage_dir = Path(storage_dir) if storage_dir is not None else None
        self.storage_fsync = storage_fsync
        self.sync = sync
        #: node id -> live anti-entropy manager (only when ``sync``);
        #: survives crashes so drill reports can aggregate stats, and is
        #: overwritten by the respawned incarnation's manager.
        self.sync_managers: Dict[int, SyncManager] = {}
        #: node id -> live durable journal (only when ``storage_dir``).
        self.journals: Dict[int, "DeliveryJournal"] = {}
        #: node id -> recovery outcomes, one per respawn-from-disk.
        self.recoveries: Dict[int, List["RecoveredState"]] = {}
        self.directory = MembershipDirectory()
        self._nodes: Dict[int, _ClusterNode] = {}
        self._next_id = 0
        self._rng = sim.fork_rng("cluster")
        # Crash corpses: node id -> broadcast sequence issued so far,
        # kept so a same-id respawn can resume where its predecessor
        # stopped (mirrors AsyncCluster.respawn_node).
        self._crashed: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of live nodes."""
        return len(self._nodes)

    def alive_ids(self) -> Sequence[int]:
        """Snapshot of live node ids."""
        return self.directory.alive_ids()

    def node(self, node_id: int) -> GossipProcess:
        """The hosted process of *node_id*."""
        try:
            return self._nodes[node_id].process
        except KeyError:
            raise MembershipError(f"node {node_id} is not in the cluster") from None

    def pss_of(self, node_id: int) -> object:
        """The PSS instance of *node_id* (for tests and metrics)."""
        try:
            return self._nodes[node_id].pss
        except KeyError:
            raise MembershipError(f"node {node_id} is not in the cluster") from None

    def add_node(self) -> int:
        """Provision, register and start one new node; returns its id."""
        node_id = self._next_id
        self._next_id += 1
        return self._start_node(node_id)

    def node_storage_dir(self, node_id: int) -> Path:
        """The durable storage directory of *node_id*."""
        if self.storage_dir is None:
            raise MembershipError("cluster has no storage_dir configured")
        return self.storage_dir / f"node-{node_id}"

    def _open_journal(
        self, node_id: int, resume: "RecoveredState | None" = None
    ) -> "DeliveryJournal | None":
        if self.storage_dir is None:
            return None
        from ..storage.journal import DeliveryJournal

        journal = DeliveryJournal(
            self.node_storage_dir(node_id),
            fsync=self.storage_fsync,
            resume=resume,
        )
        self.journals[node_id] = journal
        return journal

    def _start_node(
        self,
        node_id: int,
        resume_seq: Optional[int] = None,
        recovered: "RecoveredState | None" = None,
    ) -> int:
        """Wire up and start a process under *node_id* (fresh or respawn)."""
        node_rng = self.sim.fork_rng(f"node:{node_id}")
        pss = self._build_pss(node_id, node_rng)
        journal = self._open_journal(node_id, resume=recovered)
        process = self._build_process(node_id, pss, node_rng, journal)
        if resume_seq is not None:
            # Same-identity restart: never reissue a used (source, seq)
            # event id (see EventIdGenerator.resume). Hosted process
            # kinds without a sequence (the unordered baselines) have
            # nothing to resume.
            resume = getattr(process, "resume_sequence", None)
            if resume is not None:
                resume(resume_seq)

        sync_manager: Optional[SyncManager] = None
        ordering = getattr(process, "ordering", None)
        if self.sync is not None and journal is not None and ordering is not None:
            # Only EpTO-shaped processes can apply repaired events in
            # total order; baseline broadcast processes simply run
            # without anti-entropy.
            sync_manager = SyncManager(
                node_id=node_id,
                journal=journal,
                send=lambda dst, message: self.network.send(node_id, dst, message),
                peer_sampler=pss,
                apply_events=epto_chunk_applier(process),  # type: ignore[arg-type]
                config=self.sync,
            )
            self.sync_managers[node_id] = sync_manager

        def handle_message(src: int, message: Any) -> None:
            if isinstance(message, CyclonRequest):
                pss.handle_request(src, message)  # type: ignore[union-attr]
            elif isinstance(message, CyclonResponse):
                pss.handle_response(src, message)  # type: ignore[union-attr]
            elif isinstance(message, OVERLAY_MESSAGE_TYPES):
                overlay = getattr(pss, "handle_message", None)
                if overlay is not None:
                    overlay(src, message)
                # else: overlay chatter at a uniform/cyclon node; drop
            elif isinstance(message, LAZY_MESSAGE_TYPES):
                lazy = getattr(process, "on_lazy_message", None)
                if lazy is not None:
                    lazy(src, message)
                # else: stray lazy traffic at an eager node; drop
            elif isinstance(message, SYNC_MESSAGE_TYPES):
                if sync_manager is not None:
                    sync_manager.on_message(src, message)
                # else: not sync-enabled; drop stray anti-entropy traffic
            else:
                process.on_ball(message)

        self.network.register(node_id, handle_message)
        self.directory.add(node_id)
        self.collector.record_node_added(node_id, self.sim.now())

        interval = self.config.epto.round_interval
        drift = self.config.drift
        if self.config.round_phase == "staggered":
            first_round = self._rng.randrange(max(1, interval)) + 1
        else:
            # Paper schedule: first round a full (drifted) interval
            # after joining.
            first_round = drift.next_period(node_rng, node_id, interval)
        round_fn: Callable[[], None] = process.on_round
        if sync_manager is not None and (
            recovered is not None or resume_seq is not None
        ):
            # Respawn catch-up gate (docs/SYNC.md): hold epidemic rounds
            # until anti-entropy reports convergence AND the in-flight
            # horizon has passed — every event broadcast before the gate
            # opens has finished disseminating and reached peers'
            # delivery logs, so it arrives here through contiguous sync
            # pulls instead of a partially-observed TTL window. Balls
            # are still received during the hold (they only accumulate
            # state); the node just neither relays nor delivers, so its
            # order mark cannot advance past a still-missing event.
            # One-way latch, bounded by the catch-up budget so an
            # unservable gap (every peer also gone) degrades to the
            # ungated behaviour instead of parking the node forever.
            round_fn = self._gated_round(
                process,
                sync_manager,
                hold_rounds=self.config.respawn_hold_rounds(),
            )
        round_task = PeriodicTask(
            self.sim,
            round_fn,
            period_source=lambda: drift.next_period(node_rng, node_id, interval),
            initial_delay=first_round,
        )
        shuffle_task = None
        shuffle_fn = getattr(pss, "shuffle", None)
        if callable(shuffle_fn):
            # Any self-maintaining PSS (Cyclon, HyParView, Brahms)
            # shares the shuffle cadence; the idealized uniform view
            # has no shuffle and needs no task.
            period = self.config.cyclon_period or interval
            shuffle_task = PeriodicTask(
                self.sim,
                shuffle_fn,
                period_source=lambda: period,
                initial_delay=self._rng.randrange(max(1, period)),
            )
        sync_task = None
        if sync_manager is not None:
            # The manager counts rounds itself, so tick it once per
            # round interval (undrifted — anti-entropy needs no phase
            # realism). A respawned node ticks on the very next
            # simulator step: its post-recovery catch-up probe fires
            # before its first epidemic round can advance the order
            # mark past the still-missing suffix.
            if recovered is not None or resume_seq is not None:
                sync_manager.kick()
                first_sync = 1
            else:
                first_sync = interval
            sync_task = PeriodicTask(
                self.sim,
                sync_manager.on_round,
                period_source=lambda: interval,
                initial_delay=first_sync,
            )

        self._nodes[node_id] = _ClusterNode(
            node_id, process, pss, round_task, shuffle_task, sync_task
        )
        return node_id

    @staticmethod
    def _gated_round(
        process: GossipProcess, manager: SyncManager, hold_rounds: float
    ) -> Callable[[], None]:
        """Round function for a respawned sync-enabled node: no-op until
        the sync manager reports ``caught_up`` and ``hold_rounds`` round
        ticks have passed (the in-flight dissemination horizon), then
        behave as ``process.on_round`` forever. The hold is abandoned —
        gate opened regardless — once the manager's catch-up budget runs
        out without convergence."""
        state = {"joined": False, "waited": 0}

        def run() -> None:
            if not state["joined"]:
                state["waited"] += 1
                ready = manager.caught_up and state["waited"] >= hold_rounds
                if not ready and state["waited"] < manager.config.catch_up_rounds:
                    return
                state["joined"] = True
            process.on_round()

        return run

    def add_nodes(self, count: int) -> Sequence[int]:
        """Provision *count* nodes; returns their ids."""
        return [self.add_node() for _ in range(count)]

    def remove_node(self, node_id: int) -> None:
        """Stop and deregister *node_id* (simulating a crash/leave)."""
        node = self._nodes.pop(node_id, None)
        if node is None:
            raise MembershipError(f"node {node_id} is not in the cluster")
        node.stop()
        self.network.unregister(node_id)
        self.directory.remove(node_id)
        self.collector.record_node_removed(node_id, self.sim.now())
        journal = self.journals.pop(node_id, None)
        if journal is not None and not journal.closed:
            journal.close()

    def crash_node(self, node_id: int) -> None:
        """Crash *node_id*, remembering its broadcast sequence.

        Identical to :meth:`remove_node` on the network and membership
        surface, but the issued event-id sequence is kept so
        :meth:`respawn_node` can later bring a replacement up under the
        *same* identity — mirroring
        :meth:`repro.runtime.cluster.AsyncCluster.crash_node` /
        ``respawn_node`` semantics in the simulator.
        """
        process = self.node(node_id)
        issued = getattr(
            getattr(process, "dissemination", None), "issued_sequence", 0
        )
        self.remove_node(node_id)
        self._crashed[node_id] = issued

    def respawn_node(self, node_id: int) -> int:
        """Replace a crashed node with a fresh process of the same id.

        The replacement resumes the predecessor's broadcast sequence
        (event ids stay unique — the same guarantee
        :meth:`repro.runtime.cluster.AsyncCluster.respawn_node` gives
        the asyncio runtime), re-registers with the network and the PSS
        directory, and starts a new round timer. Its *ordering* state
        always starts empty, exactly like a real process restarted
        after a crash; on a cluster with ``storage_dir``, the durable
        history does not — :func:`repro.storage.recovery.recover` runs
        over the corpse's directory first, the broadcast sequence
        resumes from the maximum of the in-memory and durable records,
        and the fresh journal inherits the recovered dedupe watermark
        so re-gossiped pre-crash events never reach the collector (or
        the replicas above it) twice. Recovery outcomes accumulate in
        :attr:`recoveries`.
        """
        try:
            issued = self._crashed.pop(node_id)
        except KeyError:
            raise MembershipError(
                f"node {node_id} has not crashed (or already respawned)"
            ) from None
        recovered: "RecoveredState | None" = None
        if self.storage_dir is not None:
            from ..storage.recovery import recover

            recovered = recover(node_id, self.node_storage_dir(node_id))
            self.recoveries.setdefault(node_id, []).append(recovered)
            issued = max(issued, recovered.next_seq)
        return self._start_node(node_id, resume_seq=issued, recovered=recovered)

    def crashed_ids(self) -> Sequence[int]:
        """Ids crashed via :meth:`crash_node` and not yet respawned."""
        return sorted(self._crashed)

    def random_alive(self, rng: random.Random | None = None) -> int:
        """A uniformly random live node id."""
        rng = rng if rng is not None else self._rng
        ids = self.directory.alive_ids()
        if not ids:
            raise MembershipError("cluster is empty")
        return ids[rng.randrange(len(ids))]

    # ------------------------------------------------------------------
    # Broadcasting
    # ------------------------------------------------------------------

    def broadcast_from(self, node_id: int, payload: Any = None) -> Event:
        """EpTO-broadcast *payload* from *node_id*, recording metrics."""
        event = self.node(node_id).broadcast(payload)
        self.collector.record_broadcast(event, self.sim.now())
        journal = self.journals.get(node_id)
        if journal is not None:
            journal.record_broadcast(event)
        return event

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _build_pss(self, node_id: int, node_rng: random.Random):
        if self.config.pss == "uniform":
            return UniformViewPss(node_id, self.directory, node_rng)
        if self.config.pss == "cyclon":
            fanout = self.config.epto.fanout
            view_size = self.config.cyclon_view_size or 2 * fanout
            shuffle_size = self.config.cyclon_shuffle_size or max(1, view_size // 2)
            pss = CyclonPss(
                node_id=node_id,
                view_size=view_size,
                shuffle_size=shuffle_size,
                send=lambda dst, msg: self.network.send(node_id, dst, msg),
                rng=node_rng,
            )
            # Simplified join: seed the view from an introducer sample
            # of the current membership.
            bootstrap = self.directory.sample(self._rng, view_size, exclude=node_id)
            pss.bootstrap(bootstrap)
            return pss
        if self.config.pss == "hyparview":
            fanout = self.config.epto.fanout
            active_size = max(fanout + 1, self.config.cyclon_view_size or 0)
            pss = HyParViewPss(
                node_id=node_id,
                active_size=active_size,
                passive_size=4 * active_size,
                send=lambda dst, msg: self.network.send(node_id, dst, msg),
                rng=node_rng,
            )
            bootstrap = self.directory.sample(
                self._rng, 4 * active_size, exclude=node_id
            )
            pss.bootstrap(bootstrap)
            return pss
        if self.config.pss == "brahms":
            fanout = self.config.epto.fanout
            view_size = self.config.cyclon_view_size or 2 * fanout
            pss = BrahmsPss(
                node_id=node_id,
                view_size=view_size,
                send=lambda dst, msg: self.network.send(node_id, dst, msg),
                rng=node_rng,
            )
            bootstrap = self.directory.sample(self._rng, view_size, exclude=node_id)
            pss.bootstrap(bootstrap)
            return pss
        raise MembershipError(f"unknown PSS kind {self.config.pss!r}")

    def _build_process(
        self,
        node_id: int,
        pss: object,
        node_rng: random.Random,
        journal: "DeliveryJournal | None" = None,
    ) -> GossipProcess:
        def record(event: Event) -> None:
            self.collector.record_delivery(node_id, event, self.sim.now())

        if journal is None:
            on_deliver = record
        else:
            durable = journal

            def on_deliver(event: Event) -> None:
                # Journal first; a post-respawn re-delivery of an event
                # already in the durable history is dropped before the
                # collector (and any replica service above it) sees it.
                if durable.record_delivery(event):
                    record(event)

        if self._process_factory is not None:
            return self._process_factory(
                node_id=node_id,
                pss=pss,
                transport=self.network,
                on_deliver=on_deliver,
                time_source=self.sim.now,
                rng=node_rng,
            )
        if self.config.epto.mode == "lazy":
            return LazyEpToProcess(
                node_id=node_id,
                config=self.config.epto,
                peer_sampler=pss,  # type: ignore[arg-type]
                transport=self.network,
                on_deliver=on_deliver,
                time_source=self.sim.now,
                rng=node_rng,
                system_size_hint=self.config.expected_size,
            )
        return EpToProcess(
            node_id=node_id,
            config=self.config.epto,
            peer_sampler=pss,  # type: ignore[arg-type]
            transport=self.network,
            on_deliver=on_deliver,
            time_source=self.sim.now,
            rng=node_rng,
            system_size_hint=self.config.expected_size,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimCluster(size={self.size}, pss={self.config.pss!r})"
