"""Process drift models (paper §5.3, §6).

The paper's simulator schedules rounds at ``now() + delta ± Delta``
where ``Delta`` is the process drift; the evaluation uses a uniformly
random drift of 1%. A drift model produces, for each node and each
round, the next round duration in ticks.

Lemma 5 covers drift bounded by ``delta_min <= delta <= delta_max`` by
inflating the TTL by ``delta_max / delta_min``; :class:`BoundedDrift`
exposes exactly that ratio so experiments can wire it into
:func:`repro.core.params.min_ttl`.
"""

from __future__ import annotations

import random
from typing import Protocol, runtime_checkable

from ..core.errors import ConfigurationError


@runtime_checkable
class DriftModel(Protocol):
    """Produces per-round period lengths for a node."""

    def next_period(self, rng: random.Random, node_id: int, base_period: int) -> int:
        """Next round duration in ticks for *node_id*."""
        ...

    def drift_ratio(self) -> float:
        """``delta_max / delta_min`` bound for Lemma 5 (>= 1)."""
        ...


class NoDrift:
    """Perfectly regular rounds — the §4 synchronous analysis setting."""

    def next_period(self, rng: random.Random, node_id: int, base_period: int) -> int:
        return base_period

    def drift_ratio(self) -> float:
        return 1.0


class UniformDrift:
    """Uniformly random symmetric drift: ``delta * (1 ± fraction)``.

    The paper's evaluation default is ``fraction = 0.01`` (1%).
    """

    def __init__(self, fraction: float = 0.01) -> None:
        if not 0.0 <= fraction < 1.0:
            raise ConfigurationError(f"drift fraction must be in [0, 1), got {fraction}")
        self.fraction = fraction

    def next_period(self, rng: random.Random, node_id: int, base_period: int) -> int:
        if self.fraction == 0.0:
            return base_period
        delta = rng.uniform(-self.fraction, self.fraction)
        return max(1, int(round(base_period * (1.0 + delta))))

    def drift_ratio(self) -> float:
        return (1.0 + self.fraction) / (1.0 - self.fraction)


class BoundedDrift:
    """Per-node constant speed factor within ``[min_factor, max_factor]``.

    Models heterogenous hardware: each node draws a speed factor once
    (deterministically from its id) and keeps it for the whole run —
    the Lemma 5 setting of persistently fast/slow processes, as opposed
    to :class:`UniformDrift`'s per-round jitter.
    """

    def __init__(self, min_factor: float = 0.9, max_factor: float = 1.1, seed: int = 0) -> None:
        if not 0.0 < min_factor <= max_factor:
            raise ConfigurationError(
                f"need 0 < min_factor <= max_factor, got [{min_factor}, {max_factor}]"
            )
        self.min_factor = min_factor
        self.max_factor = max_factor
        self._seed = seed

    def _factor(self, node_id: int) -> float:
        rng = random.Random(f"{self._seed}:drift:{node_id}")
        return rng.uniform(self.min_factor, self.max_factor)

    def next_period(self, rng: random.Random, node_id: int, base_period: int) -> int:
        return max(1, int(round(base_period * self._factor(node_id))))

    def drift_ratio(self) -> float:
        return self.max_factor / self.min_factor
