"""Churn driver (paper §5.4 and §6, Figures 8 and 9).

The paper's churn model keeps the population constant: every round,
``alpha`` processes leave and ``alpha`` fresh processes join. The §6
experiments "subject the system to a given churn rate by removing
churnRate percent nodes uniformly at random and adding churnRate
percent nodes every delta simulator ticks"; :class:`ChurnDriver`
implements exactly that on top of a :class:`~repro.sim.cluster.SimCluster`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from ..core.errors import ConfigurationError
from .cluster import SimCluster
from .engine import PeriodicTask, Simulator


@dataclass(slots=True)
class ChurnStats:
    """What the churn driver did during a run."""

    rounds: int = 0
    removed: int = 0
    added: int = 0


class ChurnDriver:
    """Replaces a fixed fraction of nodes every period.

    Args:
        sim: Host simulator.
        cluster: Cluster whose membership is churned.
        rate: Fraction of the current population replaced each period
            (paper's ``churnRate``), in ``[0, 1)``.
        period: Ticks between churn steps; defaults to the cluster's
            round interval ``delta``, matching the paper.
        start: Tick of the first churn step.
        stop_after: Stop churning past this tick (``None`` = never) —
            experiments stop churn near the end of a run so the system
            can quiesce and agreement can be evaluated on survivors.
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: SimCluster,
        rate: float,
        period: Optional[int] = None,
        start: int = 0,
        stop_after: Optional[int] = None,
    ) -> None:
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError(f"churn rate must be in [0, 1), got {rate}")
        self.sim = sim
        self.cluster = cluster
        self.rate = rate
        self.period = period or cluster.config.epto.round_interval
        self.stop_after = stop_after
        self.stats = ChurnStats()
        self._rng = sim.fork_rng("churn")
        self._task: Optional[PeriodicTask] = None
        if rate > 0.0:
            self._task = PeriodicTask(
                sim,
                self._churn_step,
                period_source=lambda: self.period,
                initial_delay=max(1, start),
            )

    def _churn_step(self) -> None:
        if self.stop_after is not None and self.sim.now() > self.stop_after:
            self.stop()
            return
        self.stats.rounds += 1
        population = self.cluster.size
        count = math.ceil(self.rate * population)
        victims: List[int] = list(
            self.cluster.directory.sample(self._rng, count)
        )
        for node_id in victims:
            self.cluster.remove_node(node_id)
            self.stats.removed += 1
        for _ in range(len(victims)):
            self.cluster.add_node()
            self.stats.added += 1

    def stop(self) -> None:
        """Stop churning permanently (idempotent)."""
        if self._task is not None:
            self._task.stop()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ChurnDriver(rate={self.rate}, period={self.period}, "
            f"removed={self.stats.removed}, added={self.stats.added})"
        )
