"""Trace-replay workload: re-drive a recorded broadcast schedule.

Replays the broadcast schedule of a previous run (a live
:class:`~repro.metrics.collector.DeliveryCollector` or one loaded from
a JSONL trace via :func:`repro.metrics.trace.load_trace`) into a fresh
simulation: each recorded event is re-broadcast at its original tick,
from its original source when that node exists in the new cluster (a
uniformly random live node otherwise).

This turns any interesting run into a reproducible workload: replay it
against different parameters (another TTL, another PSS, loss injected)
and compare outcomes event-for-event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.errors import ConfigurationError
from ..core.event import Event, EventId
from ..metrics.collector import DeliveryCollector
from ..sim.cluster import SimCluster
from ..sim.engine import Simulator


@dataclass(slots=True)
class ReplayStats:
    """Outcome counters of one replay."""

    scheduled: int = 0
    replayed: int = 0
    resourced: int = 0  # original source absent; a random node stood in


class TraceReplayWorkload:
    """Replays a recorded broadcast schedule into a new cluster.

    Args:
        sim: Target simulator (time starts at the recorded origin: the
            schedule is shifted so the first broadcast fires at
            ``offset`` ticks from now).
        cluster: Target cluster.
        source: The recorded run (live collector or loaded trace).
        offset: Ticks from now until the first replayed broadcast.

    The mapping from replayed to original events is exposed via
    :attr:`event_map` so comparisons can be made event-for-event.
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: SimCluster,
        source: DeliveryCollector,
        offset: int = 1,
    ) -> None:
        if offset < 0:
            raise ConfigurationError(f"offset must be >= 0, got {offset}")
        self.sim = sim
        self.cluster = cluster
        self.stats = ReplayStats()
        #: replayed event id -> original event id.
        self.event_map: Dict[EventId, EventId] = {}
        self._rng = sim.fork_rng("workload.replay")

        broadcasts = sorted(source.broadcasts(), key=lambda rec: rec.time)
        if not broadcasts:
            raise ConfigurationError("source run contains no broadcasts")
        origin = broadcasts[0].time
        for record in broadcasts:
            delay = offset + (record.time - origin)
            self.stats.scheduled += 1
            self.sim.schedule(
                delay,
                lambda original=record.event: self._replay_one(original),
            )

    def _replay_one(self, original: Event) -> None:
        if self.cluster.size == 0:
            return
        source_id: Optional[int] = original.source_id
        if source_id not in self.cluster.directory:
            source_id = self.cluster.random_alive(self._rng)
            self.stats.resourced += 1
        replayed = self.cluster.broadcast_from(source_id, original.payload)
        self.event_map[replayed.id] = original.id
        self.stats.replayed += 1
