"""Broadcast workload generators (paper §6).

The paper's experiments drive the system with a per-process
*probability of broadcast* (e.g. "5% prob. broadcast"): each round,
each process broadcasts a fresh event with that probability.
:class:`ProbabilisticWorkload` reproduces this; the simpler generators
support targeted tests and the Figure 6 infection-time baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from ..core.errors import ConfigurationError
from ..core.event import Event
from ..sim.cluster import SimCluster
from ..sim.engine import PeriodicTask, Simulator

#: Builds the payload for the *i*-th generated event.
PayloadFactory = Callable[[int], Any]


def _default_payload(index: int) -> Any:
    return index


@dataclass(slots=True)
class WorkloadStats:
    """What a workload generated."""

    events: int = 0
    rounds: int = 0


class ProbabilisticWorkload:
    """Each round, each live process broadcasts with probability *rate*.

    Args:
        sim: Host simulator.
        cluster: Cluster whose nodes broadcast.
        rate: Per-process per-round broadcast probability (the paper's
            "x% prob. broadcast").
        rounds: Number of broadcast rounds to generate, after which the
            workload stops (the run then drains in silence so every
            event can stabilize).
        period: Ticks between workload rounds; defaults to the
            cluster's round interval ``delta``.
        start: Tick of the first workload round (lets PSS warm-up
            finish first).
        payload_factory: Builds payloads from a running event index.
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: SimCluster,
        rate: float,
        rounds: int,
        period: Optional[int] = None,
        start: int = 0,
        payload_factory: PayloadFactory = _default_payload,
    ) -> None:
        if not 0.0 < rate <= 1.0:
            raise ConfigurationError(f"broadcast rate must be in (0, 1], got {rate}")
        if rounds < 1:
            raise ConfigurationError(f"need at least 1 round, got {rounds}")
        self.sim = sim
        self.cluster = cluster
        self.rate = rate
        self.rounds = rounds
        self.period = period or cluster.config.epto.round_interval
        self.payload_factory = payload_factory
        self.stats = WorkloadStats()
        self._rng = sim.fork_rng("workload")
        self._task = PeriodicTask(
            sim,
            self._round,
            period_source=lambda: self.period,
            initial_delay=max(1, start),
        )

    @property
    def finished(self) -> bool:
        """Whether every broadcast round has been generated."""
        return self.stats.rounds >= self.rounds

    def _round(self) -> None:
        if self.stats.rounds >= self.rounds:
            self._task.stop()
            return
        self.stats.rounds += 1
        rate = self.rate
        rng = self._rng
        for node_id in list(self.cluster.alive_ids()):
            if rng.random() < rate:
                payload = self.payload_factory(self.stats.events)
                self.cluster.broadcast_from(node_id, payload)
                self.stats.events += 1


class FixedCountWorkload:
    """Broadcasts exactly *count* events from random nodes, one per period.

    Deterministic event count, useful when a test needs to reason about
    the exact set of broadcast events.
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: SimCluster,
        count: int,
        period: Optional[int] = None,
        start: int = 0,
        payload_factory: PayloadFactory = _default_payload,
    ) -> None:
        if count < 1:
            raise ConfigurationError(f"need at least 1 event, got {count}")
        self.sim = sim
        self.cluster = cluster
        self.count = count
        self.period = period or cluster.config.epto.round_interval
        self.payload_factory = payload_factory
        self.stats = WorkloadStats()
        self._rng = sim.fork_rng("workload.fixed")
        self._task = PeriodicTask(
            sim,
            self._round,
            period_source=lambda: self.period,
            initial_delay=max(1, start),
        )

    def _round(self) -> None:
        if self.stats.events >= self.count:
            self._task.stop()
            return
        self.stats.rounds += 1
        node_id = self.cluster.random_alive(self._rng)
        self.cluster.broadcast_from(node_id, self.payload_factory(self.stats.events))
        self.stats.events += 1


class PoissonWorkload:
    """Cluster-wide Poisson arrivals: ~``rate`` events per tick.

    Unlike :class:`ProbabilisticWorkload` (per-process, per-round
    coin flips), arrivals here are memoryless in *time*: inter-arrival
    gaps are geometric with mean ``1/rate`` ticks, and each event's
    broadcaster is a uniformly random live node. Useful for workloads
    where the round structure should not imprint on the arrival
    process.

    Args:
        sim: Host simulator.
        cluster: Cluster whose nodes broadcast.
        rate: Expected events per tick (e.g. ``0.02`` = one event per
            50 ticks on average).
        duration: Ticks during which arrivals are generated.
        start: Tick of the first possible arrival.
        payload_factory: Builds payloads from a running event index.
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: SimCluster,
        rate: float,
        duration: int,
        start: int = 0,
        payload_factory: PayloadFactory = _default_payload,
    ) -> None:
        if rate <= 0.0:
            raise ConfigurationError(f"rate must be > 0, got {rate}")
        if duration < 1:
            raise ConfigurationError(f"duration must be >= 1, got {duration}")
        self.sim = sim
        self.cluster = cluster
        self.rate = rate
        self.payload_factory = payload_factory
        self.stats = WorkloadStats()
        self._rng = sim.fork_rng("workload.poisson")
        self._deadline = sim.now() + start + duration
        self._schedule_next(base_delay=start)

    def _schedule_next(self, base_delay: int = 0) -> None:
        # Geometric inter-arrival gap with mean 1/rate ticks.
        gap = max(1, int(self._rng.expovariate(self.rate)))
        self.sim.schedule(base_delay + gap, self._arrival)

    def _arrival(self) -> None:
        if self.sim.now() > self._deadline:
            return
        if self.cluster.size > 0:
            node_id = self.cluster.random_alive(self._rng)
            self.cluster.broadcast_from(
                node_id, self.payload_factory(self.stats.events)
            )
            self.stats.events += 1
        self._schedule_next()


def broadcast_burst(
    cluster: SimCluster,
    count: int,
    payload_factory: PayloadFactory = _default_payload,
) -> List[Event]:
    """Immediately broadcast *count* events from random live nodes.

    All events share (approximately) the same creation tick — the
    maximally concurrent workload, stressing the tie-breaking and
    logical-clock paths.
    """
    rng = cluster.sim.fork_rng("workload.burst")
    events = []
    for index in range(count):
        node_id = cluster.random_alive(rng)
        events.append(cluster.broadcast_from(node_id, payload_factory(index)))
    return events
