"""Workload generators driving the evaluation experiments."""

from .broadcast import (
    FixedCountWorkload,
    PayloadFactory,
    PoissonWorkload,
    ProbabilisticWorkload,
    WorkloadStats,
    broadcast_burst,
)
from .replay import ReplayStats, TraceReplayWorkload

__all__ = [
    "FixedCountWorkload",
    "PayloadFactory",
    "PoissonWorkload",
    "ProbabilisticWorkload",
    "ReplayStats",
    "TraceReplayWorkload",
    "WorkloadStats",
    "broadcast_burst",
]
