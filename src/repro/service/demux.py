"""Topic demultiplexing over one shared transport endpoint.

One host of the multi-topic broadcast service owns exactly one inbox on
the underlying fabric (one UDP socket on
:class:`~repro.runtime.udp.UdpNetwork`, one handler on the in-memory
:class:`~repro.runtime.transport.AsyncNetwork`). The
:class:`TopicDemux` registered there splits that single endpoint into
any number of :class:`TopicChannel` objects, each exposing the familiar
``register`` / ``unregister`` / ``send`` / ``send_many`` network
surface — so a per-topic :class:`~repro.runtime.node.AsyncEpToNode`
(and its Cyclon or anti-entropy traffic) runs over a shared socket
without knowing it.

Cross-topic batching: outgoing frames are not shipped one by one.
``send`` enqueues ``(topic, sender, dst, message)`` and schedules one
flush per event-loop tick (``call_soon``); the flush groups every
pending frame by destination host and packs each group into as few
:class:`~repro.runtime.codec.TopicEnvelope` datagrams as fit the
:data:`~repro.runtime.codec.MAX_DATAGRAM` cap. Because the service
ticks all of a host's topics from one round task, a round's balls for
*every* topic to the same peer coalesce into one datagram — and the
whole per-tick bundle goes to the fabric through
:meth:`~repro.runtime.udp.UdpNetwork.send_bundle`, one ``sendmmsg``
when the platform has it. ``BENCH_core.json``'s ``service_bench``
records the resulting datagram/byte/syscall reduction against
independent single-topic clusters.

Per-topic fault surface: a channel can be partitioned or put under a
loss burst *independently of other topics on the same socket* — the
scenario ``scenarios/multi_topic_drill.json`` partitions one topic's
publisher while a second topic on the very same hosts stays clean.
Checks run at enqueue time (sender side), mirroring the fabric-level
fault semantics.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.errors import MembershipError
from ..runtime import codec
from ..runtime.codec import CodecError, MAX_DATAGRAM, TopicEnvelope

#: Inbox callback: ``handler(src, message)`` — what a channel delivers
#: to its registered node, identical to the fabric-level contract.
ChannelHandler = Callable[[int, Any], None]

_ENVELOPE_OVERHEAD = 16  # outer header
_FRAME_OVERHEAD = 8  # topic u32 + inner_len u32


@dataclass(slots=True)
class DemuxStats:
    """Counters for one host's demux layer.

    ``frames_sent`` against ``envelopes_sent`` is the cross-topic
    batching factor; ``dropped_unknown_topic`` counts well-formed
    frames for topics this host has not opened (or has closed) —
    expected during staggered topic rollout, never an error.
    """

    frames_sent: int = 0
    envelopes_sent: int = 0
    frames_delivered: int = 0
    envelopes_received: int = 0
    dropped_unknown_topic: int = 0
    dropped_partition: int = 0
    dropped_burst: int = 0
    dropped_unencodable: int = 0
    dropped_closed: int = 0
    non_envelope_received: int = 0


class TopicChannel:
    """One topic's view of the shared endpoint.

    Implements the network surface :class:`~repro.runtime.node.AsyncEpToNode`
    consumes (``register`` / ``unregister`` / ``is_registered`` /
    ``send`` / ``send_many``), routing everything through the owning
    :class:`TopicDemux`. At most one node — the hosting process — may
    register; the node id must be the demux's host id, since the topic
    engine *is* the host's presence on that topic.
    """

    def __init__(self, demux: "TopicDemux", topic: int) -> None:
        self.topic = topic
        self._demux = demux
        self.handler: Optional[ChannelHandler] = None
        self._handler_id: Optional[int] = None
        # Per-topic fault state (sender-side, like the fabric's).
        self._partition: Dict[int, object] = {}
        self._partitioned = False
        self._burst_rate = 0.0
        self._burst_until = 0.0

    # -- network surface -------------------------------------------------

    def register(self, node_id: int, handler: ChannelHandler) -> None:
        if node_id != self._demux.host_id:
            raise MembershipError(
                f"channel for topic {self.topic} belongs to host "
                f"{self._demux.host_id}, not node {node_id}"
            )
        if self.handler is not None:
            raise MembershipError(
                f"topic {self.topic} already has a registered engine"
            )
        self.handler = handler
        self._handler_id = node_id

    def unregister(self, node_id: int) -> None:
        if node_id == self._handler_id:
            self.handler = None
            self._handler_id = None

    def is_registered(self, node_id: int) -> bool:
        return node_id == self._handler_id and self.handler is not None

    def send(self, src: int, dst: int, message: Any) -> None:
        self._demux.enqueue(self, src, dst, message)

    def send_many(self, src: int, dsts, message: Any) -> None:
        # The same message object is enqueued for every destination, so
        # the flush's size cache encodes it once per tick, preserving
        # the encode-once fan-out economics through the demux.
        for dst in dsts:
            self._demux.enqueue(self, src, dst, message)

    # -- per-topic fault surface -----------------------------------------

    def set_partition(self, groups: Dict[int, object]) -> None:
        """Partition *this topic only*: frames crossing groups are
        dropped at enqueue while every other topic's traffic between
        the same hosts keeps flowing."""
        self._partition = dict(groups)
        self._partitioned = True

    def heal_partition(self) -> None:
        """Restore this topic's full connectivity."""
        self._partition = {}
        self._partitioned = False

    def set_loss_burst(self, rate: float, duration: float) -> None:
        """Drop this topic's outgoing frames with probability *rate*
        for *duration* seconds."""
        self._burst_rate = float(rate)
        self._burst_until = asyncio.get_running_loop().time() + duration

    def crosses_partition(self, src: int, dst: int) -> bool:
        if not self._partitioned:
            return False
        return self._partition.get(src) != self._partition.get(dst)

    def burst_drops(self, now: float, rng: random.Random) -> bool:
        return (
            self._burst_rate > 0.0
            and now < self._burst_until
            and rng.random() < self._burst_rate
        )


class TopicDemux:
    """One host's frame router over a shared fabric endpoint.

    Args:
        network: Any fabric with the ``register`` / ``unregister`` /
            ``send`` surface; :meth:`~repro.runtime.udp.UdpNetwork.send_bundle`
            is used when present so a tick's whole bundle ships in one
            batched syscall.
        host_id: This host's fabric node id — the id envelopes are
            sent from and received at.
        seed: Seed for the per-topic fault randomness.
    """

    def __init__(self, network: Any, host_id: int, seed: int = 0) -> None:
        self.network = network
        self.host_id = host_id
        self.stats = DemuxStats()
        self.channels: Dict[int, TopicChannel] = {}
        self._pending: Dict[int, List[Tuple[int, int, Any]]] = {}
        self._flush_scheduled = False
        self._attached = False
        self._closed = False
        self._rng = random.Random(f"{seed}:demux:{host_id}")
        self.attach()

    # -- lifecycle -------------------------------------------------------

    def attach(self) -> None:
        """Register this host's inbox with the fabric (idempotent)."""
        if not self._attached:
            self.network.register(self.host_id, self._on_message)
            self._attached = True
            self._closed = False

    def detach(self) -> None:
        """Drop the fabric inbox (host crash or shutdown); pending
        unflushed frames are discarded like bytes in a dead socket."""
        if self._attached:
            self.network.unregister(self.host_id)
            self._attached = False
        self._closed = True
        self._pending.clear()

    def channel(self, topic: int) -> TopicChannel:
        """The channel for *topic*, created on first use."""
        if not 0 <= topic <= codec.MAX_TOPIC_ID:
            raise MembershipError(
                f"topic id {topic} is outside the u32 wire range"
            )
        existing = self.channels.get(topic)
        if existing is None:
            existing = self.channels[topic] = TopicChannel(self, topic)
        return existing

    def close_topic(self, topic: int) -> None:
        """Forget *topic*; later frames for it count as unknown."""
        self.channels.pop(topic, None)

    # -- outbound --------------------------------------------------------

    def enqueue(
        self, channel: TopicChannel, src: int, dst: int, message: Any
    ) -> None:
        """Queue one frame for the next flush, applying the topic's
        fault surface sender-side."""
        if self._closed:
            self.stats.dropped_closed += 1
            return
        self.stats.frames_sent += 1
        if channel.crosses_partition(src, dst):
            self.stats.dropped_partition += 1
            return
        loop = asyncio.get_running_loop()
        if channel.burst_drops(loop.time(), self._rng):
            self.stats.dropped_burst += 1
            return
        self._pending.setdefault(dst, []).append((channel.topic, src, message))
        if not self._flush_scheduled:
            self._flush_scheduled = True
            loop.call_soon(self.flush)

    def flush(self) -> None:
        """Pack every pending frame into per-destination envelopes and
        hand the bundle to the fabric.

        Packing is exact, not estimated: each distinct message is
        trial-encoded once per flush (cached by object identity, so a
        K-peer fan-out of one ball measures it once) and frames are
        packed greedily until the next one would push the envelope past
        the datagram cap, at which point the envelope is cut and a new
        one begun. A message that cannot encode at all (non-JSON
        payload, oversized on its own) is dropped here and counted,
        exactly as the fabric would have counted ``dropped_encode``.
        """
        self._flush_scheduled = False
        if self._closed or not self._pending:
            self._pending.clear()
            return
        pending, self._pending = self._pending, {}
        size_cache: Dict[int, int] = {}
        bundle: List[Tuple[int, TopicEnvelope]] = []
        for dst, frames in pending.items():
            group: List[Tuple[int, int, Any]] = []
            size = _ENVELOPE_OVERHEAD
            for frame in frames:
                _, sender, message = frame
                key = id(message)
                inner = size_cache.get(key)
                if inner is None:
                    try:
                        inner = len(codec.encode(sender, message))
                    except CodecError:
                        inner = -1
                    size_cache[key] = inner
                if inner < 0:
                    self.stats.dropped_unencodable += 1
                    continue
                frame_size = _FRAME_OVERHEAD + inner
                if group and size + frame_size > MAX_DATAGRAM:
                    bundle.append((dst, TopicEnvelope(frames=tuple(group))))
                    group = []
                    size = _ENVELOPE_OVERHEAD
                group.append(frame)
                size += frame_size
            if group:
                bundle.append((dst, TopicEnvelope(frames=tuple(group))))
        if not bundle:
            return
        self.stats.envelopes_sent += len(bundle)
        send_bundle = getattr(self.network, "send_bundle", None)
        if send_bundle is not None:
            send_bundle(self.host_id, bundle)
        else:
            for dst, envelope in bundle:
                self.network.send(self.host_id, dst, envelope)

    # -- inbound ---------------------------------------------------------

    def _on_message(self, src: int, message: Any) -> None:
        if not isinstance(message, TopicEnvelope):
            # A single-topic peer (or stray traffic) on a service
            # fabric: counted, never delivered — topic identity is what
            # keeps streams independent.
            self.stats.non_envelope_received += 1
            return
        self.stats.envelopes_received += 1
        for topic, sender, inner in message.frames:
            channel = self.channels.get(topic)
            if channel is None or channel.handler is None:
                self.stats.dropped_unknown_topic += 1
                continue
            self.stats.frames_delivered += 1
            channel.handler(sender, inner)
