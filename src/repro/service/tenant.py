"""State-machine tenancy on the multi-topic broadcast service.

:class:`ServiceReplica` is the service-hosted counterpart of
:class:`repro.smr.ReplicatedService`'s per-node replicas: one
deterministic :class:`~repro.smr.machine.StateMachine` materialized
from one *topic*'s total order on one
:class:`~repro.service.BroadcastService` host. Because each topic is an
independent EpTO instance, one host can run many tenants — a KV store
on topic 1, an append log on topic 2 — over the same socket, each with
its own journal, checkpoints and recovery.

Tenancy contract (docs/SERVICE.md):

* the tenant owns the topic's delivery callback (attach before any
  delivery, i.e. right after — or instead of — ``open_topic``);
* :meth:`ServiceReplica.checkpoint` snapshots the machine into the
  topic's journal, so a respawn restores snapshot + log suffix into the
  *same* machine object before anti-entropy replays the rest;
* commands are published through normal service backpressure
  (:meth:`ServiceReplica.submit` is just ``service.publish`` on the
  tenant's topic).
"""

from __future__ import annotations

from typing import Any, Optional

from ..core.errors import MembershipError
from ..core.event import Event
from ..smr.machine import StateMachine
from ..smr.replica import Replica
from .service import BroadcastService


class ServiceReplica:
    """A state machine fed by one topic of a broadcast service host.

    Args:
        service: The hosting service.
        topic: The topic whose total order drives the machine. Opened
            here if the host has not opened it yet; an already-open
            topic must not have another delivery callback installed.
        machine: The deterministic state machine instance.
        journal_commands: Keep the applied command list (tests).
    """

    def __init__(
        self,
        service: BroadcastService,
        topic: int,
        machine: StateMachine,
        journal_commands: bool = False,
    ) -> None:
        self.service = service
        self.topic = topic
        self.replica = Replica(
            service.host_id, machine, journal_commands=journal_commands
        )
        if topic not in service.topics:
            service.open_topic(topic, on_deliver=self._apply)
            state = service.topics[topic]
        else:
            state = service.topics[topic]
            if state.on_deliver is not None:
                raise MembershipError(
                    f"topic {topic} already has a delivery callback on "
                    f"host {service.host_id}"
                )
            if state.deliveries:
                raise MembershipError(
                    f"topic {topic} already delivered events on host "
                    f"{service.host_id}; a tenant must attach first"
                )
            state.on_deliver = self._apply
        # Recovery wiring: respawn resets the machine to the blank
        # state a real process restart would boot with, restores it
        # from the topic's snapshot + log suffix, then tells us what it
        # applied (before catch-up streams the remainder via _apply).
        self._blank_state = machine.snapshot()
        state.machine = machine
        state.on_pre_recover = self._on_pre_recover
        state.on_recover = self._on_recover

    def _apply(self, event: Event) -> None:
        self.replica.on_deliver(event)

    def _on_pre_recover(self) -> None:
        # A real restart boots a cold process: recovery must replay
        # onto a blank machine, not onto the crashed incarnation's
        # surviving in-memory state.
        self.replica.machine.restore(self._blank_state)

    def _on_recover(self, recovered: Any) -> None:
        # recover() already restored the machine in place; align the
        # replica's counters so applied_count keeps meaning "commands
        # applied ever", across incarnations.
        self.replica.applied_count = recovered.applied_count
        self.replica.last_result = None

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------

    async def submit(self, command: Any, *, wait: bool = True) -> Event:
        """Publish *command* on the tenant's topic (normal service
        backpressure applies)."""
        return await self.service.publish(self.topic, command, wait=wait)

    def checkpoint(self) -> None:
        """Snapshot the machine into the topic's journal (pruning the
        covered log), so recovery restores from here."""
        journal = self.service.topics[self.topic].node.journal
        if journal is None:
            raise MembershipError(
                f"host {self.service.host_id} has no storage_dir; "
                "nothing durable to checkpoint into"
            )
        journal.save_snapshot(self.replica.snapshot())

    @property
    def applied_count(self) -> int:
        """Commands applied across all incarnations."""
        return self.replica.applied_count

    @property
    def machine(self) -> StateMachine:
        return self.replica.machine

    def digest(self) -> str:
        """Fingerprint of the machine state (convergence checks)."""
        return self.replica.digest()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ServiceReplica(host={self.service.host_id}, topic={self.topic}, "
            f"applied={self.replica.applied_count})"
        )
