"""Orchestration for multi-topic service clusters (tests, drills,
benchmarks).

A :class:`ServiceCluster` is N :class:`~repro.service.BroadcastService`
hosts over one shared fabric — the multi-topic analogue of
:class:`~repro.runtime.cluster.AsyncCluster`, with the same crash /
respawn / wait vocabulary plus per-topic fault helpers and a per-topic
:func:`~repro.faults.verify.check_survivors` wrapper. Every host
subscribes to every topic opened through the cluster; partial
subscription setups should drive :class:`BroadcastService` directly.
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from ..core.config import EpToConfig
from ..core.errors import MembershipError
from ..core.event import Event
from ..pss.base import MembershipDirectory
from ..runtime.transport import AsyncNetwork
from ..sync.config import SyncConfig
from .service import BroadcastService


class ServiceCluster:
    """A set of :class:`BroadcastService` hosts on one loop.

    Args:
        config: EpTO configuration shared by every topic on every host
            (``round_interval`` in milliseconds).
        network: Shared fabric; a lossless in-memory
            :class:`~repro.runtime.transport.AsyncNetwork` is built
            when omitted. For real sockets pass a
            :class:`~repro.runtime.udp.UdpNetwork` and ``await
            open_all()`` before :meth:`start_all`.
        storage_dir: Optional durable root; host *h*'s topic *t*
            journals under ``storage_dir/host-<h>/topic-<t>/``.
        sync: Optional anti-entropy configuration (requires
            ``storage_dir``).
        max_pending / queue_depth: Forwarded to every host (see
            :class:`BroadcastService`).
    """

    def __init__(
        self,
        config: EpToConfig,
        network: Any = None,
        storage_dir: Union[str, Path, None] = None,
        storage_fsync: str = "rotate",
        sync: Optional[SyncConfig] = None,
        max_pending: int = 64,
        queue_depth: int = 1024,
        expected_size: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        self.config = config
        self.network = network if network is not None else AsyncNetwork(seed=seed)
        self.storage_dir = Path(storage_dir) if storage_dir is not None else None
        self.storage_fsync = storage_fsync
        self.sync = sync
        self.max_pending = max_pending
        self.queue_depth = queue_depth
        self.expected_size = expected_size
        self.seed = seed
        #: topic -> shared membership directory (one per topic, shared
        #: by every host so each topic's PSS sees its co-subscribers).
        self.directories: Dict[int, MembershipDirectory] = {}
        self.hosts: Dict[int, BroadcastService] = {}
        #: topics opened through the cluster, in open order.
        self.topics: List[int] = []
        #: topic -> event id -> event, for every cluster-issued publish
        #: (feeds check_survivors' forgery/equivocation checks).
        self.broadcasts: Dict[int, Dict[Any, Event]] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    # Provisioning
    # ------------------------------------------------------------------

    def add_host(self) -> BroadcastService:
        """Create and register one host (subscribed to every topic
        already opened through the cluster)."""
        host_id = self._next_id
        self._next_id += 1
        service = BroadcastService(
            host_id=host_id,
            config=self.config,
            network=self.network,
            directories=self.directories,
            storage_dir=self.host_storage_dir(host_id)
            if self.storage_dir is not None
            else None,
            storage_fsync=self.storage_fsync,
            sync=self.sync,
            max_pending=self.max_pending,
            queue_depth=self.queue_depth,
            expected_size=self.expected_size,
            seed=self.seed,
        )
        for topic in self.topics:
            service.open_topic(topic)
        self.hosts[host_id] = service
        return service

    def add_hosts(self, count: int) -> List[BroadcastService]:
        """Provision *count* hosts."""
        return [self.add_host() for _ in range(count)]

    def host_storage_dir(self, host_id: int) -> Path:
        """The durable root of *host_id*."""
        if self.storage_dir is None:
            raise MembershipError("cluster has no storage_dir configured")
        return self.storage_dir / f"host-{host_id}"

    def open_topic(self, topic: int) -> None:
        """Open *topic* on every current host (and every later one)."""
        if topic in self.topics:
            raise MembershipError(f"topic {topic} is already open")
        self.topics.append(topic)
        self.broadcasts[topic] = {}
        for service in self.hosts.values():
            service.open_topic(topic)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def open_all(self) -> None:
        """Bind every host's socket (UDP fabrics; no-op otherwise)."""
        open_socket = getattr(self.network, "open", None)
        if open_socket is not None:
            for host_id in self.hosts:
                await open_socket(host_id)

    def start_all(self) -> None:
        """Start every host's round task."""
        for service in self.hosts.values():
            service.start()

    async def close_all(self) -> None:
        """Orderly shutdown of every host (and the fabric, if it has a
        ``close``)."""
        for service in self.hosts.values():
            await service.close()
        close = getattr(self.network, "close", None)
        if close is not None:
            await close()

    def crash_host(self, host_id: int) -> BroadcastService:
        """Abruptly kill *host_id* (all its topics at once — a host
        crash takes the shared socket down, not one topic)."""
        service = self._host(host_id)
        service.crash()
        return service

    async def respawn_host(self, host_id: int) -> BroadcastService:
        """Resurrect a crashed host under the same identity; each topic
        recovers from its own journal and catches up independently."""
        service = self._host(host_id)
        await service.respawn()
        return service

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------

    async def publish(
        self, topic: int, host_id: int, payload: Any = None, *, wait: bool = True
    ) -> Event:
        """Publish on *topic* from *host_id*, recording the issued
        event for later verification."""
        event = await self._host(host_id).publish(topic, payload, wait=wait)
        self.broadcasts.setdefault(topic, {})[event.id] = event
        return event

    def deliveries(self, topic: int) -> Dict[int, List[Event]]:
        """Per-host delivered events on *topic*, in delivery order."""
        return {
            host_id: service.deliveries(topic)
            for host_id, service in self.hosts.items()
        }

    def live_ids(self) -> List[int]:
        """Ids of hosts that are not crashed."""
        return [hid for hid, service in self.hosts.items() if not service.crashed]

    # ------------------------------------------------------------------
    # Per-topic fault surface
    # ------------------------------------------------------------------

    def set_topic_partition(self, topic: int, groups: Dict[int, object]) -> None:
        """Partition one topic across the whole cluster (sender-side on
        every host's channel); other topics keep flowing."""
        for service in self.hosts.values():
            service.channel(topic).set_partition(groups)

    def heal_topic_partition(self, topic: int) -> None:
        """Heal one topic's partition everywhere."""
        for service in self.hosts.values():
            service.channel(topic).heal_partition()

    def set_topic_loss(self, topic: int, rate: float, duration: float) -> None:
        """Loss burst on one topic's frames, everywhere."""
        for service in self.hosts.values():
            service.channel(topic).set_loss_burst(rate, duration)

    # ------------------------------------------------------------------
    # Verification / waiting
    # ------------------------------------------------------------------

    async def wait_until(
        self,
        predicate: Callable[[], bool],
        timeout: float,
        poll: float = 0.01,
    ) -> bool:
        """Poll *predicate* until true or *timeout* seconds elapse."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while loop.time() < deadline:
            if predicate():
                return True
            await asyncio.sleep(poll)
        return predicate()

    async def wait_for_topic(self, topic: int, count: int, timeout: float) -> bool:
        """Wait until every live host delivered at least *count* events
        on *topic*."""
        return await self.wait_until(
            lambda: all(
                len(service.deliveries(topic)) >= count
                for service in self.hosts.values()
                if not service.crashed
            ),
            timeout,
        )

    def check_topic(self, topic: int):
        """Run :func:`~repro.faults.verify.check_survivors` over one
        topic's per-host histories — total order, agreement, recovered
        suffixes and content checks, scoped to that topic alone."""
        from ..faults.verify import check_survivors

        recovered = {
            hid
            for hid, service in self.hosts.items()
            if not service.crashed and service.topics[topic].restart_indices
        }
        restart_indices = {
            hid: service.topics[topic].restart_indices
            for hid, service in self.hosts.items()
            if service.topics[topic].restart_indices
        }
        return check_survivors(
            deliveries=self.deliveries(topic),
            survivors=set(self.live_ids()) - recovered,
            recovered=recovered,
            restart_indices=restart_indices,
            broadcasts=self.broadcasts.get(topic),
        )

    def _host(self, host_id: int) -> BroadcastService:
        service = self.hosts.get(host_id)
        if service is None:
            raise MembershipError(f"host {host_id} is not in the cluster")
        return service
