"""Multi-topic broadcast service: many EpTO streams, one transport.

The service multiplexes any number of independent EpTO topics over a
single fabric endpoint per host (docs/SERVICE.md): a
:class:`~repro.service.demux.TopicDemux` frames each topic's traffic
into :class:`~repro.runtime.codec.TopicEnvelope` datagrams, a
:class:`BroadcastService` runs one round task ticking every topic's
engine (so cross-topic balls batch into shared datagrams), and clients
use ``await service.publish(topic, payload)`` plus bounded async
subscriptions. :class:`ServiceCluster` orchestrates N hosts for tests
and drills; :class:`ServiceReplica` hosts a state machine on one topic.
"""

from .cluster import ServiceCluster
from .demux import DemuxStats, TopicChannel, TopicDemux
from .service import (
    BackpressureError,
    BroadcastService,
    ServiceStats,
    Subscription,
    TopicState,
)
from .tenant import ServiceReplica

__all__ = [
    "BackpressureError",
    "BroadcastService",
    "DemuxStats",
    "ServiceCluster",
    "ServiceReplica",
    "ServiceStats",
    "Subscription",
    "TopicChannel",
    "TopicDemux",
    "TopicState",
]
