"""The multi-topic broadcast service host (docs/SERVICE.md).

A :class:`BroadcastService` is one host's presence on any number of
independent EpTO topics, multiplexed over one fabric endpoint through a
:class:`~repro.service.demux.TopicDemux`. Each topic gets its own full
EpTO engine — dissemination buffer, ordering component, optional
durable :class:`~repro.storage.journal.DeliveryJournal` and
anti-entropy :class:`~repro.sync.SyncManager` — so topics never share
ordering state: a slow or partitioned topic cannot delay another's
deliveries.

What *is* shared is the clock and the wire. One round task per host
ticks every topic's round in the same event-loop iteration, so the
fan-outs of all topics coalesce through the demux into shared
:class:`~repro.runtime.codec.TopicEnvelope` datagrams (and, on the UDP
fabric, one ``sendmmsg`` per tick). That sharing is the point of the
service: N topics cost one socket, one timer and ~1 datagram per peer
per round instead of N of each.

Client surface: ``await service.publish(topic, payload)`` with explicit
backpressure against the topic's dissemination buffer, and
``service.subscribe(topic)`` returning a bounded async iterator of
totally-ordered events.
"""

from __future__ import annotations

import asyncio
import collections
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    AsyncIterator,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
    Union,
)

from ..core.config import EpToConfig
from ..core.errors import MembershipError, ReproError
from ..core.event import Event
from ..pss.base import MembershipDirectory
from ..pss.uniform import UniformViewPss
from ..runtime.node import AsyncEpToNode
from ..sync.config import SyncConfig
from .demux import TopicDemux


class BackpressureError(ReproError):
    """A non-blocking publish found the topic's dissemination buffer
    full (``publish(..., wait=False)`` with the next ball already at
    the service's ``max_pending`` cap)."""


@dataclass(slots=True)
class ServiceStats:
    """Per-host service counters (all topics combined)."""

    published: int = 0
    #: publishes that had to wait at least one round for buffer space.
    publish_blocked: int = 0
    #: non-blocking publishes refused with :class:`BackpressureError`.
    publish_rejected: int = 0
    delivered: int = 0
    #: events dropped from a subscription whose consumer fell behind.
    subscriber_lagged: int = 0


class Subscription:
    """A bounded, totally-ordered event feed for one topic.

    Async-iterate it (``async for event in sub:``) or call
    :meth:`close` to detach. The buffer holds at most ``maxlen``
    undelivered events; when the consumer falls behind, *new* events
    are dropped (and counted in
    :attr:`ServiceStats.subscriber_lagged`) rather than blocking the
    round loop — a lagging reader must catch the gap up from the
    topic's journal, never by stalling dissemination.
    """

    def __init__(self, service: "BroadcastService", topic: int, maxlen: int) -> None:
        self._service = service
        self.topic = topic
        self.maxlen = maxlen
        self._buffer: collections.deque[Event] = collections.deque()
        self._ready = asyncio.Event()
        self._closed = False

    def _push(self, event: Event) -> bool:
        """Offer one event; ``False`` means the buffer was full and the
        event was dropped."""
        if self._closed:
            return True
        if len(self._buffer) >= self.maxlen:
            return False
        self._buffer.append(event)
        self._ready.set()
        return True

    def close(self) -> None:
        """Detach from the topic; pending buffered events still drain."""
        if not self._closed:
            self._closed = True
            self._ready.set()
            self._service._drop_subscription(self)

    @property
    def closed(self) -> bool:
        return self._closed

    def __aiter__(self) -> AsyncIterator[Event]:
        return self

    async def __anext__(self) -> Event:
        while True:
            if self._buffer:
                return self._buffer.popleft()
            if self._closed:
                raise StopAsyncIteration
            self._ready.clear()
            await self._ready.wait()


@dataclass
class TopicState:
    """Everything one host keeps per subscribed topic."""

    topic: int
    node: AsyncEpToNode
    directory: MembershipDirectory
    #: events delivered in total order since this host first subscribed
    #: (across respawns; see :attr:`restart_indices`).
    deliveries: List[Event] = field(default_factory=list)
    #: indices into :attr:`deliveries` at which each respawn began.
    restart_indices: List[int] = field(default_factory=list)
    subscriptions: List[Subscription] = field(default_factory=list)
    on_deliver: Optional[Callable[[Event], None]] = None
    recoveries: List[Any] = field(default_factory=list)
    #: optional state machine handed to recovery at respawn, so the
    #: durable snapshot + log suffix restore it in place (tenants —
    #: :class:`~repro.service.tenant.ServiceReplica` — set this).
    machine: Any = None
    #: optional tenant hook run before recovery reads the journal; it
    #: must reset :attr:`machine` to its blank state (a real process
    #: restart loses memory — recovery replays onto a cold machine).
    on_pre_recover: Optional[Callable[[], None]] = None
    #: optional tenant hook invoked with each RecoveredState, after the
    #: machine is restored and *before* catch-up replays further events.
    on_recover: Optional[Callable[[Any], None]] = None
    #: re-created each round; publishers blocked on backpressure await
    #: the current event and re-check after the round drains the buffer.
    round_drained: asyncio.Event = field(default_factory=asyncio.Event)
    #: per-topic round interval override in milliseconds (``None`` =
    #: the host config's interval). Topics sharing an interval still
    #: tick in one loop iteration, so their fan-outs keep coalescing
    #: into shared envelopes; a topic on its own cadence trades that
    #: batching for the cadence.
    round_interval: Optional[int] = None
    #: rounds ticked on this topic (drives tests and metrics).
    rounds_ticked: int = 0


class BroadcastService:
    """One host of the multi-topic broadcast service.

    Args:
        host_id: This host's fabric node id (one per fabric endpoint).
        config: EpTO configuration shared by every topic engine
            (``round_interval`` in milliseconds, as in the asyncio
            runtime).
        network: The shared fabric —
            :class:`~repro.runtime.transport.AsyncNetwork` or
            :class:`~repro.runtime.udp.UdpNetwork` (open this host's
            socket before :meth:`start`). The service registers exactly
            one handler/socket regardless of topic count.
        directories: Shared ``topic -> MembershipDirectory`` map. Hosts
            of one cluster must share this dict so each topic's PSS
            sees its co-subscribers; pass the same object to every
            host.
        storage_dir: Optional per-host durable root; topic journals
            live under ``storage_dir/topic-<id>/``.
        sync: Optional anti-entropy configuration applied to every
            journaled topic (requires ``storage_dir``).
        max_pending: Backpressure threshold — a publish finding the
            topic's next ball already at this many events blocks (or
            fails fast) until a round drains it.
        queue_depth: Buffer bound for new subscriptions.
        expected_size: Per-topic system-size hint forwarded to engines.
        seed: Base seed for this host's randomness.
    """

    def __init__(
        self,
        host_id: int,
        config: EpToConfig,
        network: Any,
        directories: Dict[int, MembershipDirectory] | None = None,
        storage_dir: Union[str, Path, None] = None,
        storage_fsync: str = "rotate",
        sync: Optional[SyncConfig] = None,
        max_pending: int = 64,
        queue_depth: int = 1024,
        expected_size: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if sync is not None and storage_dir is None:
            raise MembershipError(
                "anti-entropy sync requires storage_dir (it exchanges "
                "delivery-log suffixes)"
            )
        self.host_id = host_id
        self.config = config
        self.network = network
        self.directories = directories if directories is not None else {}
        self.storage_dir = Path(storage_dir) if storage_dir is not None else None
        self.storage_fsync = storage_fsync
        self.sync = sync
        self.max_pending = max_pending
        self.queue_depth = queue_depth
        self.expected_size = expected_size
        self.seed = seed
        self.stats = ServiceStats()
        self.topics: Dict[int, TopicState] = {}
        self.demux = TopicDemux(network, host_id, seed=seed)
        self._round_task: Optional[asyncio.Task] = None
        self._crashed = False
        # A fabric teardown (UdpNetwork.close()) aborts the round task
        # *before* sockets close, so its cancellation is retired inside
        # close()'s final loop turn — no "Task was destroyed but it is
        # pending!" warnings from shutting a live service down.
        add_listener = getattr(network, "add_close_listener", None)
        if add_listener is not None:
            add_listener(self.abort)

    # ------------------------------------------------------------------
    # Topic lifecycle
    # ------------------------------------------------------------------

    def open_topic(
        self,
        topic: int,
        on_deliver: Callable[[Event], None] | None = None,
        round_interval: Optional[int] = None,
    ) -> TopicState:
        """Join *topic*: build its EpTO engine over this host's shared
        endpoint (and its journal, when the host is durable).

        ``round_interval`` (milliseconds) puts the topic on its own
        round cadence instead of the host config's — a chatty low-
        latency topic and a bulk slow topic can share one host without
        sharing a clock. Topics left on the default keep ticking in the
        same loop iteration, preserving cross-topic envelope batching.
        """
        if topic in self.topics:
            raise MembershipError(f"host {self.host_id} already opened topic {topic}")
        if round_interval is not None and round_interval <= 0:
            raise MembershipError(
                f"round_interval must be positive, got {round_interval}"
            )
        directory = self.directories.setdefault(topic, MembershipDirectory())
        journal = self._open_journal(topic)
        # A running round task needs no notification — it iterates the
        # topic map afresh every tick, so the new topic joins next round.
        state = self._provision(topic, directory, journal, on_deliver)
        state.round_interval = round_interval
        return state

    async def close_topic(self, topic: int) -> None:
        """Leave *topic* gracefully: stop its engine, close its
        subscriptions and journal, free its channel."""
        state = self.topics.pop(topic, None)
        if state is None:
            raise MembershipError(f"host {self.host_id} has not opened topic {topic}")
        state.node.network.unregister(self.host_id)
        state.directory.remove(self.host_id)
        for subscription in list(state.subscriptions):
            subscription.close()
        journal = state.node.journal
        if journal is not None and not journal.closed:
            journal.close()
        self.demux.close_topic(topic)
        state.round_drained.set()

    def topic_storage_dir(self, topic: int) -> Path:
        """The durable directory of *topic* on this host."""
        if self.storage_dir is None:
            raise MembershipError("service has no storage_dir configured")
        return self.storage_dir / f"topic-{topic}"

    def _open_journal(self, topic: int, resume: Any = None):
        if self.storage_dir is None:
            return None
        from ..storage.journal import DeliveryJournal

        return DeliveryJournal(
            self.topic_storage_dir(topic),
            fsync=self.storage_fsync,
            resume=resume,
        )

    def _provision(
        self,
        topic: int,
        directory: MembershipDirectory,
        journal: Any,
        on_deliver: Callable[[Event], None] | None,
        state: TopicState | None = None,
    ) -> TopicState:
        """Build a topic engine (fresh subscribe or respawn) over the
        topic's channel; ``state`` is reused across respawns."""
        import random as _random

        channel = self.demux.channel(topic)
        pss = UniformViewPss(
            self.host_id,
            directory,
            rng=_random.Random(f"{self.seed}:service-pss:{self.host_id}:{topic}"),
        )

        def record(event: Event) -> None:
            current = self.topics.get(topic)
            if current is None:
                return
            current.deliveries.append(event)
            self.stats.delivered += 1
            for subscription in current.subscriptions:
                if not subscription._push(event):
                    self.stats.subscriber_lagged += 1
            if current.on_deliver is not None:
                current.on_deliver(event)

        node = AsyncEpToNode(
            node_id=self.host_id,
            config=self.config,
            network=channel,
            peer_sampler=pss,
            on_deliver=record,
            seed=self.seed * 1_000_003 + topic,
            system_size_hint=self.expected_size,
            journal=journal,
            sync_config=self.sync if journal is not None else None,
        )
        if state is None:
            state = TopicState(topic=topic, node=node, directory=directory)
            state.on_deliver = on_deliver
            self.topics[topic] = state
        else:
            state.node = node
        directory.add(self.host_id)
        return state

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------

    async def publish(
        self, topic: int, payload: Any = None, *, wait: bool = True
    ) -> Event:
        """EpTO-broadcast *payload* on *topic*, under backpressure.

        When the topic's next ball already holds ``max_pending`` events
        the publish waits for rounds to drain the buffer (``wait=True``,
        the default) or raises :class:`BackpressureError` immediately
        (``wait=False``) — the buffer is what the next round's ball
        carries, so an unbounded buffer would mean unbounded datagrams.
        """
        state = self._state(topic)
        while state.node.process.dissemination.next_ball_size >= self.max_pending:
            if not wait:
                self.stats.publish_rejected += 1
                raise BackpressureError(
                    f"topic {topic} has {self.max_pending} events pending "
                    f"dissemination on host {self.host_id}"
                )
            self.stats.publish_blocked += 1
            await state.round_drained.wait()
            state = self._state(topic)  # may have respawned while blocked
        self.stats.published += 1
        return state.node.broadcast(payload)

    def subscribe(self, topic: int, maxlen: int | None = None) -> Subscription:
        """A new bounded async iterator over *topic*'s total order
        (deliveries from this point on)."""
        state = self._state(topic)
        subscription = Subscription(
            self, topic, maxlen if maxlen is not None else self.queue_depth
        )
        state.subscriptions.append(subscription)
        return subscription

    def _drop_subscription(self, subscription: Subscription) -> None:
        state = self.topics.get(subscription.topic)
        if state is not None and subscription in state.subscriptions:
            state.subscriptions.remove(subscription)

    def deliveries(self, topic: int) -> List[Event]:
        """Events delivered on *topic*, in total order."""
        return self._state(topic).deliveries

    def channel(self, topic: int):
        """The topic's demux channel (per-topic fault injection)."""
        return self.demux.channel(topic)

    def _state(self, topic: int) -> TopicState:
        state = self.topics.get(topic)
        if state is None:
            raise MembershipError(
                f"host {self.host_id} has not opened topic {topic}"
            )
        return state

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the single per-host round task ticking every topic."""
        self._crashed = False
        if self._round_task is None or self._round_task.done():
            self._round_task = asyncio.get_running_loop().create_task(
                self._round_loop()
            )

    @property
    def running(self) -> bool:
        return self._round_task is not None and not self._round_task.done()

    @property
    def crashed(self) -> bool:
        return self._crashed

    def _interval_s(self, state: TopicState) -> float:
        interval = (
            state.round_interval
            if state.round_interval is not None
            else self.config.round_interval
        )
        return interval / 1000.0

    async def _round_loop(self) -> None:
        # Per-topic absolute due times: topics on the default interval
        # (scheduled in the same loop iteration) share due times and
        # keep ticking together — cross-topic envelope batching stays
        # intact — while an overridden topic runs its own cadence.
        loop = asyncio.get_running_loop()
        default_s = self.config.round_interval / 1000.0
        next_due: Dict[int, float] = {}
        while True:
            now = loop.time()
            for topic in list(next_due):
                if topic not in self.topics:
                    del next_due[topic]
            for topic, state in self.topics.items():
                if topic not in next_due:
                    next_due[topic] = now + self._interval_s(state)
            if not next_due:
                await asyncio.sleep(default_s)
                continue
            delay = min(next_due.values()) - now
            if delay > 0:
                await asyncio.sleep(delay)
            now = loop.time()
            due = [topic for topic, at in next_due.items() if at <= now]
            self._tick_topics(due)
            for topic in due:
                state = self.topics.get(topic)
                if state is None:
                    next_due.pop(topic, None)
                else:
                    next_due[topic] = now + self._interval_s(state)

    def tick(self) -> None:
        """One service round: every topic's EpTO round plus its sync
        round, all in one loop iteration.

        Ticking topics together — instead of one timer task per topic —
        is what makes cross-topic batching real: every topic's fan-out
        lands in the demux's pending queue before its end-of-tick
        flush, so one peer receives one envelope carrying all topics'
        balls. (The driver for tests and drills; the round loop ticks
        only the topics whose cadence is due.)
        """
        self._tick_topics(list(self.topics))

    def _tick_topics(self, topics: List[int]) -> None:
        for topic in topics:
            state = self.topics.get(topic)
            if state is None:
                continue
            state.rounds_ticked += 1
            state.node.process.on_round()
            if state.node.sync_manager is not None:
                state.node.sync_manager.on_round()
            drained = state.round_drained
            state.round_drained = asyncio.Event()
            drained.set()

    def crash(self) -> None:
        """Abrupt host death (fault injection): kill the round task,
        drop the socket/handler, leave every topic's directory.

        Journals are deliberately *not* closed — a real crash would not
        flush them either; :meth:`respawn` seals and recovers them.
        """
        self.abort()
        self._crashed = True
        for state in self.topics.values():
            state.node.crash()  # unregisters the topic channel handler
            state.directory.remove(self.host_id)
        self.demux.detach()  # drops the fabric inbox (closes a UDP socket)

    def abort(self) -> None:
        """Synchronously cancel the round task (idempotent).

        This is the fabric's close listener: it runs inside
        ``UdpNetwork.close()`` *before* transports are torn down, so the
        cancellation is collected by the loop turn ``close()`` already
        awaits, leaving no pending-task warnings behind.
        """
        if self._round_task is not None:
            self._round_task.cancel()
            self._round_task = None

    async def respawn(self) -> None:
        """Bring a crashed host back under the same identity.

        Per topic: seal the pre-crash journal (two-writer guard),
        recover the durable state, resume the broadcast sequence at
        ``max(corpse counter, durable record)`` so event ids stay
        unique, then — once every topic is re-provisioned — run
        blocking anti-entropy catch-up per topic *before* restarting
        the round loop (the same crash-consistency order
        :class:`~repro.runtime.cluster.AsyncCluster` uses for single
        nodes, applied per topic).
        """
        if self.running:
            raise MembershipError(f"host {self.host_id} is still running")
        self.demux.attach()
        open_socket = getattr(self.network, "open", None)
        if open_socket is not None:
            await open_socket(self.host_id)
        for topic, state in self.topics.items():
            state.restart_indices.append(len(state.deliveries))
            corpse = state.node
            resume_seq = corpse.process.dissemination.issued_sequence
            journal = None
            if self.storage_dir is not None:
                old = corpse.journal
                if old is not None and not old.closed:
                    old.close()
                from ..storage.recovery import recover

                if state.on_pre_recover is not None:
                    state.on_pre_recover()
                recovered = recover(
                    self.host_id,
                    self.topic_storage_dir(topic),
                    machine=state.machine,
                )
                state.recoveries.append(recovered)
                resume_seq = max(resume_seq, recovered.next_seq)
                journal = self._open_journal(topic, resume=recovered)
                if state.on_recover is not None:
                    state.on_recover(recovered)
            self._provision(
                topic, state.directory, journal, state.on_deliver, state=state
            )
            state.node.process.resume_sequence(resume_seq)
        self._crashed = False
        for state in self.topics.values():
            if state.node.sync_manager is not None:
                await state.node.catch_up()
        self.start()

    async def close(self) -> None:
        """Orderly shutdown: cancel the round task, leave every topic,
        close journals and subscriptions, detach from the fabric."""
        task = self._round_task
        self._round_task = None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        for topic in list(self.topics):
            await self.close_topic(topic)
        self.demux.detach()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BroadcastService(host={self.host_id}, topics={sorted(self.topics)}, "
            f"running={self.running})"
        )
