"""EpTO: an epidemic total order algorithm for large-scale distributed systems.

Reproduction of Matos, Mercier, Felber, Oliveira and Pereira,
*EpTO: An Epidemic Total Order Algorithm for Large-Scale Distributed
Systems*, Middleware 2015 (DOI 10.1145/2814576.2814804).

Package layout
--------------

- :mod:`repro.core` — the EpTO algorithm: events, stability oracles
  (global/logical clock), dissemination (Alg. 1) and ordering (Alg. 2)
  components, parameter derivation (Theorem 2, Lemmas 3–7), and the
  §8.2/§8.4 extensions.
- :mod:`repro.sim` — the discrete-event simulation substrate used by
  the paper's evaluation: engine, network (latency/loss/partitions),
  churn, drift, cluster orchestration.
- :mod:`repro.pss` — peer sampling: idealized uniform view and Cyclon.
- :mod:`repro.broadcast` — baselines: unordered balls-and-bins and
  per-source FIFO epidemic broadcast.
- :mod:`repro.analysis` — the analytic bounds behind Figure 3 and the
  balls-in-bins machinery of Theorem 2.
- :mod:`repro.metrics` — delivery metrics, CDFs and the Table 1
  specification checker.
- :mod:`repro.workloads` — broadcast workload generators.
- :mod:`repro.experiments` — one driver per paper figure/table plus
  the ``epto-experiment`` CLI.
- :mod:`repro.runtime` — an asyncio runtime (§8.5's "real system
  implementation" future work).
- :mod:`repro.service` — the multi-topic broadcast service: many
  independent EpTO streams multiplexed over one shared transport per
  host, with an async publish/subscribe API (docs/SERVICE.md).

Quickstart
----------

>>> from repro import EpToConfig, Simulator, SimNetwork, ClusterConfig, SimCluster
>>> sim = Simulator(seed=7)
>>> network = SimNetwork(sim)
>>> cluster = SimCluster(sim, network, ClusterConfig(epto=EpToConfig.for_system_size(8)))
>>> _ = cluster.add_nodes(8)
>>> _ = cluster.broadcast_from(cluster.alive_ids()[0], "hello")
>>> sim.run(until=10_000)
>>> cluster.collector.delivery_count
8
"""

from .broadcast import BallsBinsProcess, FifoProcess
from .core import (
    Ball,
    BallEntry,
    ConfigurationError,
    DeliveryLog,
    EpToConfig,
    EpToProcess,
    Event,
    EventId,
    GlobalClockOracle,
    LogicalClockOracle,
    OrderingInvariantError,
    ReproError,
    StabilityEstimate,
    StabilityEstimator,
    TaggedEvent,
    derive_parameters,
    min_fanout,
    min_ttl,
)
from .faults import (
    AsyncFaultInjector,
    FaultSchedule,
    NodeSupervisor,
    ObservedConditions,
    SimFaultInjector,
    SurvivorReport,
    adapt_config,
    check_survivors,
)
from .metrics import DeliveryCollector, SpecReport, check_run
from .pss import CyclonPss, MembershipDirectory, UniformViewPss
from .service import (
    BackpressureError,
    BroadcastService,
    ServiceCluster,
    ServiceReplica,
)
from .smr import KeyValueStore, Replica, ReplicatedService
from .sim import (
    ChurnDriver,
    ClusterConfig,
    PlanetLabLatency,
    SimCluster,
    SimNetwork,
    Simulator,
)

__version__ = "1.0.0"

__all__ = [
    "AsyncFaultInjector",
    "BackpressureError",
    "Ball",
    "BallEntry",
    "BallsBinsProcess",
    "BroadcastService",
    "ChurnDriver",
    "ClusterConfig",
    "ConfigurationError",
    "CyclonPss",
    "DeliveryCollector",
    "DeliveryLog",
    "EpToConfig",
    "EpToProcess",
    "Event",
    "EventId",
    "FaultSchedule",
    "FifoProcess",
    "GlobalClockOracle",
    "KeyValueStore",
    "LogicalClockOracle",
    "MembershipDirectory",
    "NodeSupervisor",
    "ObservedConditions",
    "OrderingInvariantError",
    "PlanetLabLatency",
    "Replica",
    "ReplicatedService",
    "ReproError",
    "ServiceCluster",
    "ServiceReplica",
    "SimCluster",
    "SimFaultInjector",
    "SimNetwork",
    "Simulator",
    "SpecReport",
    "StabilityEstimate",
    "StabilityEstimator",
    "SurvivorReport",
    "TaggedEvent",
    "UniformViewPss",
    "adapt_config",
    "check_run",
    "check_survivors",
    "derive_parameters",
    "min_fanout",
    "min_ttl",
    "__version__",
]
