"""Fault-schedule interpreter for the asyncio runtime.

Runs the same :class:`~repro.faults.schedule.FaultSchedule` that drives
the simulator against a live :class:`~repro.runtime.cluster.AsyncCluster`,
on real wall-clock timers: a round is ``config.round_interval``
milliseconds. Crashes call :meth:`AsyncCluster.crash_node` (abrupt
death — tasks killed, inbox dropped); recoveries respawn the *same*
node ids via :meth:`AsyncCluster.respawn_node` unless a
:class:`~repro.faults.supervisor.NodeSupervisor` already resurrected
them; partitions, loss bursts, latency spikes and corruption windows
map onto the fabric's fault surface
(:class:`~repro.runtime.transport.AsyncNetwork` or
:class:`~repro.runtime.udp.UdpNetwork`).

Fabric capabilities differ — e.g. the in-memory fabric has no wire
bytes to corrupt — so the injector validates the schedule against the
fabric up front (:meth:`AsyncFaultInjector.run` raises
:class:`~repro.core.errors.FaultInjectionError` before touching
anything) and degrades corruption to a loss burst where no codec
exists, recording the approximation in its log. Latency spikes run on
both fabrics: :class:`~repro.runtime.transport.AsyncNetwork` stretches
its simulated delay, and :class:`~repro.runtime.udp.UdpNetwork` defers
``sendto`` sender-side (observationally identical to a slower wire).
"""

from __future__ import annotations

import asyncio
import math
from typing import Any, Callable, List, Set, Tuple

from ..core.errors import FaultInjectionError
from ..runtime.cluster import AsyncCluster
from .byzantine import ByzantineRouter, forged_events, garbage_ball, scramble_journal
from .schedule import (
    ByzantineNodes,
    CorruptDatagrams,
    CrashNodes,
    FaultSchedule,
    HealPartition,
    LatencySpike,
    LossBurst,
    PartitionNetwork,
    ScrambleState,
)
from .sim_injector import FaultStats


class AsyncFaultInjector:
    """Drives one fault schedule against a live asyncio cluster.

    Args:
        cluster: The running cluster (``start_all()`` before or after
            creating the injector; actions fire relative to
            :meth:`run`'s start).
        schedule: Declarative scenario; round times become
            ``round_interval`` milliseconds each.
        seed: Seed for victim/partition sampling.

    Usage::

        injector = AsyncFaultInjector(cluster, FaultSchedule.standard_drill())
        await injector.run()          # returns when the last action fired
    """

    def __init__(
        self,
        cluster: AsyncCluster,
        schedule: FaultSchedule,
        seed: int = 0,
    ) -> None:
        import random as _random

        self.cluster = cluster
        self.schedule = schedule
        self.stats = FaultStats()
        #: (seconds since run() started, description) per applied action.
        self.log: List[Tuple[float, str]] = []
        #: Ids this injector crashed (and, with ``recover_after``,
        #: respawned under the same identity).
        self.crashed_ids: Set[int] = set()
        #: Ids ever made hostile / state-scrambled (mirrors
        #: :class:`~repro.faults.sim_injector.SimFaultInjector`).
        self.byzantine_ids: Set[int] = set()
        self.scrambled_ids: Set[int] = set()
        self._router: ByzantineRouter | None = None
        self._rng = _random.Random(f"{seed}:async-faults")
        self._started_at = 0.0
        self._initial_population: Set[int] = set()
        # Victims per crash action (keyed by action identity), recorded
        # at crash time for the matching recovery timeline entry.
        self._victims: dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    async def run(self) -> None:
        """Apply the whole schedule, sleeping between actions.

        Returns once the final action (including recoveries and heals)
        has been applied. Raises
        :class:`~repro.core.errors.FaultInjectionError` before applying
        anything if the fabric cannot express an action.
        """
        self._check_fabric()
        round_s = self.cluster.config.round_interval / 1000.0
        timeline: List[Tuple[float, Callable[[], Any]]] = []
        for action in self.schedule:
            when = action.at_round * round_s
            if isinstance(action, CrashNodes):
                timeline.append((when, lambda a=action: self._crash(a)))
                if action.recover_after is not None:
                    timeline.append(
                        (
                            when + action.recover_after * round_s,
                            lambda a=action: self._recover(a),
                        )
                    )
            elif isinstance(action, PartitionNetwork):
                timeline.append((when, lambda a=action: self._partition(a)))
                if action.heal_after is not None:
                    timeline.append(
                        (when + action.heal_after * round_s, self._heal)
                    )
            elif isinstance(action, HealPartition):
                timeline.append((when, self._heal))
            elif isinstance(action, LossBurst):
                timeline.append(
                    (when, lambda a=action: self._loss_burst(a, round_s))
                )
            elif isinstance(action, CorruptDatagrams):
                timeline.append((when, lambda a=action: self._corrupt(a, round_s)))
            elif isinstance(action, LatencySpike):
                timeline.append((when, lambda a=action: self._spike(a, round_s)))
            elif isinstance(action, ByzantineNodes):
                timeline.append((when, lambda a=action: self._byzantine(a)))
                if action.duration is not None:
                    timeline.append(
                        (
                            when + action.duration * round_s,
                            lambda a=action: self._end_byzantine(a),
                        )
                    )
            elif isinstance(action, ScrambleState):
                timeline.append((when, lambda a=action: self._scramble(a)))
                timeline.append(
                    (
                        when + action.recover_after * round_s,
                        lambda a=action: self._unscramble(a),
                    )
                )
            else:  # pragma: no cover - schedule validates kinds
                raise FaultInjectionError(f"unsupported action {action!r}")
        timeline.sort(key=lambda item: item[0])

        loop = asyncio.get_running_loop()
        self._started_at = loop.time()
        self._initial_population = set(self.cluster.live_ids())
        for when, apply in timeline:
            delay = self._started_at + when - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            result = apply()
            if asyncio.iscoroutine(result):
                await result

    def _check_fabric(self) -> None:
        network = self.cluster.network
        for action in self.schedule:
            if isinstance(action, (PartitionNetwork, HealPartition)) and not hasattr(
                network, "set_partition"
            ):
                raise FaultInjectionError(
                    f"{type(network).__name__} does not support partitions"
                )
            if isinstance(action, (LossBurst, CorruptDatagrams)) and not hasattr(
                network, "set_loss_burst"
            ):
                raise FaultInjectionError(
                    f"{type(network).__name__} does not support loss bursts"
                )
            if isinstance(action, LatencySpike) and not hasattr(
                network, "set_latency_spike"
            ):
                raise FaultInjectionError(
                    f"{type(network).__name__} cannot stretch latency"
                )
            if isinstance(action, ByzantineNodes) and not hasattr(
                network, "set_adversary"
            ):
                raise FaultInjectionError(
                    f"{type(network).__name__} does not support hostile "
                    "behaviors (no set_adversary)"
                )

    # ------------------------------------------------------------------
    # Survivor accounting
    # ------------------------------------------------------------------

    def continuous_survivors(self) -> Set[int]:
        """Ids live now, live at start, and never crashed in between."""
        return self._initial_population & (
            set(self.cluster.live_ids()) - self.crashed_ids
        )

    # ------------------------------------------------------------------
    # Action handlers
    # ------------------------------------------------------------------

    def _crash(self, action: CrashNodes) -> None:
        alive = self.cluster.live_ids()
        if action.nodes is not None:
            victims = [nid for nid in action.nodes if nid in set(alive)]
        else:
            count = min(len(alive), math.ceil(action.fraction * len(alive)))
            victims = self._rng.sample(alive, count)
        for node_id in victims:
            self.cluster.crash_node(node_id)
            self.crashed_ids.add(node_id)
            self.stats.crashes += 1
        self._victims[id(action)] = list(victims)
        self._log(f"crashed {sorted(victims)}")

    async def _recover(self, action: CrashNodes) -> None:
        victims = self._victims.get(id(action), [])
        recovered: List[int] = []
        for node_id in victims:
            node = self.cluster.nodes.get(node_id)
            if node is None or not node.crashed:
                continue  # a supervisor beat us to it, or it was removed
            replacement = await self.cluster.respawn_node(node_id)
            replacement.start()
            self.stats.recoveries += 1
            recovered.append(node_id)
        self._log(f"recovered {sorted(recovered)} under their own ids")

    def _partition(self, action: PartitionNetwork) -> None:
        if action.groups is not None:
            groups = dict(action.groups)
        else:
            alive = self.cluster.live_ids()
            minority_size = max(1, math.ceil(action.fraction * len(alive)))
            minority = set(self._rng.sample(alive, min(minority_size, len(alive))))
            groups = {nid: (1 if nid in minority else 0) for nid in alive}
        self.cluster.network.set_partition(groups)
        self.stats.partitions += 1
        sizes = sorted(
            [list(groups.values()).count(g) for g in set(groups.values())]
        )
        self._log(f"partitioned into groups of sizes {sizes}")

    def _heal(self) -> None:
        self.cluster.network.heal_partition()
        self.stats.heals += 1
        self._log("healed partition")

    def _loss_burst(self, action: LossBurst, round_s: float) -> None:
        self.cluster.network.set_loss_burst(action.rate, action.duration * round_s)
        self.stats.loss_bursts += 1
        self._log(f"loss burst rate={action.rate} for {action.duration} rounds")

    def _corrupt(self, action: CorruptDatagrams, round_s: float) -> None:
        network = self.cluster.network
        duration_s = action.duration * round_s
        if hasattr(network, "set_corruption"):
            network.set_corruption(action.rate, duration_s)
            self.stats.corruption_windows += 1
            self._log(f"corrupting datagrams rate={action.rate}")
        else:
            network.set_loss_burst(action.rate, duration_s)
            self.stats.corruption_windows += 1
            self._log(
                f"corruption window rate={action.rate} (approximated as loss "
                "— this fabric has no wire bytes to mangle)"
            )

    def _spike(self, action: LatencySpike, round_s: float) -> None:
        self.cluster.network.set_latency_spike(
            action.factor, action.duration * round_s
        )
        self.stats.latency_spikes += 1
        self._log(f"latency spike x{action.factor}")

    def _byzantine(self, action: ByzantineNodes) -> None:
        if self._router is None:
            self._router = ByzantineRouter(rng=self._rng)
            self.cluster.network.set_adversary(self._router)
        self._router.enable(action.nodes, action.behavior, action.rate)
        self.byzantine_ids.update(action.nodes)
        self.stats.byzantine_windows += 1
        self._log(
            f"byzantine {action.behavior} on {sorted(action.nodes)} "
            f"rate={action.rate}"
        )

    def _end_byzantine(self, action: ByzantineNodes) -> None:
        if self._router is not None:
            self._router.disable(action.nodes, action.behavior)
            self._log(f"byzantine {action.behavior} off for {sorted(action.nodes)}")

    def _scramble(self, action: ScrambleState) -> None:
        alive = set(self.cluster.live_ids())
        victims = [nid for nid in action.nodes if nid in alive]
        storage_dir = getattr(self.cluster, "storage_dir", None)
        for node_id in victims:
            impersonate = sorted(alive - {node_id} - set(victims))[:3]
            if action.garbage_events > 0 and impersonate:
                # Forged under other live identities, at a plausible
                # near-future logical timestamp — the observable face
                # of the victim's corrupted clock and ordering state.
                node = self.cluster.nodes.get(node_id)
                ts = getattr(getattr(node, "clock", None), "now", lambda: 0)()
                events = forged_events(
                    impersonate, action.garbage_events, ts=int(ts) + 1
                )
                targets = [nid for nid in alive if nid != node_id]
                self.cluster.network.send_many(
                    node_id, targets, garbage_ball(events)
                )
                self._log(
                    f"scramble {node_id}: sprayed {len(events)} forged "
                    f"events impersonating {impersonate}"
                )
            self.cluster.crash_node(node_id)
            self.crashed_ids.add(node_id)
            self.scrambled_ids.add(node_id)
            self.stats.scrambles += 1
            if storage_dir is not None:
                damage = scramble_journal(
                    self.cluster.node_storage_dir(node_id), self._rng
                )
                for note in damage:
                    self._log(f"scramble {node_id}: {note}")
            else:
                self._log(
                    f"scramble {node_id}: no storage_dir — journal "
                    "corruption skipped"
                )
        self._log(f"scrambled {sorted(victims)}")
        self._victims[id(action)] = list(victims)

    async def _unscramble(self, action: ScrambleState) -> None:
        victims = self._victims.get(id(action), [])
        recovered: List[int] = []
        for node_id in victims:
            node = self.cluster.nodes.get(node_id)
            if node is None or not node.crashed:
                continue
            replacement = await self.cluster.respawn_node(node_id)
            replacement.start()
            self.stats.recoveries += 1
            recovered.append(node_id)
        self._log(f"scrambled nodes {sorted(recovered)} respawned")

    def _log(self, message: str) -> None:
        loop = asyncio.get_running_loop()
        self.log.append((loop.time() - self._started_at, message))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AsyncFaultInjector(actions={len(self.schedule)}, "
            f"applied={len(self.log)})"
        )
