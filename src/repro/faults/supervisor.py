"""Self-healing runtime: supervised restart of crashed asyncio nodes.

:class:`NodeSupervisor` watches every node of an
:class:`~repro.runtime.cluster.AsyncCluster` and resurrects the ones
that die — whether killed by fault injection
(:meth:`AsyncEpToNode.crash`) or by their own round task raising (the
node's done-callback flags the corpse). Restarts use exponential
backoff with a cap, the classic supervision discipline: a process that
keeps dying right after restart gets geometrically rarer retries, and
one that stays healthy long enough earns its backoff reset. A node
that exhausts ``max_restarts`` consecutive attempts is abandoned
(counted, never retried) so a deterministic crash loop cannot spin the
supervisor forever.

A restarted node is a *fresh EpTO process under the same identity*
(:meth:`AsyncCluster.respawn_node`): it keeps its id, resumes its
broadcast sequence so event ids stay unique, re-registers with the
network fabric and the PSS directory, and from then on delivers new
events in the same total order as everyone else — the
recovery-after-transient-fault behaviour that motivates
self-stabilizing total-order broadcast (Lundström et al., 2022).

On a cluster provisioned with ``storage_dir``, a supervised restart
additionally recovers the node's durable state from disk (snapshot +
delivery-log replay, :mod:`repro.storage`) rather than starting blank,
and the optional ``adapt`` hook lets each restart come up under
Lemma 7 parameters recomputed for the churn and loss actually observed
(:func:`repro.faults.adaptive.supervisor_adaptation`).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set

from ..core.config import EpToConfig
from ..runtime.cluster import AsyncCluster
from ..runtime.node import AsyncEpToNode


@dataclass(slots=True)
class SupervisorStats:
    """What the supervisor observed and did."""

    detected: int = 0
    restarted: int = 0
    abandoned: int = 0
    #: node id -> consecutive restart count (diagnostic snapshot).
    attempts: Dict[int, int] = field(default_factory=dict)


class NodeSupervisor:
    """Detects crashed cluster nodes and restarts them with backoff.

    Args:
        cluster: The supervised cluster.
        poll_interval: Seconds between corpse scans.
        base_delay: First restart delay in seconds.
        backoff_factor: Multiplier per consecutive restart of the same
            node.
        max_delay: Backoff ceiling in seconds.
        max_restarts: Consecutive restarts of one node before it is
            abandoned.
        healthy_after: Seconds a node must stay up for its backoff to
            reset.
        on_restart: Optional callback ``(node_id, attempt)`` invoked
            after each successful restart.
        adapt: Optional Lemma 7 feedback hook: called with the cluster
            right before each respawn, returns the
            :class:`~repro.core.config.EpToConfig` the replacement
            starts under (see
            :func:`repro.faults.adaptive.supervisor_adaptation`).
            ``None`` restarts nodes under the cluster-wide config.
    """

    def __init__(
        self,
        cluster: AsyncCluster,
        poll_interval: float = 0.02,
        base_delay: float = 0.05,
        backoff_factor: float = 2.0,
        max_delay: float = 2.0,
        max_restarts: int = 8,
        healthy_after: float = 5.0,
        on_restart: Callable[[int, int], None] | None = None,
        adapt: Callable[[AsyncCluster], "EpToConfig"] | None = None,
    ) -> None:
        self.cluster = cluster
        self.poll_interval = poll_interval
        self.base_delay = base_delay
        self.backoff_factor = backoff_factor
        self.max_delay = max_delay
        self.max_restarts = max_restarts
        self.healthy_after = healthy_after
        self.stats = SupervisorStats()
        self._on_restart = on_restart
        self._adapt = adapt
        #: node id -> config each adapted restart used (diagnostics).
        self.adapted_configs: Dict[int, EpToConfig] = {}
        self._task: Optional[asyncio.Task] = None
        self._restart_tasks: Dict[int, asyncio.Task] = {}
        self._last_restart: Dict[int, float] = {}
        self._abandoned: Set[int] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin watching the cluster."""
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(self._monitor())

    async def stop(self) -> None:
        """Stop watching; pending restarts are cancelled."""
        tasks = [self._task, *self._restart_tasks.values()]
        self._task = None
        self._restart_tasks = {}
        for task in tasks:
            if task is not None:
                task.cancel()
        for task in tasks:
            if task is not None:
                try:
                    await task
                except asyncio.CancelledError:
                    pass

    @property
    def running(self) -> bool:
        """Whether the monitor loop is active."""
        return self._task is not None and not self._task.done()

    def backoff_delay(self, node_id: int) -> float:
        """Restart delay the next resurrection of *node_id* will use."""
        attempts = self.stats.attempts.get(node_id, 0)
        return min(self.max_delay, self.base_delay * self.backoff_factor**attempts)

    def is_abandoned(self, node_id: int) -> bool:
        """Whether *node_id* exhausted its restart budget."""
        return node_id in self._abandoned

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    async def _monitor(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.poll_interval)
            for node_id, node in list(self.cluster.nodes.items()):
                if not node.crashed:
                    continue
                if node_id in self._restart_tasks or node_id in self._abandoned:
                    continue
                self.stats.detected += 1
                # A node that stayed healthy long enough earns a clean
                # slate; one crashing right after restart backs off.
                last = self._last_restart.get(node_id)
                if last is not None and loop.time() - last > self.healthy_after:
                    self.stats.attempts[node_id] = 0
                if self.stats.attempts.get(node_id, 0) >= self.max_restarts:
                    self._abandoned.add(node_id)
                    self.stats.abandoned += 1
                    continue
                self._restart_tasks[node_id] = loop.create_task(
                    self._restart(node_id)
                )

    async def _restart(self, node_id: int) -> None:
        try:
            await asyncio.sleep(self.backoff_delay(node_id))
            node = self.cluster.nodes.get(node_id)
            if node is None or not node.crashed:
                return  # removed, or somebody else revived it
            config: Optional[EpToConfig] = None
            if self._adapt is not None:
                config = self._adapt(self.cluster)
                self.adapted_configs[node_id] = config
            replacement: AsyncEpToNode = await self.cluster.respawn_node(
                node_id, config=config
            )
            replacement.start()
            attempt = self.stats.attempts.get(node_id, 0) + 1
            self.stats.attempts[node_id] = attempt
            self.stats.restarted += 1
            self._last_restart[node_id] = asyncio.get_running_loop().time()
            if self._on_restart is not None:
                self._on_restart(node_id, attempt)
        finally:
            self._restart_tasks.pop(node_id, None)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NodeSupervisor(running={self.running}, "
            f"restarted={self.stats.restarted}, "
            f"abandoned={len(self._abandoned)})"
        )
