"""Declarative fault schedules, portable across runtimes.

A :class:`FaultSchedule` is a runtime-agnostic description of *what
goes wrong when*: crashes (with optional recovery), network partitions
(with optional healing), loss bursts, latency spikes and datagram
corruption windows. Times are expressed in **rounds** — multiples of
the deployment's EpTO round interval ``delta`` — so the very same
scenario drives the discrete-event simulator (where a round is
``round_interval`` ticks, via
:class:`repro.faults.sim_injector.SimFaultInjector`) and the asyncio
runtime (where it is ``round_interval`` milliseconds, via
:class:`repro.faults.runtime_injector.AsyncFaultInjector`).

Schedules are plain data: build them programmatically, or load them
from dicts/JSON (:meth:`FaultSchedule.from_dict` /
:meth:`FaultSchedule.from_json`) so scenario files can live next to
experiment configurations. Validation happens eagerly at construction
(:class:`repro.core.errors.FaultInjectionError`), never mid-run.

The motivation is the paper's central claim — deterministic safety
under probabilistic, failure-prone dissemination — plus the
recovery-after-transient-fault concern of self-stabilizing total-order
broadcast (Lundström et al., 2022) and tolerance of corrupted (not
just dropped) payloads (Malkhi et al., *On Diffusing Updates in a
Byzantine Environment*).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Any, ClassVar, Dict, Iterable, List, Optional, Tuple, Union

from ..core.errors import FaultInjectionError


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise FaultInjectionError(message)


@dataclass(frozen=True, slots=True)
class CrashNodes:
    """Kill processes abruptly at ``at_round``.

    Exactly one of *fraction* (of the then-current live population,
    sampled uniformly by the interpreter) or *nodes* (explicit ids)
    must be given. With *recover_after*, the interpreter brings
    replacements back ``recover_after`` rounds later — the same ids
    restarted in the asyncio runtime, fresh joiners in the simulator
    (whose cluster assigns ids monotonically, matching the paper's
    churn model).
    """

    at_round: float
    fraction: Optional[float] = None
    nodes: Optional[Tuple[int, ...]] = None
    recover_after: Optional[float] = None

    kind: ClassVar[str] = "crash"

    def __post_init__(self) -> None:
        _require(self.at_round >= 0, f"at_round must be >= 0, got {self.at_round}")
        _require(
            (self.fraction is None) != (self.nodes is None),
            "crash needs exactly one of fraction= or nodes=",
        )
        if self.fraction is not None:
            _require(
                0.0 < self.fraction <= 1.0,
                f"crash fraction must be in (0, 1], got {self.fraction}",
            )
        if self.nodes is not None:
            object.__setattr__(self, "nodes", tuple(self.nodes))
            _require(len(self.nodes) > 0, "crash nodes= must not be empty")
        if self.recover_after is not None:
            _require(
                self.recover_after > 0,
                f"recover_after must be > 0 rounds, got {self.recover_after}",
            )


@dataclass(frozen=True, slots=True)
class PartitionNetwork:
    """Split the network into two groups at ``at_round``.

    Either *groups* maps node ids to explicit group labels, or
    *fraction* of the live population (interpreter-sampled) is moved to
    a minority group. With *heal_after*, connectivity is restored that
    many rounds later.
    """

    at_round: float
    fraction: Optional[float] = 0.5
    groups: Optional[Dict[int, Any]] = None
    heal_after: Optional[float] = None

    kind: ClassVar[str] = "partition"

    def __post_init__(self) -> None:
        _require(self.at_round >= 0, f"at_round must be >= 0, got {self.at_round}")
        if self.groups is not None:
            object.__setattr__(self, "fraction", None)
            _require(len(self.groups) > 0, "partition groups= must not be empty")
        else:
            _require(
                self.fraction is not None and 0.0 < self.fraction < 1.0,
                f"partition fraction must be in (0, 1), got {self.fraction}",
            )
        if self.heal_after is not None:
            _require(
                self.heal_after > 0,
                f"heal_after must be > 0 rounds, got {self.heal_after}",
            )


@dataclass(frozen=True, slots=True)
class HealPartition:
    """Restore full connectivity at ``at_round``."""

    at_round: float

    kind: ClassVar[str] = "heal"

    def __post_init__(self) -> None:
        _require(self.at_round >= 0, f"at_round must be >= 0, got {self.at_round}")


@dataclass(frozen=True, slots=True)
class LossBurst:
    """Raise the message loss probability to *rate* for *duration* rounds."""

    at_round: float
    rate: float
    duration: float

    kind: ClassVar[str] = "loss_burst"

    def __post_init__(self) -> None:
        _require(self.at_round >= 0, f"at_round must be >= 0, got {self.at_round}")
        _require(0.0 < self.rate <= 1.0, f"loss rate must be in (0, 1], got {self.rate}")
        _require(self.duration > 0, f"duration must be > 0 rounds, got {self.duration}")


@dataclass(frozen=True, slots=True)
class LatencySpike:
    """Multiply the mean network latency by *factor* for *duration* rounds."""

    at_round: float
    factor: float
    duration: float

    kind: ClassVar[str] = "latency_spike"

    def __post_init__(self) -> None:
        _require(self.at_round >= 0, f"at_round must be >= 0, got {self.at_round}")
        _require(self.factor > 1.0, f"spike factor must be > 1, got {self.factor}")
        _require(self.duration > 0, f"duration must be > 0 rounds, got {self.duration}")


@dataclass(frozen=True, slots=True)
class CorruptDatagrams:
    """Corrupt in-transit messages with probability *rate* for
    *duration* rounds.

    On the UDP fabric this mangles real datagram bytes, exercising the
    receiver's codec defence (``UdpStats.dropped_malformed``). Fabrics
    without a wire format (the simulator, the in-memory asyncio fabric)
    degrade it to an equivalent loss burst — a corrupted message can
    never be parsed, so to the application the two are
    indistinguishable; interpreters record the approximation in their
    log.
    """

    at_round: float
    rate: float
    duration: float

    kind: ClassVar[str] = "corrupt"

    def __post_init__(self) -> None:
        _require(self.at_round >= 0, f"at_round must be >= 0, got {self.at_round}")
        _require(
            0.0 < self.rate <= 1.0, f"corrupt rate must be in (0, 1], got {self.rate}"
        )
        _require(self.duration > 0, f"duration must be > 0 rounds, got {self.duration}")


#: Hostile relay behaviors a :class:`ByzantineNodes` action can turn on
#: (interpreted by :class:`repro.faults.byzantine.ByzantineRouter`):
#:
#: * ``equivocate`` — relay the same ``(source, seq)`` with divergent
#:   payloads to different destinations;
#: * ``garble_relay`` — mutate relayed entries (payload garbage plus a
#:   timestamp shift, diverging the order key);
#: * ``ttl_inflate`` — resurrect entries that already left the TTL
#:   window by re-relaying them with a rewound TTL;
#: * ``replay`` — re-send previously relayed entries verbatim.
BYZANTINE_BEHAVIORS = ("equivocate", "garble_relay", "ttl_inflate", "replay")


@dataclass(frozen=True, slots=True)
class ByzantineNodes:
    """Turn explicit nodes hostile at ``at_round``.

    The nodes keep running the protocol but their *relayed* balls pass
    through the hostile *behavior* (one of
    :data:`BYZANTINE_BEHAVIORS`). With *duration*, the behavior is
    switched off that many rounds later (a transiently compromised
    node); without it, the nodes stay hostile for the rest of the run.
    *rate* is the per-send probability that the transform fires, so a
    stealthy adversary (low rate) and a firehose (1.0) use one action.
    """

    at_round: float
    behavior: str
    nodes: Tuple[int, ...] = ()
    rate: float = 1.0
    duration: Optional[float] = None

    kind: ClassVar[str] = "byzantine"

    def __post_init__(self) -> None:
        _require(self.at_round >= 0, f"at_round must be >= 0, got {self.at_round}")
        _require(
            self.behavior in BYZANTINE_BEHAVIORS,
            f"behavior must be one of {BYZANTINE_BEHAVIORS}, got {self.behavior!r}",
        )
        object.__setattr__(self, "nodes", tuple(self.nodes))
        _require(len(self.nodes) > 0, "byzantine nodes= must not be empty")
        _require(
            0.0 < self.rate <= 1.0,
            f"byzantine rate must be in (0, 1], got {self.rate}",
        )
        if self.duration is not None:
            _require(
                self.duration > 0,
                f"duration must be > 0 rounds, got {self.duration}",
            )


@dataclass(frozen=True, slots=True)
class ScrambleState:
    """Corrupt a node's entire state at ``at_round`` — the
    self-stabilization drill (Lundström et al.).

    The interpreter sprays a ball of fabricated events from the victim
    (*garbage_events* forged under other nodes' identities — clock and
    ordering-state corruption made observable), crashes it, corrupts
    its on-disk journal (bit flips plus a torn tail), and restarts it
    ``recover_after`` rounds later. The restarted node recovers from
    whatever survives of its journal and must re-converge with the
    correct nodes — bit-identically when anti-entropy is on.
    """

    at_round: float
    nodes: Tuple[int, ...] = ()
    recover_after: float = 6.0
    garbage_events: int = 3

    kind: ClassVar[str] = "scramble"

    def __post_init__(self) -> None:
        _require(self.at_round >= 0, f"at_round must be >= 0, got {self.at_round}")
        object.__setattr__(self, "nodes", tuple(self.nodes))
        _require(len(self.nodes) > 0, "scramble nodes= must not be empty")
        _require(
            self.recover_after > 0,
            f"recover_after must be > 0 rounds, got {self.recover_after}",
        )
        _require(
            self.garbage_events >= 0,
            f"garbage_events must be >= 0, got {self.garbage_events}",
        )


#: Every concrete action type.
FaultAction = Union[
    CrashNodes,
    PartitionNetwork,
    HealPartition,
    LossBurst,
    LatencySpike,
    CorruptDatagrams,
    ByzantineNodes,
    ScrambleState,
]

_ACTION_TYPES: Dict[str, type] = {
    cls.kind: cls
    for cls in (
        CrashNodes,
        PartitionNetwork,
        HealPartition,
        LossBurst,
        LatencySpike,
        CorruptDatagrams,
        ByzantineNodes,
        ScrambleState,
    )
}


class FaultSchedule:
    """An ordered list of fault actions over one run.

    Args:
        actions: Fault actions in any order; stored sorted by
            ``at_round`` (ties keep the given order).
    """

    def __init__(self, actions: Iterable[FaultAction]) -> None:
        actions = list(actions)
        for action in actions:
            _require(
                type(action) in _ACTION_TYPES.values(),
                f"not a fault action: {action!r}",
            )
        self.actions: Tuple[FaultAction, ...] = tuple(
            sorted(actions, key=lambda a: a.at_round)
        )

    def __len__(self) -> int:
        return len(self.actions)

    def __iter__(self):
        return iter(self.actions)

    @property
    def horizon_rounds(self) -> float:
        """Last round at which the schedule still has an effect pending
        (including recoveries, heals and window ends). Size runs past
        this so every action lands and the system can quiesce after."""
        horizon = 0.0
        for action in self.actions:
            end = action.at_round
            tail = (
                getattr(action, "recover_after", None)
                or getattr(action, "heal_after", None)
                or getattr(action, "duration", None)
            )
            if tail is not None:
                end += tail
            horizon = max(horizon, end)
        return horizon

    # ------------------------------------------------------------------
    # (De)serialization — scenario files
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form, JSON-ready."""
        serialized: List[Dict[str, Any]] = []
        for action in self.actions:
            entry: Dict[str, Any] = {"kind": action.kind}
            for spec in fields(action):
                value = getattr(action, spec.name)
                if value is None:
                    continue
                if spec.name == "nodes":
                    value = list(value)
                entry[spec.name] = value
            serialized.append(entry)
        return {"actions": serialized}

    def to_json(self, **dumps_kwargs: Any) -> str:
        """JSON scenario-file form."""
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSchedule":
        """Parse a scenario mapping (see :meth:`to_dict` for the shape).

        Raises:
            FaultInjectionError: On unknown kinds, unknown fields, or
                out-of-range values. Every message names the offending
                action's index (and kind, once known), so a typo in a
                hand-edited scenario JSON points straight at the entry.
        """
        _require(isinstance(data, dict), f"scenario must be a mapping, got {type(data)}")
        raw_actions = data.get("actions")
        _require(
            isinstance(raw_actions, list),
            "scenario must have an 'actions' list",
        )
        actions: List[FaultAction] = []
        for index, raw in enumerate(raw_actions):
            _require(
                isinstance(raw, dict),
                f"action #{index} must be a mapping, got {raw!r}",
            )
            kind = raw.get("kind")
            action_type = _ACTION_TYPES.get(kind)
            _require(
                action_type is not None,
                f"action #{index}: unknown fault kind {kind!r} "
                f"(known: {sorted(_ACTION_TYPES)})",
            )
            kwargs = {k: v for k, v in raw.items() if k != "kind"}
            known = {spec.name for spec in fields(action_type)}
            unknown = set(kwargs) - known
            _require(
                not unknown,
                f"action #{index} ({kind!r}): unknown fields {sorted(unknown)}",
            )
            if "nodes" in kwargs and kwargs["nodes"] is not None:
                kwargs["nodes"] = tuple(kwargs["nodes"])
            try:
                actions.append(action_type(**kwargs))
            except TypeError as exc:
                raise FaultInjectionError(
                    f"action #{index} ({kind!r}): {exc}"
                ) from exc
            except FaultInjectionError as exc:
                raise FaultInjectionError(
                    f"action #{index} ({kind!r}): {exc}"
                ) from exc
        return cls(actions)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        """Parse a JSON scenario file's contents."""
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise FaultInjectionError(f"scenario is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # Canned scenarios
    # ------------------------------------------------------------------

    @classmethod
    def standard_drill(
        cls,
        crash_fraction: float = 0.2,
        crash_at: float = 4.0,
        recover_after: float = 12.0,
        partition_at: float = 8.0,
        heal_after: float = 6.0,
        loss_burst_at: float = 18.0,
        loss_burst_rate: float = 0.3,
        loss_burst_duration: float = 3.0,
    ) -> "FaultSchedule":
        """The reference drill: crash a fifth of the cluster, split the
        network and heal it, recover the crashed processes, and throw
        in a loss burst — the scenario every runtime must survive with
        total order intact on the survivors."""
        return cls(
            [
                CrashNodes(
                    at_round=crash_at,
                    fraction=crash_fraction,
                    recover_after=recover_after,
                ),
                PartitionNetwork(
                    at_round=partition_at, fraction=0.5, heal_after=heal_after
                ),
                LossBurst(
                    at_round=loss_burst_at,
                    rate=loss_burst_rate,
                    duration=loss_burst_duration,
                ),
            ]
        )

    @classmethod
    def long_outage(
        cls,
        nodes: Tuple[int, ...] = (1,),
        crash_at: float = 4.0,
        outage_rounds: float = 40.0,
    ) -> "FaultSchedule":
        """One node down far longer than the TTL window.

        Every event broadcast during the outage finishes its epidemic
        dissemination (TTL + stability wait, ~13 rounds at drill scale)
        while the node is dead, so on recovery nothing in the live
        traffic can ever fill the gap: without anti-entropy
        (docs/SYNC.md) the node has *permanently* diverged from the
        survivors; with ``--sync`` it must converge bit-identically.
        Mirrors ``scenarios/long_outage.json``.
        """
        return cls(
            [
                CrashNodes(
                    at_round=crash_at,
                    nodes=nodes,
                    recover_after=outage_rounds,
                )
            ]
        )

    @classmethod
    def byzantine_drill(
        cls,
        hostile: Tuple[int, ...] = (1, 2),
        start_at: float = 3.0,
        duration: float = 14.0,
    ) -> "FaultSchedule":
        """Two compromised relays cycling through every hostile
        behavior: equivocation and garbled relays (MAC-breaking — with
        auth the correct nodes must deliver zero of them), plus replay
        and TTL inflation (valid MACs — the ordering layer's dedupe
        must absorb them). Mirrors ``scenarios/byzantine_drill.json``.
        """
        return cls(
            [
                ByzantineNodes(
                    at_round=start_at,
                    behavior="equivocate",
                    nodes=hostile,
                    duration=duration,
                ),
                ByzantineNodes(
                    at_round=start_at + 2.0,
                    behavior="garble_relay",
                    nodes=hostile,
                    rate=0.5,
                    duration=duration - 2.0,
                ),
                ByzantineNodes(
                    at_round=start_at + 4.0,
                    behavior="replay",
                    nodes=hostile,
                    rate=0.5,
                    duration=duration - 4.0,
                ),
                ByzantineNodes(
                    at_round=start_at + 6.0,
                    behavior="ttl_inflate",
                    nodes=hostile,
                    rate=0.5,
                    duration=duration - 6.0,
                ),
            ]
        )

    @classmethod
    def self_stab(
        cls,
        nodes: Tuple[int, ...] = (1,),
        scramble_at: float = 6.0,
        recover_after: float = 8.0,
        garbage_events: int = 3,
    ) -> "FaultSchedule":
        """The self-stabilization drill: scramble a node's state to an
        arbitrary corrupted configuration (sprayed forged events,
        crash, journal corruption) and require it to re-converge with
        the correct nodes after restart. Mirrors
        ``scenarios/self_stab.json``."""
        return cls(
            [
                ScrambleState(
                    at_round=scramble_at,
                    nodes=nodes,
                    recover_after=recover_after,
                    garbage_events=garbage_events,
                )
            ]
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kinds = ", ".join(a.kind for a in self.actions)
        return f"FaultSchedule([{kinds}], horizon={self.horizon_rounds})"
