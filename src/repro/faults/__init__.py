"""Unified fault injection and self-healing (robustness layer).

One declarative :class:`~repro.faults.schedule.FaultSchedule` — crash
and recover, partition and heal, loss bursts, latency spikes, datagram
corruption — with two interpreters, so the exact same scenario runs
against the discrete-event simulator
(:class:`~repro.faults.sim_injector.SimFaultInjector`) and the asyncio
runtime (:class:`~repro.faults.runtime_injector.AsyncFaultInjector`).
Self-healing comes from
:class:`~repro.faults.supervisor.NodeSupervisor` (backoff restarts of
crashed nodes), post-mortems from
:func:`~repro.faults.verify.check_survivors`, and parameter feedback
from the Lemma 7 helpers in :mod:`repro.faults.adaptive`.
"""

from .adaptive import (
    MAX_RATE,
    ObservedConditions,
    adapt_config,
    lemma7_parameters,
    supervisor_adaptation,
)
from .byzantine import ByzantineRouter, ByzantineStats, scramble_journal
from .runtime_injector import AsyncFaultInjector
from .schedule import (
    BYZANTINE_BEHAVIORS,
    ByzantineNodes,
    CorruptDatagrams,
    CrashNodes,
    FaultAction,
    FaultSchedule,
    HealPartition,
    LatencySpike,
    LossBurst,
    PartitionNetwork,
    ScrambleState,
)
from .sim_injector import FaultStats, SimFaultInjector
from .supervisor import NodeSupervisor, SupervisorStats
from .verify import SurvivorReport, check_survivors

__all__ = [
    "AsyncFaultInjector",
    "BYZANTINE_BEHAVIORS",
    "ByzantineNodes",
    "ByzantineRouter",
    "ByzantineStats",
    "CorruptDatagrams",
    "CrashNodes",
    "FaultAction",
    "FaultSchedule",
    "FaultStats",
    "HealPartition",
    "LatencySpike",
    "LossBurst",
    "MAX_RATE",
    "NodeSupervisor",
    "ObservedConditions",
    "PartitionNetwork",
    "ScrambleState",
    "SimFaultInjector",
    "SupervisorStats",
    "SurvivorReport",
    "adapt_config",
    "check_survivors",
    "lemma7_parameters",
    "scramble_journal",
    "supervisor_adaptation",
]
