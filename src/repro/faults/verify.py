"""Post-scenario assertions: total order and agreement on survivors.

After a fault drill the interesting question is not "did anything
happen" but "did the Table 1 guarantees hold for the processes that
lived to tell": :func:`check_survivors` validates the delivery journal
an :class:`~repro.runtime.cluster.AsyncCluster` keeps (sequences of
:class:`~repro.core.event.Event`) against

* **total order** — every survivor's delivery sequence is strictly
  increasing in the deterministic order key ``(ts, src, seq)``, which
  makes any two survivor sequences automatically consistent on common
  events (two strictly increasing sequences over one key space cannot
  order a shared pair differently);
* **agreement** — every event delivered by any continuous survivor was
  delivered by all of them (evaluate after quiescence);
* **recovered nodes** — a node resurrected mid-run is checked on its
  post-restart suffix only: the suffix must itself be in order and
  must not conflict pairwise with a reference survivor (paper
  Figure 1b), but agreement is not required for events that flew while
  the node was dead.

For simulator runs prefer :func:`repro.metrics.checker.check_run` on
the :class:`~repro.metrics.collector.DeliveryCollector`, which also
validates integrity and validity; this module covers the asyncio
runtime, whose journal lives on the cluster rather than a collector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set

from ..core.event import Event, EventId
from ..metrics.checker import check_pairwise_order
from ..metrics.collector import event_fingerprint


@dataclass(slots=True)
class SurvivorReport:
    """Verdict of one post-scenario check.

    ``forged_deliveries`` and ``equivocation_violations`` are only
    populated when :func:`check_survivors` is given the run's
    *broadcasts* — content checks need the genuine events to compare
    against.
    """

    order_violations: List[str] = field(default_factory=list)
    agreement_violations: List[str] = field(default_factory=list)
    forged_deliveries: List[str] = field(default_factory=list)
    equivocation_violations: List[str] = field(default_factory=list)
    checked_nodes: int = 0
    checked_events: int = 0

    @property
    def ok(self) -> bool:
        """Total order, agreement and authenticity held on the survivors."""
        return not (
            self.order_violations
            or self.agreement_violations
            or self.forged_deliveries
            or self.equivocation_violations
        )

    def summary(self) -> str:
        """One-line human-readable verdict."""
        status = "OK" if self.ok else "VIOLATED"
        return (
            f"survivors={status} order_violations={len(self.order_violations)} "
            f"agreement_violations={len(self.agreement_violations)} "
            f"forged={len(self.forged_deliveries)} "
            f"equivocated={len(self.equivocation_violations)} "
            f"nodes={self.checked_nodes} events={self.checked_events}"
        )


def _strictly_increasing(
    node_id: int, events: Sequence[Event], label: str
) -> List[str]:
    violations: List[str] = []
    keys = [event.order_key for event in events]
    for earlier, later in zip(keys, keys[1:]):
        if earlier >= later:
            violations.append(
                f"node {node_id} ({label}) delivered {later} after {earlier} "
                f"(non-increasing order keys)"
            )
    return violations


def check_survivors(
    deliveries: Mapping[int, Sequence[Event]],
    survivors: Iterable[int],
    recovered: Iterable[int] = (),
    restart_indices: Mapping[int, Sequence[int]] | None = None,
    byzantine: Iterable[int] = (),
    broadcasts: Optional[Mapping[EventId, Event]] = None,
) -> SurvivorReport:
    """Validate a fault scenario's outcome on the processes that survived.

    Args:
        deliveries: Per-node delivered events in delivery order (the
            :attr:`AsyncCluster.deliveries` journal, or any equivalent).
        survivors: Nodes that were continuously alive; checked for
            total order over their whole journal and for mutual
            agreement.
        recovered: Nodes that crashed and were resurrected under the
            same id; checked on their post-restart suffix for order
            (including pairwise consistency against a survivor), but
            exempt from agreement.
        restart_indices: Per-node journal indices where each respawn
            began (:attr:`AsyncCluster.restart_indices`); a recovered
            node's suffix starts at its last restart index (0 when
            absent).
        byzantine: Hostile nodes — removed from *survivors* and
            *recovered* before checking; their journals carry no
            guarantees and must not pollute the agreement union.
        broadcasts: Genuine events by id, as broadcast by their
            sources. When given, every correct-node delivery is also
            content-checked: an event whose canonical bytes differ from
            the genuine broadcast (or whose id was never broadcast) is
            a forged delivery, and an id delivered with two or more
            distinct contents across correct nodes is an equivocation
            violation.

    Returns:
        A :class:`SurvivorReport`; assert on ``report.ok``.
    """
    hostile = set(byzantine)
    survivors = sorted(set(survivors) - hostile)
    recovered = sorted(set(recovered) - set(survivors) - hostile)
    restart_indices = restart_indices or {}
    report = SurvivorReport(checked_nodes=len(survivors) + len(recovered))

    # Total order, survivors: whole journal strictly increasing.
    for node_id in survivors:
        report.order_violations.extend(
            _strictly_increasing(node_id, deliveries.get(node_id, ()), "survivor")
        )

    # Agreement, survivors: identical delivered-id sets.
    delivered_ids: Dict[int, Set] = {
        node_id: {event.id for event in deliveries.get(node_id, ())}
        for node_id in survivors
    }
    union: Set = set()
    for ids in delivered_ids.values():
        union |= ids
    report.checked_events = len(union)
    for node_id in survivors:
        missing = union - delivered_ids[node_id]
        for event_id in sorted(missing):
            report.agreement_violations.append(
                f"survivor {node_id} never delivered event {event_id} "
                f"(delivered elsewhere)"
            )

    # Recovered nodes: post-restart suffix in order and consistent with
    # a reference survivor.
    reference = survivors[0] if survivors else None
    reference_keys = (
        [event.order_key for event in deliveries.get(reference, ())]
        if reference is not None
        else []
    )
    for node_id in recovered:
        starts = restart_indices.get(node_id, ())
        start = starts[-1] if starts else 0
        suffix = list(deliveries.get(node_id, ()))[start:]
        report.order_violations.extend(
            _strictly_increasing(node_id, suffix, "recovered suffix")
        )
        if reference is not None:
            conflicts = check_pairwise_order(
                reference_keys, [event.order_key for event in suffix]
            )
            for low, high in conflicts:
                report.order_violations.append(
                    f"recovered node {node_id} orders {low}/{high} against "
                    f"survivor {reference}"
                )

    # Authenticity: delivered content matches the genuine broadcasts.
    if broadcasts is not None:
        genuine = {
            event_id: event_fingerprint(event)
            for event_id, event in broadcasts.items()
        }
        sightings: Dict[EventId, Set[int]] = {}
        for node_id in survivors + recovered:
            for event in deliveries.get(node_id, ()):
                fingerprint = event_fingerprint(event)
                expected = genuine.get(event.id)
                if expected is None:
                    report.forged_deliveries.append(
                        f"node {node_id} delivered never-broadcast event "
                        f"{event.id}"
                    )
                elif fingerprint != expected:
                    report.forged_deliveries.append(
                        f"node {node_id} delivered forged content for event "
                        f"{event.id}"
                    )
                sightings.setdefault(event.id, set()).add(fingerprint)
        for event_id, fingerprints in sorted(sightings.items()):
            if len(fingerprints) > 1:
                report.equivocation_violations.append(
                    f"event {event_id} delivered with {len(fingerprints)} "
                    f"distinct contents across correct nodes"
                )
    return report
