"""Adaptive parameters: recompute K/TTL from observed churn and loss.

The paper's Lemma 7 inflates the fanout by ``(n / (n - alpha)) /
(1 - eps)`` for churn ``alpha`` processes per round and loss rate
``eps`` — but a deployment rarely *knows* its churn and loss a priori.
This module closes the loop: measure the run you actually had
(:meth:`ObservedConditions.from_run` reads the network and churn
counters every substrate already keeps), then re-derive the Theorem 2 /
Lemma 7 parameters for the conditions observed
(:func:`lemma7_parameters`, :func:`adapt_config`). Operators — or a
supervisor acting on their behalf — can roll the adapted config out on
the next restart, turning the static bounds into a feedback loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..core.config import EpToConfig
from ..core.errors import ConfigurationError
from ..core.params import DEFAULT_C, DerivedParameters, derive_parameters

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..runtime.cluster import AsyncCluster

#: Observed rates are clamped below this before entering the Lemma 7
#: formulas, which diverge as churn or loss approach 1. A measured rate
#: this high means the system is effectively unusable and no parameter
#: choice will save it; the clamp keeps the helper total so monitoring
#: pipelines never crash on a catastrophic sample.
MAX_RATE = 0.9


@dataclass(frozen=True, slots=True)
class ObservedConditions:
    """Churn and loss as actually measured over a run (or window).

    Attributes:
        population: System size ``n`` the measurement applies to.
        churn_rate: Fraction of the population replaced per round
            (``alpha / n``).
        loss_rate: Fraction of sent messages lost (``epsilon``); count
            loss bursts in if you want parameters that survive them.
        rounds: Rounds the window spanned (0 = unknown; informational).
    """

    population: int
    churn_rate: float
    loss_rate: float
    rounds: int = 0

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ConfigurationError(
                f"population must be >= 2, got {self.population}"
            )
        for name in ("churn_rate", "loss_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")

    @classmethod
    def from_run(
        cls,
        population: int,
        rounds: int,
        network_stats: object | None = None,
        churn_stats: object | None = None,
        include_bursts: bool = True,
    ) -> "ObservedConditions":
        """Build from the counters the substrates keep.

        Args:
            population: Current (or average) system size.
            rounds: Rounds the counters cover; must be >= 1 when
                *churn_stats* is given.
            network_stats: Any stats object with ``sent`` and
                ``dropped_loss`` (``NetworkStats``, ``AsyncNetworkStats``
                or ``UdpStats``); ``dropped_burst`` is added when
                *include_bursts* and the field exists.
            churn_stats: Any stats object with ``removed`` (e.g.
                :class:`repro.sim.churn.ChurnStats` or
                :class:`repro.faults.sim_injector.FaultStats` via its
                ``crashes`` field).
        """
        loss = 0.0
        if network_stats is not None:
            sent = getattr(network_stats, "sent", 0)
            if sent > 0:
                lost = getattr(network_stats, "dropped_loss", 0)
                if include_bursts:
                    lost += getattr(network_stats, "dropped_burst", 0)
                loss = lost / sent
        churn = 0.0
        if churn_stats is not None:
            if rounds < 1:
                raise ConfigurationError(
                    "rounds must be >= 1 to derive a churn rate"
                )
            removed = getattr(churn_stats, "removed", None)
            if removed is None:
                removed = getattr(churn_stats, "crashes", 0)
            churn = removed / (rounds * population)
        return cls(
            population=population,
            churn_rate=min(churn, MAX_RATE),
            loss_rate=min(loss, MAX_RATE),
            rounds=rounds,
        )


def lemma7_parameters(
    observed: ObservedConditions,
    c: float = DEFAULT_C,
    clock: str = "logical",
    drift_ratio: float = 1.0,
    latency_bounded_by_round: bool = False,
) -> DerivedParameters:
    """Theorem 2 / Lemma 7 parameters for the *observed* conditions.

    A thin, intention-revealing wrapper over
    :func:`repro.core.params.derive_parameters` that feeds it measured
    churn ``alpha/n`` and loss ``epsilon`` instead of guesses.
    """
    return derive_parameters(
        n=observed.population,
        c=c,
        clock=clock,
        churn_rate=min(observed.churn_rate, MAX_RATE),
        loss_rate=min(observed.loss_rate, MAX_RATE),
        drift_ratio=drift_ratio,
        latency_bounded_by_round=latency_bounded_by_round,
    )


def adapt_config(
    config: EpToConfig,
    observed: ObservedConditions,
    c: float = DEFAULT_C,
    drift_ratio: float = 1.0,
    latency_bounded_by_round: bool = False,
) -> EpToConfig:
    """Return *config* with fanout/TTL recomputed for *observed*.

    Fanout and TTL only ever ratchet **up** relative to *config* — the
    operator's configured values are treated as the floor, so adapting
    to a benign window never weakens a deliberately conservative
    deployment. Everything else (round interval, clock, extensions) is
    preserved.
    """
    derived = lemma7_parameters(
        observed,
        c=c,
        clock=config.clock,
        drift_ratio=drift_ratio,
        latency_bounded_by_round=latency_bounded_by_round,
    )
    return config.with_overrides(
        fanout=max(config.fanout, derived.fanout),
        ttl=max(config.ttl, derived.ttl),
    )


@dataclass(slots=True)
class _CrashTally:
    """Duck-typed churn_stats for :meth:`ObservedConditions.from_run`."""

    crashes: int = 0


def supervisor_adaptation(
    c: float = DEFAULT_C,
    include_bursts: bool = True,
) -> "Callable[[AsyncCluster], EpToConfig]":
    """An adaptation callback for :class:`repro.faults.supervisor.NodeSupervisor`.

    Closes the Lemma 7 loop at the moment it matters: each time the
    supervisor is about to resurrect a node, the returned callback
    measures the cluster the restart will rejoin — population, rounds
    elapsed (the deepest round counter any live process reached),
    message loss from the fabric's counters, and churn from the corpse
    count — and re-derives fanout/TTL via :func:`adapt_config`. The
    replacement then comes up under parameters sized for the churn and
    loss actually observed, not the ones guessed at deployment time;
    fanout/TTL only ever ratchet up from the configured floor.

    Usage::

        supervisor = NodeSupervisor(cluster, adapt=supervisor_adaptation())
    """

    def adapt(cluster: "AsyncCluster") -> EpToConfig:
        population = max(2, len(cluster.nodes))
        rounds = max(
            [1]
            + [
                node.process.dissemination.stats.rounds
                for node in cluster.nodes.values()
            ]
        )
        crashed = sum(1 for node in cluster.nodes.values() if node.crashed)
        observed = ObservedConditions.from_run(
            population=population,
            rounds=rounds,
            network_stats=getattr(cluster.network, "stats", None),
            churn_stats=_CrashTally(crashes=crashed),
            include_bursts=include_bursts,
        )
        return adapt_config(cluster.config, observed, c=c)

    return adapt
