"""Fault-schedule interpreter for the discrete-event simulator.

Translates a :class:`~repro.faults.schedule.FaultSchedule` into
simulator-tick actions against a :class:`~repro.sim.cluster.SimCluster`
and its :class:`~repro.sim.network.SimNetwork`: crashes become
``remove_node`` calls (recoveries re-add fresh processes, the paper's
churn model) or, with ``recovery="same_id"``, ``crash_node`` calls
whose recoveries respawn the same ids with resumed broadcast sequences
(mirroring the asyncio runtime), partitions use the network's
partition groups, loss
bursts temporarily raise ``loss_rate``, latency spikes wrap the latency
model, and corruption windows degrade to loss bursts (the simulator has
no wire format to mangle — a corrupted message is an undeliverable
message).

Every applied action is appended to :attr:`SimFaultInjector.log` as a
``(tick, description)`` pair so experiments can line failures up with
delivery traces.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Set, Tuple

from ..core.errors import FaultInjectionError
from ..sim.cluster import SimCluster
from ..sim.engine import Simulator
from ..sim.latency import LatencyModel
from ..sim.network import SimNetwork
from .byzantine import ByzantineRouter, forged_events, garbage_ball, scramble_journal
from .schedule import (
    ByzantineNodes,
    CorruptDatagrams,
    CrashNodes,
    FaultSchedule,
    HealPartition,
    LatencySpike,
    LossBurst,
    PartitionNetwork,
    ScrambleState,
)


@dataclass(slots=True)
class FaultStats:
    """What an injector actually did."""

    crashes: int = 0
    recoveries: int = 0
    partitions: int = 0
    heals: int = 0
    loss_bursts: int = 0
    latency_spikes: int = 0
    corruption_windows: int = 0
    byzantine_windows: int = 0
    scrambles: int = 0


class _ScaledLatency:
    """Latency model wrapper multiplying every sample (latency spike)."""

    def __init__(self, base: LatencyModel, factor: float) -> None:
        self._base = base
        self._factor = factor

    def sample(self, rng: random.Random, src: int, dst: int) -> int:
        return max(1, round(self._base.sample(rng, src, dst) * self._factor))


class SimFaultInjector:
    """Drives one fault schedule against a simulated cluster.

    Args:
        sim: Host simulator (supplies scheduling and forked randomness).
        cluster: Cluster whose membership the crashes mutate.
        schedule: The declarative scenario; times in rounds are
            converted to ticks with the cluster's EpTO round interval.
        recovery: What ``recover_after`` means. ``"fresh"`` (default,
            the paper's churn model) replaces each crashed process with
            a brand-new identity; ``"same_id"`` respawns the *same*
            node ids with their broadcast sequences resumed, mirroring
            the asyncio runtime's
            :meth:`~repro.runtime.cluster.AsyncCluster.respawn_node`
            semantics so crash-recovery scenarios are comparable across
            both runtimes.

    Call :meth:`install` once before ``sim.run(...)``; size the run
    past ``schedule.horizon_rounds * round_interval`` ticks so every
    action lands.
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: SimCluster,
        schedule: FaultSchedule,
        recovery: str = "fresh",
    ) -> None:
        if recovery not in ("fresh", "same_id"):
            raise FaultInjectionError(
                f"unknown recovery mode {recovery!r}; use 'fresh' or 'same_id'"
            )
        self.sim = sim
        self.cluster = cluster
        self.schedule = schedule
        self.recovery = recovery
        self.network: SimNetwork = cluster.network
        self.stats = FaultStats()
        #: (tick, human-readable description) per applied action.
        self.log: List[Tuple[int, str]] = []
        #: Ids crashed by this injector. Under ``recovery="fresh"``
        #: they never return; under ``"same_id"`` recoveries respawn
        #: them with resumed sequences.
        self.crashed_ids: Set[int] = set()
        #: Ids that were ever made hostile by a ByzantineNodes action.
        #: Hostile nodes are excluded from agreement checking — a
        #: Byzantine process's own deliveries carry no guarantees.
        self.byzantine_ids: Set[int] = set()
        #: Ids whose state a ScrambleState action corrupted.
        self.scrambled_ids: Set[int] = set()
        self._router: ByzantineRouter | None = None
        self._rng = sim.fork_rng("faults")
        self._installed = False
        self._initial_population: Set[int] = set()
        # Victims per crash action (keyed by action identity), recorded
        # at crash time for the matching same-id recovery.
        self._victims: dict[int, List[int]] = {}

    def install(self) -> None:
        """Schedule every action on the simulator (idempotent-guarded)."""
        if self._installed:
            raise FaultInjectionError("injector is already installed")
        self._installed = True
        self._initial_population = set(self.cluster.alive_ids())
        interval = self.cluster.config.epto.round_interval
        base = self.sim.now()

        def at(rounds: float):
            return base + max(0, round(rounds * interval))

        for action in self.schedule:
            if isinstance(action, CrashNodes):
                self.sim.schedule_at(
                    at(action.at_round), lambda a=action: self._crash(a)
                )
            elif isinstance(action, PartitionNetwork):
                self.sim.schedule_at(
                    at(action.at_round), lambda a=action: self._partition(a)
                )
                if action.heal_after is not None:
                    self.sim.schedule_at(
                        at(action.at_round + action.heal_after), self._heal
                    )
            elif isinstance(action, HealPartition):
                self.sim.schedule_at(at(action.at_round), self._heal)
            elif isinstance(action, (LossBurst, CorruptDatagrams)):
                self.sim.schedule_at(
                    at(action.at_round), lambda a=action: self._loss_burst(a)
                )
                self.sim.schedule_at(
                    at(action.at_round + action.duration),
                    lambda a=action: self._end_loss_burst(a),
                )
            elif isinstance(action, LatencySpike):
                self.sim.schedule_at(
                    at(action.at_round), lambda a=action: self._spike(a)
                )
                self.sim.schedule_at(
                    at(action.at_round + action.duration), self._end_spike
                )
            elif isinstance(action, ByzantineNodes):
                self.sim.schedule_at(
                    at(action.at_round), lambda a=action: self._byzantine(a)
                )
                if action.duration is not None:
                    self.sim.schedule_at(
                        at(action.at_round + action.duration),
                        lambda a=action: self._end_byzantine(a),
                    )
            elif isinstance(action, ScrambleState):
                self.sim.schedule_at(
                    at(action.at_round), lambda a=action: self._scramble(a)
                )
            else:  # pragma: no cover - schedule validates kinds
                raise FaultInjectionError(f"unsupported action {action!r}")

    # ------------------------------------------------------------------
    # Survivor accounting
    # ------------------------------------------------------------------

    def continuous_survivors(self) -> Set[int]:
        """Nodes alive now that were alive when the schedule was
        installed — the population agreement is evaluated on."""
        return self._initial_population & set(self.cluster.alive_ids())

    # ------------------------------------------------------------------
    # Action handlers
    # ------------------------------------------------------------------

    def _crash(self, action: CrashNodes) -> None:
        alive = list(self.cluster.alive_ids())
        if action.nodes is not None:
            victims = [nid for nid in action.nodes if nid in set(alive)]
        else:
            count = min(len(alive), math.ceil(action.fraction * len(alive)))
            victims = self._rng.sample(alive, count)
        for node_id in victims:
            if self.recovery == "same_id":
                self.cluster.crash_node(node_id)
            else:
                self.cluster.remove_node(node_id)
            self.crashed_ids.add(node_id)
            self.stats.crashes += 1
        self._victims[id(action)] = list(victims)
        self._log(f"crashed {sorted(victims)}")
        if action.recover_after is not None and victims:
            delay = round(
                action.recover_after * self.cluster.config.epto.round_interval
            )
            self.sim.schedule(
                max(1, delay), lambda a=action: self._recover(a)
            )

    def _recover(self, action: CrashNodes) -> None:
        victims = self._victims.get(id(action), [])
        if self.recovery == "same_id":
            recovered: List[int] = []
            for node_id in victims:
                if node_id not in self.cluster.crashed_ids():
                    continue  # already respawned by an earlier action
                self.cluster.respawn_node(node_id)
                self.stats.recoveries += 1
                recovered.append(node_id)
            self._log(f"recovered {sorted(recovered)} under their own ids")
        else:
            count = len(victims)
            joined = [self.cluster.add_node() for _ in range(count)]
            self.stats.recoveries += count
            self._log(f"recovered {count} processes as fresh ids {joined}")

    def _partition(self, action: PartitionNetwork) -> None:
        if action.groups is not None:
            groups = dict(action.groups)
        else:
            alive = list(self.cluster.alive_ids())
            minority_size = max(1, math.ceil(action.fraction * len(alive)))
            minority = set(self._rng.sample(alive, min(minority_size, len(alive))))
            groups = {nid: (1 if nid in minority else 0) for nid in alive}
        self.network.set_partition(groups)
        self.stats.partitions += 1
        sizes = sorted(
            [list(groups.values()).count(g) for g in set(groups.values())]
        )
        self._log(f"partitioned into groups of sizes {sizes}")

    def _heal(self) -> None:
        self.network.heal_partition()
        self.stats.heals += 1
        self._log("healed partition")

    def _loss_burst(self, action) -> None:
        # One saved baseline per burst; bursts are expected not to
        # overlap (the schedule is declarative, keep scenarios sane).
        self._saved_loss = self.network.loss_rate
        self.network.loss_rate = max(self.network.loss_rate, action.rate)
        if isinstance(action, CorruptDatagrams):
            self.stats.corruption_windows += 1
            self._log(
                f"corruption window rate={action.rate} (approximated as loss "
                "— the simulator has no wire bytes to mangle)"
            )
        else:
            self.stats.loss_bursts += 1
            self._log(f"loss burst rate={action.rate}")

    def _end_loss_burst(self, action) -> None:
        self.network.loss_rate = getattr(self, "_saved_loss", 0.0)
        self._log(f"loss restored to {self.network.loss_rate}")

    def _byzantine(self, action: ByzantineNodes) -> None:
        router = self._ensure_router()
        router.enable(action.nodes, action.behavior, action.rate)
        self.byzantine_ids.update(action.nodes)
        self.stats.byzantine_windows += 1
        self._log(
            f"byzantine {action.behavior} on {sorted(action.nodes)} "
            f"rate={action.rate}"
        )

    def _end_byzantine(self, action: ByzantineNodes) -> None:
        if self._router is not None:
            self._router.disable(action.nodes, action.behavior)
            self._log(f"byzantine {action.behavior} off for {sorted(action.nodes)}")

    def _ensure_router(self) -> ByzantineRouter:
        if self._router is None:
            self._router = ByzantineRouter(rng=self.sim.fork_rng("byzantine"))
            self.network.set_adversary(self._router)
        return self._router

    def _scramble(self, action: ScrambleState) -> None:
        interval = self.cluster.config.epto.round_interval
        alive = set(self.cluster.alive_ids())
        victims = [nid for nid in action.nodes if nid in alive]
        storage_dir = getattr(self.cluster, "storage_dir", None)
        for node_id in victims:
            # 1. The corrupted ordering state and clock made visible:
            # the victim sprays a ball of events forged under *other*
            # live identities, with future timestamps and fresh TTLs.
            # Under auth these are unsigned-at-source and die at
            # admission; without auth they poison correct nodes.
            impersonate = sorted(alive - {node_id} - set(victims))[:3]
            if action.garbage_events > 0 and impersonate:
                events = forged_events(
                    impersonate,
                    action.garbage_events,
                    ts=self.sim.now() + interval,
                )
                targets = [nid for nid in alive if nid != node_id]
                self.network.send_many(node_id, targets, garbage_ball(events))
                self._log(
                    f"scramble {node_id}: sprayed {len(events)} forged "
                    f"events impersonating {impersonate}"
                )
            # 2. Kill the process mid-flight.
            self.cluster.crash_node(node_id)
            self.crashed_ids.add(node_id)
            self.scrambled_ids.add(node_id)
            self.stats.scrambles += 1
            # 3. Corrupt whatever it had on disk.
            if storage_dir is not None:
                damage = scramble_journal(
                    self.cluster.node_storage_dir(node_id), self._rng
                )
                for note in damage:
                    self._log(f"scramble {node_id}: {note}")
        self._log(f"scrambled {sorted(victims)}")
        delay = round(action.recover_after * interval)
        self.sim.schedule(max(1, delay), lambda v=list(victims): self._unscramble(v))

    def _unscramble(self, victims: List[int]) -> None:
        recovered: List[int] = []
        for node_id in victims:
            if node_id not in self.cluster.crashed_ids():
                continue
            self.cluster.respawn_node(node_id)
            self.stats.recoveries += 1
            recovered.append(node_id)
        self._log(f"scrambled nodes {sorted(recovered)} respawned")

    def _spike(self, action: LatencySpike) -> None:
        self._saved_latency = self.network.latency
        self.network.latency = _ScaledLatency(self.network.latency, action.factor)
        self.stats.latency_spikes += 1
        self._log(f"latency spike x{action.factor}")

    def _end_spike(self) -> None:
        self.network.latency = getattr(self, "_saved_latency", self.network.latency)
        self._log("latency restored")

    def _log(self, message: str) -> None:
        self.log.append((self.sim.now(), message))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SimFaultInjector(actions={len(self.schedule)}, "
            f"applied={len(self.log)})"
        )
