"""Hostile-node behaviors: the Byzantine half of the fault layer.

Where :mod:`repro.faults.schedule` models *benign* failures (crash,
loss, partition, line corruption), this module models the adversary of
Malkhi et al. (*On Diffusing Updates in a Byzantine Environment*):
compromised **relays** that keep running the protocol but mutate the
traffic passing through them. A :class:`ByzantineRouter` is installed
on a network fabric (``network.set_adversary(router)``); every ball a
hostile node sends is routed through :meth:`ByzantineRouter.transform`
*per destination*, which is what makes equivocation — different lies to
different peers — expressible at all.

Four behaviors (:data:`repro.faults.schedule.BYZANTINE_BEHAVIORS`):

* ``equivocate`` — relayed entries keep their ``(source, seq)`` id but
  the payload diverges per destination. Without authentication,
  correct nodes accept whichever copy arrives first and end up
  disagreeing on the *content* of an agreed position — the violation
  :func:`repro.metrics.check_authenticity` detects. With auth, the
  mutated copies fail their source's MAC and are dropped at admission.
* ``garble_relay`` — relayed entries get garbage payloads and a
  shifted timestamp (diverging the order key too). Same auth fate.
* ``ttl_inflate`` — previously relayed entries are re-injected with
  their TTL rewound to zero, resurrecting events that already left the
  TTL window. The MAC still verifies (the TTL is deliberately outside
  the canonical bytes — docs/SECURITY.md); safety instead rests on the
  ordering layer's delivered/known dedupe absorbing re-sightings.
* ``replay`` — previously relayed entries are re-sent verbatim. Valid
  MACs again; absorbed the same way.

The split is the point: the drill demonstrates which attacks
authentication stops (forgery, equivocation, garbling) and which it
provably does not (replay, TTL games), per the threat model in
docs/SECURITY.md.

The module also hosts the state-scrambling helpers behind the
:class:`repro.faults.schedule.ScrambleState` action: forged-event
builders (events fabricated under *other* nodes' identities — under
auth these are unsigned-at-source and die at admission) and
:func:`scramble_journal`, which corrupts a node's on-disk delivery log
the way a real torn-and-flipped disk would.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Deque, Dict, Iterable, List, Sequence, Tuple

from ..core.errors import FaultInjectionError
from ..core.event import Ball, BallEntry, Event, make_ball
from ..storage.recovery import LOG_SUBDIR

#: How many relayed entries the router remembers for replay/resurrection.
DEFAULT_STASH_SIZE = 64


@dataclass(slots=True)
class ByzantineStats:
    """Counters of hostile mutations actually performed."""

    equivocated: int = 0
    garbled: int = 0
    replayed: int = 0
    ttl_inflated: int = 0

    @property
    def total(self) -> int:
        """Every hostile mutation across all behaviors."""
        return self.equivocated + self.garbled + self.replayed + self.ttl_inflated


class ByzantineRouter:
    """Per-fabric adversary: transforms balls sent by hostile nodes.

    One router serves a whole fabric; behaviors are enabled per node
    (several can be active on the same node at once, each with its own
    firing rate), which is how a schedule layers equivocation on top
    of replay in one window. The router only ever touches entries a
    hostile node *relays* (``event.source_id != sender``): a node
    mangling its own events would be indistinguishable from a buggy
    application, and — holding its own key — could sign the mangled
    result anyway. The interesting adversary is the one auth is
    designed against: the relay that cannot forge other sources' MACs.

    Determinism: all randomness comes from the injected *rng*, so a
    seeded drill replays bit-identically.
    """

    def __init__(
        self,
        rng: random.Random | None = None,
        stash_size: int = DEFAULT_STASH_SIZE,
    ) -> None:
        self._rng = rng if rng is not None else random.Random(0)
        self.stats = ByzantineStats()
        # node id -> behavior name -> firing rate.
        self._active: Dict[int, Dict[str, float]] = {}
        self._stash: Deque[BallEntry] = deque(maxlen=stash_size)
        self._garble_counter = 0

    # ------------------------------------------------------------------
    # Activation (driven by the fault injectors)
    # ------------------------------------------------------------------

    def enable(self, nodes: Iterable[int], behavior: str, rate: float = 1.0) -> None:
        """Switch *behavior* on for *nodes* with per-send firing *rate*."""
        for node_id in nodes:
            self._active.setdefault(int(node_id), {})[behavior] = float(rate)

    def disable(self, nodes: Iterable[int], behavior: str | None = None) -> None:
        """Switch *behavior* (or every behavior, if ``None``) off."""
        for node_id in nodes:
            behaviors = self._active.get(int(node_id))
            if behaviors is None:
                continue
            if behavior is None:
                behaviors.clear()
            else:
                behaviors.pop(behavior, None)
            if not behaviors:
                del self._active[int(node_id)]

    def is_hostile(self, node_id: int) -> bool:
        """Whether any behavior is currently active for *node_id*."""
        return bool(self._active.get(node_id))

    @property
    def hostile_ids(self) -> Tuple[int, ...]:
        """Ids of every currently hostile node."""
        return tuple(sorted(self._active))

    # ------------------------------------------------------------------
    # The transform (called by the fabrics, per destination)
    # ------------------------------------------------------------------

    def transform(self, sender: int, dst: int, ball: Ball) -> Ball:
        """Hostile version of *ball* as *sender* ships it to *dst*."""
        behaviors = self._active.get(sender)
        if not behaviors:
            return ball
        entries: List[BallEntry] = list(ball)
        self._remember_relayed(sender, entries)
        for behavior, rate in behaviors.items():
            if rate < 1.0 and self._rng.random() >= rate:
                continue
            if behavior == "equivocate":
                entries = self._equivocate(sender, dst, entries)
            elif behavior == "garble_relay":
                entries = self._garble(sender, entries)
            elif behavior == "ttl_inflate":
                entries = self._ttl_inflate(sender, entries)
            elif behavior == "replay":
                entries = self._replay(sender, entries)
        return make_ball(entries)

    def _remember_relayed(self, sender: int, entries: Sequence[BallEntry]) -> None:
        for entry in entries:
            if entry.event.source_id != sender:
                self._stash.append(entry)

    def _equivocate(
        self, sender: int, dst: int, entries: List[BallEntry]
    ) -> List[BallEntry]:
        # Same (source, seq) and timestamp, divergent payload per
        # destination parity: two halves of the cluster accept two
        # different "contents" for the same agreed position.
        out: List[BallEntry] = []
        for entry in entries:
            event = entry.event
            if event.source_id == sender:
                out.append(entry)
                continue
            forged = Event(
                id=event.id,
                ts=event.ts,
                source_id=event.source_id,
                payload={"equivocated_by": sender, "variant": dst & 1},
            )
            out.append(BallEntry(forged, entry.ttl))
            self.stats.equivocated += 1
        return out

    def _garble(self, sender: int, entries: List[BallEntry]) -> List[BallEntry]:
        # Garbage payload plus a small timestamp shift: the order key
        # itself diverges between the genuine and the garbled copy.
        out: List[BallEntry] = []
        for entry in entries:
            event = entry.event
            if event.source_id == sender:
                out.append(entry)
                continue
            self._garble_counter += 1
            forged = Event(
                id=event.id,
                ts=event.ts + 1,
                source_id=event.source_id,
                payload={"garbled_by": sender, "n": self._garble_counter},
            )
            out.append(BallEntry(forged, entry.ttl))
            self.stats.garbled += 1
        return out

    def _ttl_inflate(self, sender: int, entries: List[BallEntry]) -> List[BallEntry]:
        # Resurrect the oldest stashed relayed entry with its TTL
        # rewound to zero — to receivers it looks freshly broadcast,
        # long after the genuine copies left the TTL window.
        if not self._stash:
            return entries
        stale = self._stash.popleft()
        self.stats.ttl_inflated += 1
        return entries + [BallEntry(stale.event, 0)]

    def _replay(self, sender: int, entries: List[BallEntry]) -> List[BallEntry]:
        # Re-send a previously relayed entry verbatim (valid MAC and
        # TTL): pure duplicate pressure on the receivers' dedupe.
        if not self._stash:
            return entries
        replayed = self._rng.choice(self._stash)
        self.stats.replayed += 1
        return entries + [replayed]


# ----------------------------------------------------------------------
# State scrambling (the ScrambleState action's toolbox)
# ----------------------------------------------------------------------


def forged_events(
    impersonate: Sequence[int],
    count: int,
    ts: int,
    base_seq: int = 1_000_000,
) -> Tuple[Event, ...]:
    """Fabricate *count* events under the identities in *impersonate*.

    The forgeries round-robin over the impersonated sources with huge
    sequence numbers (far above anything genuinely issued) so they are
    trivially attributable in a post-mortem — and, under auth, carry no
    signature their claimed sources ever produced.
    """
    if not impersonate:
        raise FaultInjectionError("forged_events needs at least one identity")
    events = []
    for k in range(count):
        source = int(impersonate[k % len(impersonate)])
        seq = base_seq + k
        events.append(
            Event(
                id=(source, seq),
                ts=int(ts),
                source_id=source,
                payload={"scrambled": True, "k": k},
            )
        )
    return tuple(events)


def garbage_ball(events: Iterable[Event], ttl: int = 0) -> Ball:
    """Wrap forged *events* as a freshly-broadcast-looking ball."""
    return make_ball(BallEntry(event, ttl) for event in events)


def scramble_journal(directory: Path, rng: random.Random) -> List[str]:
    """Corrupt the on-disk delivery log under *directory* in place.

    Three layers of damage to the newest segment, modeling arbitrary
    state corruption rather than a clean crash: random byte flips in
    the middle (CRC framing makes the reader stop at the last valid
    record before the flip), truncation of the tail (a torn write),
    and garbage bytes appended after it (a partially recycled block).
    Returns a human-readable list of what was done, for fault logs.

    The log's own recovery contract does the rest: the next open
    repairs the torn tail and the node restarts from the surviving
    prefix — the "arbitrary corrupted state" a self-stabilizing
    protocol must converge out of.
    """
    directory = Path(directory)
    log_dir = directory / LOG_SUBDIR
    segments = sorted(log_dir.glob("seg-*.log")) if log_dir.is_dir() else []
    if not segments:
        return [f"no log segments under {log_dir}"]
    target = segments[-1]
    data = bytearray(target.read_bytes())
    actions: List[str] = []
    if len(data) > 16:
        # Byte flips somewhere past the first record's header.
        for _ in range(3):
            position = rng.randrange(len(data) // 2, len(data))
            data[position] ^= 0xFF
        actions.append(f"flipped 3 bytes in {target.name}")
        # Torn tail: drop a random fraction of the end.
        keep = rng.randrange(len(data) // 2, len(data))
        del data[keep:]
        actions.append(f"truncated {target.name} to {keep} bytes")
    # Recycled-block garbage after the torn tail.
    data += bytes(rng.randrange(256) for _ in range(rng.randrange(8, 32)))
    actions.append(f"appended garbage tail to {target.name}")
    target.write_bytes(bytes(data))
    return actions
