"""Wire codec for EpTO messages (paper §8.5).

A compact, dependency-free binary encoding for everything EpTO and
Cyclon put on the wire, used by the UDP transport. Deliberately **not**
pickle: decoding untrusted bytes must never execute code, so the format
is fixed-layout structs plus JSON-encoded payloads.

Layout (all integers big-endian):

```
header:   magic "EP" | version u8 | kind u8 | sender i64 | count u32
ball:     count x { ts i64 | source i64 | seq i64 | ttl i32 |
                    payload_len u32 | payload (UTF-8 JSON) }
signed:   count x { ts i64 | source i64 | seq i64 | ttl i32 |
                    epoch u32 | mac_len u8 | mac |
                    payload_len u32 | payload (UTF-8 JSON) }
cyclon:   count x { peer i64 | age i32 }
digest:   flags u8 (bit0 has-last-key, bit1 reply) |
          [ last_key 3 x i64 ] | count x { source i64 | seq i64 }
request:  req_id u32 | max_events u32 | max_bytes u32 |
          flags u8 (bit0 has-after) | [ after 3 x i64 ] |
          count x { source i64 | seq i64 }
chunk:    req_id u32 | flags u8 (bit0 more, bit1 has-peer-last) |
          [ peer_last 3 x i64 ] | checksum u32 |
          count x { ts i64 | source i64 | seq i64 |
                    payload_len u32 | payload (UTF-8 JSON) }
envelope: count x { topic u32 | inner_len u32 |
                    inner (one complete datagram, kinds 1–7, 9–11) }
id_ball:  count x { ts i64 | source i64 | seq i64 | ttl i32 }
pull_req: req_id u32 | count x { source i64 | seq i64 }
pull_resp:req_id u32 | missing u32 |
          count x { ts i64 | source i64 | seq i64 |
                    payload_len u32 | payload (UTF-8 JSON) } |
          missing x { source i64 | seq i64 }
```

``count`` is entries for balls, id-balls and cyclon views, watermark
pairs for digests and requests, events for chunks and pull responses,
ids for pull requests, frames for topic envelopes.

Versioning: kinds 1–6 are header version 1; the signed-ball kind 7 is
header version 2; the multi-topic envelope kind 8 is header version 3
(see :mod:`repro.service`); the lazy-push kinds 9–11 (id-ball,
payload-request, payload-response — :mod:`repro.lazy`) are header
version 4. The decoder accepts all four versions (a version-4 node
reads older traffic unchanged), rejects kind 7 under version 1, kind 8
under versions 1–2 and kinds 9–11 under versions 1–3, and raises the
distinguishable :class:`CodecVersionError` for any other version so
transports can count future-version traffic apart from line noise. ``mac_len == 0`` marks an unsigned entry inside a signed
ball. Each envelope frame wraps one *complete* datagram — its own
header and body, produced by the same per-kind encoders — so every
message the codec can put on the wire can ride inside an envelope
unchanged (signed balls keep their inner version 2); envelopes cannot
nest.

Payloads must be JSON-serializable — the natural constraint for data
crossing process boundaries. Encoded messages are capped at
:data:`MAX_DATAGRAM` bytes so they fit in a UDP datagram; EpTO's
per-round batching keeps balls small at the scales the runtime demo
targets (fragmenting giant balls across datagrams is a transport
concern left out of scope, and flagged loudly instead of silently
truncated).
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Any, Tuple, Union

from ..auth.authenticator import EventSignature, SignedBall
from ..core.errors import TransportError
from ..core.event import Ball, BallEntry, Event, make_ball
from ..lazy.protocol import IdBall, PayloadRequest, PayloadResponse
from ..pss.cyclon import CyclonRequest, CyclonResponse
from ..sync.protocol import (
    DeliveryDigest,
    SyncChunk,
    SyncDigest,
    SyncRequest,
)

#: Largest message the codec will produce (safe single-datagram size).
MAX_DATAGRAM = 60_000

_MAGIC = b"EP"
_VERSION = 1
_VERSION_SIGNED = 2
_VERSION_TOPIC = 3
_VERSION_LAZY = 4
_SUPPORTED_VERSIONS = (_VERSION, _VERSION_SIGNED, _VERSION_TOPIC, _VERSION_LAZY)
_KIND_BALL = 1
_KIND_CYCLON_REQ = 2
_KIND_CYCLON_RESP = 3
_KIND_SYNC_DIGEST = 4
_KIND_SYNC_REQUEST = 5
_KIND_SYNC_CHUNK = 6
_KIND_SIGNED_BALL = 7
_KIND_TOPIC_ENVELOPE = 8
_KIND_ID_BALL = 9
_KIND_PAYLOAD_REQUEST = 10
_KIND_PAYLOAD_RESPONSE = 11
_LAZY_KINDS = (_KIND_ID_BALL, _KIND_PAYLOAD_REQUEST, _KIND_PAYLOAD_RESPONSE)

#: Largest topic id the frame layout can carry (topic is a u32).
MAX_TOPIC_ID = 0xFFFFFFFF

#: Largest MAC the signed-entry layout can carry (mac_len is a u8).
MAX_MAC_LEN = 255

_HEADER = struct.Struct("!2sBBqI")
_BALL_ENTRY = struct.Struct("!qqqiI")
_SIGNED_ENTRY = struct.Struct("!qqqiIB")  # ts, source, seq, ttl, epoch, mac_len
_PAYLOAD_LEN = struct.Struct("!I")
_CYCLON_ENTRY = struct.Struct("!qi")
_ORDER_KEY = struct.Struct("!qqq")
_WATERMARK = struct.Struct("!qq")
_DIGEST_FLAGS = struct.Struct("!B")
_REQUEST_HEAD = struct.Struct("!IIIB")  # req_id, max_events, max_bytes, flags
_CHUNK_HEAD = struct.Struct("!IB")  # req_id, flags
_CHUNK_EVENT = struct.Struct("!qqqI")  # ts, source, seq, payload_len
_CHECKSUM = struct.Struct("!I")
_FRAME_HEAD = struct.Struct("!II")  # topic, inner_len
_ID_ENTRY = struct.Struct("!qqqi")  # ts, source, seq, ttl
_EVENT_ID = struct.Struct("!qq")  # source, seq
_PULL_REQ_HEAD = struct.Struct("!I")  # req_id
_PULL_RESP_HEAD = struct.Struct("!II")  # req_id, missing count


@dataclass(frozen=True)
class TopicEnvelope:
    """A multi-topic bundle: several datagrams bound for one host.

    Each frame is ``(topic, sender, message)`` where *message* is any
    single-topic wire message (kinds 1–7, 9–11). The service layer's demux
    (:mod:`repro.service`) packs the frames every host emits in one
    event-loop tick into as few envelopes as fit the datagram cap, so
    balls for many topics share one ``sendto`` — the cross-topic
    batching the multi-topic service is built around. The envelope
    sender (the outer header's sender field) is the emitting *host*;
    per-frame senders travel in the inner headers.
    """

    frames: Tuple[Tuple[int, int, Any], ...]


#: Everything the codec can carry.
WireMessage = Union[
    Ball,
    SignedBall,
    CyclonRequest,
    CyclonResponse,
    SyncDigest,
    SyncRequest,
    SyncChunk,
    TopicEnvelope,
    IdBall,
    PayloadRequest,
    PayloadResponse,
]


class CodecError(TransportError):
    """Raised on malformed, oversized or incompatible wire data."""


class CodecVersionError(CodecError):
    """A well-framed datagram carried an unsupported header version.

    Distinguished from plain :class:`CodecError` so transports can
    count traffic from incompatible peers (``dropped_bad_version``)
    separately from corrupted datagrams (``dropped_malformed``).
    """


#: Application-payload bytes inside the most recent successful encode,
#: maintained for the transport's metadata-vs-payload byte accounting
#: (see :func:`last_encode_payload_bytes`). Single-threaded event loops
#: make a module-level latch safe; the value is only meaningful
#: immediately after the encode call that produced it.
_last_payload_bytes = 0


def last_encode_payload_bytes() -> int:
    """JSON-payload bytes in the last :func:`encode`/:func:`encode_into`.

    Everything else in that datagram (headers, entry metadata, MACs,
    watermarks) is protocol metadata: ``len(datagram) - payload`` is
    the metadata share. This is what lets :class:`~repro.runtime.udp.
    UdpNetwork` split ``bytes_sent`` into the two classes the lazy-push
    benchmark compares.
    """
    return _last_payload_bytes


def encode(sender: int, message: WireMessage) -> bytes:
    """Serialize *message* from *sender* into a datagram.

    Raises:
        CodecError: If a payload is not JSON-serializable or the
            encoded message exceeds :data:`MAX_DATAGRAM`.
    """
    global _last_payload_bytes
    buffer = bytearray()
    _last_payload_bytes = _encode_into(sender, message, buffer)
    return bytes(buffer)


def encode_into(
    sender: int, message: WireMessage, buffer: bytearray
) -> memoryview:
    """Serialize *message* into *buffer* (cleared first), allocation-free.

    The pooled twin of :func:`encode` for hot send paths: the caller
    owns a reusable ``bytearray`` and receives a read-only view of the
    encoded datagram, valid until the next ``encode_into`` on the same
    buffer. An EpTO round fans one ball out to K peers — with a pooled
    buffer the per-round garbage is zero instead of one fresh ``bytes``
    per round (see :meth:`repro.runtime.udp.UdpNetwork.send_many`).

    Raises:
        CodecError: Same conditions as :func:`encode`; the buffer
            contents are unspecified after a failure.
    """
    global _last_payload_bytes
    del buffer[:]
    _last_payload_bytes = _encode_into(sender, message, buffer)
    return memoryview(buffer).toreadonly()


def _encode_into(sender: int, message: WireMessage, buffer: bytearray) -> int:
    """Encode one datagram into *buffer*; returns its payload bytes."""
    if isinstance(message, TopicEnvelope):
        kind, count = _KIND_TOPIC_ENVELOPE, len(message.frames)
    elif isinstance(message, SignedBall):
        kind, count = _KIND_SIGNED_BALL, len(message.entries)
    elif isinstance(message, CyclonRequest):
        kind, count = _KIND_CYCLON_REQ, len(message.entries)
    elif isinstance(message, CyclonResponse):
        kind, count = _KIND_CYCLON_RESP, len(message.entries)
    elif isinstance(message, SyncDigest):
        kind, count = _KIND_SYNC_DIGEST, len(message.digest.watermarks)
    elif isinstance(message, SyncRequest):
        kind, count = _KIND_SYNC_REQUEST, len(message.watermarks)
    elif isinstance(message, SyncChunk):
        kind, count = _KIND_SYNC_CHUNK, len(message.events)
    elif isinstance(message, IdBall):
        kind, count = _KIND_ID_BALL, len(message.entries)
    elif isinstance(message, PayloadRequest):
        kind, count = _KIND_PAYLOAD_REQUEST, len(message.ids)
    elif isinstance(message, PayloadResponse):
        kind, count = _KIND_PAYLOAD_RESPONSE, len(message.events)
    elif isinstance(message, tuple):
        kind, count = _KIND_BALL, len(message)
    else:
        raise CodecError(f"cannot encode message of type {type(message).__name__}")
    if kind in _LAZY_KINDS:
        version = _VERSION_LAZY
    elif kind == _KIND_TOPIC_ENVELOPE:
        version = _VERSION_TOPIC
    elif kind == _KIND_SIGNED_BALL:
        version = _VERSION_SIGNED
    else:
        version = _VERSION
    buffer += _HEADER.pack(_MAGIC, version, kind, sender, count)
    payload_bytes = 0
    if kind == _KIND_BALL:
        payload_bytes = _encode_ball_into(message, buffer)
    elif kind == _KIND_TOPIC_ENVELOPE:
        payload_bytes = _encode_topic_envelope_into(message, buffer)
    elif kind == _KIND_SIGNED_BALL:
        payload_bytes = _encode_signed_ball_into(message, buffer)
    elif kind == _KIND_SYNC_DIGEST:
        _encode_sync_digest_into(message, buffer)
    elif kind == _KIND_SYNC_REQUEST:
        _encode_sync_request_into(message, buffer)
    elif kind == _KIND_SYNC_CHUNK:
        payload_bytes = _encode_sync_chunk_into(message, buffer)
    elif kind == _KIND_ID_BALL:
        _encode_id_ball_into(message, buffer)
    elif kind == _KIND_PAYLOAD_REQUEST:
        _encode_payload_request_into(message, buffer)
    elif kind == _KIND_PAYLOAD_RESPONSE:
        payload_bytes = _encode_payload_response_into(message, buffer)
    else:
        buffer += _encode_cyclon(message.entries)
    if len(buffer) > MAX_DATAGRAM:
        raise CodecError(
            f"encoded message is {len(buffer)} bytes, exceeding the "
            f"{MAX_DATAGRAM}-byte datagram cap"
        )
    return payload_bytes


def decode(datagram) -> Tuple[int, WireMessage]:
    """Parse a datagram; returns ``(sender, message)``.

    Accepts any bytes-like object — ``bytes``, ``bytearray`` or a
    ``memoryview`` straight into a transport's receive buffer. Decoding
    is zero-copy: the body is sliced as views and every field that
    survives the call (payloads, MACs) is materialized into owned
    objects, so no reference into *datagram* escapes — the transport
    may reuse its buffer the moment ``decode`` returns
    (:mod:`repro.runtime.batchio` relies on exactly this).

    Raises:
        CodecError: On any malformed or version-incompatible input.
    """
    if len(datagram) < _HEADER.size:
        raise CodecError(f"datagram too short ({len(datagram)} bytes)")
    magic, version, kind, sender, count = _HEADER.unpack_from(datagram)
    if magic != _MAGIC:
        raise CodecError(f"bad magic {magic!r}")
    if version not in _SUPPORTED_VERSIONS:
        raise CodecVersionError(f"unsupported version {version}")
    view = datagram if isinstance(datagram, memoryview) else memoryview(datagram)
    body = view[_HEADER.size :]
    if kind == _KIND_BALL:
        return sender, _decode_ball(body, count)
    if kind == _KIND_SIGNED_BALL:
        if version < _VERSION_SIGNED:
            raise CodecError(
                f"signed ball requires header version {_VERSION_SIGNED}, "
                f"got {version}"
            )
        return sender, _decode_signed_ball(body, count)
    if kind == _KIND_CYCLON_REQ:
        return sender, CyclonRequest(entries=_decode_cyclon(body, count))
    if kind == _KIND_CYCLON_RESP:
        return sender, CyclonResponse(entries=_decode_cyclon(body, count))
    if kind == _KIND_SYNC_DIGEST:
        return sender, _decode_sync_digest(body, count)
    if kind == _KIND_SYNC_REQUEST:
        return sender, _decode_sync_request(body, count)
    if kind == _KIND_SYNC_CHUNK:
        return sender, _decode_sync_chunk(body, count)
    if kind == _KIND_TOPIC_ENVELOPE:
        if version < _VERSION_TOPIC:
            raise CodecError(
                f"topic envelope requires header version {_VERSION_TOPIC}, "
                f"got {version}"
            )
        return sender, _decode_topic_envelope(body, count)
    if kind in _LAZY_KINDS:
        if version < _VERSION_LAZY:
            raise CodecError(
                f"lazy-push kind {kind} requires header version "
                f"{_VERSION_LAZY}, got {version}"
            )
        if kind == _KIND_ID_BALL:
            return sender, _decode_id_ball(body, count)
        if kind == _KIND_PAYLOAD_REQUEST:
            return sender, _decode_payload_request(body, count)
        return sender, _decode_payload_response(body, count)
    raise CodecError(f"unknown message kind {kind}")


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------


def _encode_ball_into(ball: Ball, buffer: bytearray) -> int:
    # The cumulative size is tracked while encoding so an oversized
    # ball is rejected at the first entry that crosses the cap, instead
    # of serializing every remaining entry first and failing at the
    # end. The error names how far encoding got, which is what callers
    # need to size their balls (or split them) correctly.
    size = len(buffer)
    payload_total = 0
    for index, entry in enumerate(ball):
        event = entry.event
        try:
            payload = json.dumps(event.payload).encode()
        except (TypeError, ValueError) as exc:
            raise CodecError(
                f"payload of event {event.id} is not JSON-serializable: {exc}"
            ) from exc
        size += _BALL_ENTRY.size + len(payload)
        if size > MAX_DATAGRAM:
            raise CodecError(
                f"ball entry {index + 1} of {len(ball)} (event {event.id}) "
                f"pushes the encoded message to {size} bytes, exceeding the "
                f"{MAX_DATAGRAM}-byte datagram cap"
            )
        buffer += _BALL_ENTRY.pack(
            event.ts, event.source_id, event.seq, entry.ttl, len(payload)
        )
        buffer += payload
        payload_total += len(payload)
    return payload_total


def _decode_ball(body: bytes, count: int) -> Ball:
    entries = []
    offset = 0
    for _ in range(count):
        if offset + _BALL_ENTRY.size > len(body):
            raise CodecError("truncated ball entry header")
        ts, source, seq, ttl, payload_len = _BALL_ENTRY.unpack_from(body, offset)
        offset += _BALL_ENTRY.size
        if offset + payload_len > len(body):
            raise CodecError("truncated ball entry payload")
        raw = body[offset : offset + payload_len]
        offset += payload_len
        payload = _json_payload(raw, "corrupt payload")
        if ttl < 0:
            raise CodecError(f"negative ttl {ttl}")
        entries.append(
            BallEntry(
                Event(id=(source, seq), ts=ts, source_id=source, payload=payload),
                ttl=ttl,
            )
        )
    if offset != len(body):
        raise CodecError(f"{len(body) - offset} trailing bytes after ball")
    return make_ball(entries)


def _json_payload(raw, label: str):
    """Parse a JSON payload from any bytes-like slice.

    ``str(raw, "utf-8")`` reads through the buffer protocol, so a
    ``memoryview`` slice parses without an intermediate ``bytes`` copy;
    the parsed payload is an owned object with no reference into the
    source buffer.
    """
    try:
        return json.loads(str(raw, "utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise CodecError(f"{label}: {exc}") from exc


def _encode_signed_ball_into(message: SignedBall, buffer: bytearray) -> int:
    # Same first-offending-entry size accounting as _encode_ball_into;
    # each entry additionally carries its signing epoch and MAC.
    size = len(buffer)
    payload_total = 0
    total = len(message.entries)
    for index, (entry, signature) in enumerate(
        zip(message.entries, message.signatures)
    ):
        event = entry.event
        try:
            payload = json.dumps(event.payload).encode()
        except (TypeError, ValueError) as exc:
            raise CodecError(
                f"payload of event {event.id} is not JSON-serializable: {exc}"
            ) from exc
        epoch, mac = (signature.epoch, signature.mac) if signature else (0, b"")
        if len(mac) > MAX_MAC_LEN:
            raise CodecError(
                f"MAC of event {event.id} is {len(mac)} bytes, exceeding "
                f"the {MAX_MAC_LEN}-byte layout cap"
            )
        size += _SIGNED_ENTRY.size + len(mac) + _PAYLOAD_LEN.size + len(payload)
        if size > MAX_DATAGRAM:
            raise CodecError(
                f"signed ball entry {index + 1} of {total} (event "
                f"{event.id}) pushes the encoded message to {size} bytes, "
                f"exceeding the {MAX_DATAGRAM}-byte datagram cap"
            )
        buffer += _SIGNED_ENTRY.pack(
            event.ts, event.source_id, event.seq, entry.ttl, epoch, len(mac)
        )
        buffer += mac
        buffer += _PAYLOAD_LEN.pack(len(payload))
        buffer += payload
        payload_total += len(payload)
    return payload_total


def _decode_signed_ball(body: bytes, count: int) -> SignedBall:
    entries = []
    signatures = []
    offset = 0
    for _ in range(count):
        if offset + _SIGNED_ENTRY.size > len(body):
            raise CodecError("truncated signed ball entry header")
        ts, source, seq, ttl, epoch, mac_len = _SIGNED_ENTRY.unpack_from(
            body, offset
        )
        offset += _SIGNED_ENTRY.size
        if offset + mac_len + _PAYLOAD_LEN.size > len(body):
            raise CodecError("truncated signed ball entry mac")
        # Materialized: the MAC outlives the call inside EventSignature,
        # and must never alias a reusable receive buffer.
        mac = bytes(body[offset : offset + mac_len])
        offset += mac_len
        (payload_len,) = _PAYLOAD_LEN.unpack_from(body, offset)
        offset += _PAYLOAD_LEN.size
        if offset + payload_len > len(body):
            raise CodecError("truncated signed ball entry payload")
        raw = body[offset : offset + payload_len]
        offset += payload_len
        payload = _json_payload(raw, "corrupt payload")
        if ttl < 0:
            raise CodecError(f"negative ttl {ttl}")
        entries.append(
            BallEntry(
                Event(id=(source, seq), ts=ts, source_id=source, payload=payload),
                ttl=ttl,
            )
        )
        signatures.append(
            EventSignature(epoch=epoch, mac=mac) if mac_len else None
        )
    if offset != len(body):
        raise CodecError(f"{len(body) - offset} trailing bytes after signed ball")
    return SignedBall(entries=make_ball(entries), signatures=tuple(signatures))


def _encode_topic_envelope_into(
    message: TopicEnvelope, buffer: bytearray
) -> int:
    # Each frame re-enters _encode_into, so every per-kind encoder
    # (including the signed-ball one, which keeps its inner version 2)
    # is reused unchanged; the frame length is back-patched once the
    # inner datagram's size is known. The inner call's own cap check
    # sees the cumulative buffer, so an envelope that outgrows the
    # datagram cap is rejected at the first offending frame.
    payload_total = 0
    for index, (topic, frame_sender, frame_message) in enumerate(message.frames):
        if not 0 <= topic <= MAX_TOPIC_ID:
            raise CodecError(
                f"topic id {topic} of frame {index + 1} is outside the "
                f"u32 range"
            )
        if isinstance(frame_message, TopicEnvelope):
            raise CodecError("topic envelopes cannot nest")
        head = len(buffer)
        buffer += _FRAME_HEAD.pack(topic, 0)
        inner_start = len(buffer)
        payload_total += _encode_into(frame_sender, frame_message, buffer)
        _FRAME_HEAD.pack_into(buffer, head, topic, len(buffer) - inner_start)
    return payload_total


def _decode_topic_envelope(body, count: int) -> TopicEnvelope:
    frames = []
    offset = 0
    for _ in range(count):
        if offset + _FRAME_HEAD.size > len(body):
            raise CodecError("truncated topic frame header")
        topic, inner_len = _FRAME_HEAD.unpack_from(body, offset)
        offset += _FRAME_HEAD.size
        if offset + inner_len > len(body):
            raise CodecError("truncated topic frame body")
        inner = body[offset : offset + inner_len]
        offset += inner_len
        # Reject nesting before recursing: the kind byte sits at a
        # fixed header offset, so a bomb is refused without parsing.
        if len(inner) >= _HEADER.size and inner[3] == _KIND_TOPIC_ENVELOPE:
            raise CodecError("topic envelopes cannot nest")
        frame_sender, frame_message = decode(inner)
        frames.append((topic, frame_sender, frame_message))
    if offset != len(body):
        raise CodecError(
            f"{len(body) - offset} trailing bytes after topic envelope"
        )
    return TopicEnvelope(frames=tuple(frames))


def _encode_sync_digest_into(message: SyncDigest, buffer: bytearray) -> None:
    digest = message.digest
    flags = (0x01 if digest.last_key is not None else 0) | (
        0x02 if message.reply else 0
    )
    buffer += _DIGEST_FLAGS.pack(flags)
    if digest.last_key is not None:
        buffer += _ORDER_KEY.pack(*digest.last_key)
    for source, seq in digest.watermarks:
        buffer += _WATERMARK.pack(source, seq)


def _decode_sync_digest(body: bytes, count: int) -> SyncDigest:
    offset = 0
    if offset + _DIGEST_FLAGS.size > len(body):
        raise CodecError("truncated sync digest flags")
    (flags,) = _DIGEST_FLAGS.unpack_from(body, offset)
    offset += _DIGEST_FLAGS.size
    last_key = None
    if flags & 0x01:
        if offset + _ORDER_KEY.size > len(body):
            raise CodecError("truncated sync digest order key")
        last_key = _ORDER_KEY.unpack_from(body, offset)
        offset += _ORDER_KEY.size
    watermarks, offset = _decode_watermarks(body, offset, count, "digest")
    if offset != len(body):
        raise CodecError(f"{len(body) - offset} trailing bytes after sync digest")
    return SyncDigest(
        digest=DeliveryDigest(last_key=last_key, watermarks=watermarks),
        reply=bool(flags & 0x02),
    )


def _encode_sync_request_into(message: SyncRequest, buffer: bytearray) -> None:
    flags = 0x01 if message.after is not None else 0
    buffer += _REQUEST_HEAD.pack(
        message.req_id & 0xFFFFFFFF, message.max_events, message.max_bytes, flags
    )
    if message.after is not None:
        buffer += _ORDER_KEY.pack(*message.after)
    for source, seq in message.watermarks:
        buffer += _WATERMARK.pack(source, seq)


def _decode_sync_request(body: bytes, count: int) -> SyncRequest:
    if _REQUEST_HEAD.size > len(body):
        raise CodecError("truncated sync request header")
    req_id, max_events, max_bytes, flags = _REQUEST_HEAD.unpack_from(body)
    offset = _REQUEST_HEAD.size
    after = None
    if flags & 0x01:
        if offset + _ORDER_KEY.size > len(body):
            raise CodecError("truncated sync request cursor")
        after = _ORDER_KEY.unpack_from(body, offset)
        offset += _ORDER_KEY.size
    watermarks, offset = _decode_watermarks(body, offset, count, "request")
    if offset != len(body):
        raise CodecError(f"{len(body) - offset} trailing bytes after sync request")
    return SyncRequest(
        req_id=req_id,
        after=after,
        watermarks=watermarks,
        max_events=max_events,
        max_bytes=max_bytes,
    )


def _encode_sync_chunk_into(message: SyncChunk, buffer: bytearray) -> int:
    flags = (0x01 if message.more else 0) | (
        0x02 if message.peer_last is not None else 0
    )
    buffer += _CHUNK_HEAD.pack(message.req_id & 0xFFFFFFFF, flags)
    if message.peer_last is not None:
        buffer += _ORDER_KEY.pack(*message.peer_last)
    buffer += _CHECKSUM.pack(message.checksum & 0xFFFFFFFF)
    payload_total = 0
    for event in message.events:
        try:
            payload = json.dumps(event.payload).encode()
        except (TypeError, ValueError) as exc:
            raise CodecError(
                f"payload of event {event.id} is not JSON-serializable: {exc}"
            ) from exc
        buffer += _CHUNK_EVENT.pack(
            event.ts, event.source_id, event.seq, len(payload)
        )
        buffer += payload
        payload_total += len(payload)
    return payload_total


def _decode_sync_chunk(body: bytes, count: int) -> SyncChunk:
    if _CHUNK_HEAD.size > len(body):
        raise CodecError("truncated sync chunk header")
    req_id, flags = _CHUNK_HEAD.unpack_from(body)
    offset = _CHUNK_HEAD.size
    peer_last = None
    if flags & 0x02:
        if offset + _ORDER_KEY.size > len(body):
            raise CodecError("truncated sync chunk peer key")
        peer_last = _ORDER_KEY.unpack_from(body, offset)
        offset += _ORDER_KEY.size
    if offset + _CHECKSUM.size > len(body):
        raise CodecError("truncated sync chunk checksum")
    (checksum,) = _CHECKSUM.unpack_from(body, offset)
    offset += _CHECKSUM.size
    events = []
    for _ in range(count):
        if offset + _CHUNK_EVENT.size > len(body):
            raise CodecError("truncated sync chunk event header")
        ts, source, seq, payload_len = _CHUNK_EVENT.unpack_from(body, offset)
        offset += _CHUNK_EVENT.size
        if offset + payload_len > len(body):
            raise CodecError("truncated sync chunk event payload")
        raw = body[offset : offset + payload_len]
        offset += payload_len
        payload = _json_payload(raw, "corrupt sync chunk payload")
        events.append(
            Event(id=(source, seq), ts=ts, source_id=source, payload=payload)
        )
    if offset != len(body):
        raise CodecError(f"{len(body) - offset} trailing bytes after sync chunk")
    return SyncChunk(
        req_id=req_id,
        events=tuple(events),
        checksum=checksum,
        more=bool(flags & 0x01),
        peer_last=peer_last,
    )


def _decode_watermarks(
    body: bytes, offset: int, count: int, label: str
) -> Tuple[tuple, int]:
    end = offset + count * _WATERMARK.size
    if end > len(body):
        raise CodecError(f"truncated sync {label} watermarks")
    watermarks = tuple(
        _WATERMARK.unpack_from(body, offset + i * _WATERMARK.size)
        for i in range(count)
    )
    return watermarks, end


def _encode_cyclon(entries) -> bytes:
    return b"".join(_CYCLON_ENTRY.pack(peer, age) for peer, age in entries)


def _decode_cyclon(body: bytes, count: int):
    expected = count * _CYCLON_ENTRY.size
    if len(body) != expected:
        raise CodecError(
            f"cyclon body is {len(body)} bytes, expected {expected}"
        )
    return tuple(
        _CYCLON_ENTRY.unpack_from(body, i * _CYCLON_ENTRY.size)
        for i in range(count)
    )


def _encode_id_ball_into(message: IdBall, buffer: bytearray) -> None:
    for ts, source, seq, ttl in message.entries:
        buffer += _ID_ENTRY.pack(ts, source, seq, ttl)


def _decode_id_ball(body, count: int) -> IdBall:
    expected = count * _ID_ENTRY.size
    if len(body) != expected:
        raise CodecError(
            f"id-ball body is {len(body)} bytes, expected {expected}"
        )
    entries = []
    for i in range(count):
        ts, source, seq, ttl = _ID_ENTRY.unpack_from(body, i * _ID_ENTRY.size)
        if ttl < 0:
            raise CodecError(f"negative ttl {ttl}")
        entries.append((ts, source, seq, ttl))
    return IdBall(entries=tuple(entries))


def _encode_payload_request_into(
    message: PayloadRequest, buffer: bytearray
) -> None:
    buffer += _PULL_REQ_HEAD.pack(message.req_id & 0xFFFFFFFF)
    for source, seq in message.ids:
        buffer += _EVENT_ID.pack(source, seq)


def _decode_payload_request(body, count: int) -> PayloadRequest:
    expected = _PULL_REQ_HEAD.size + count * _EVENT_ID.size
    if len(body) != expected:
        raise CodecError(
            f"payload-request body is {len(body)} bytes, expected {expected}"
        )
    (req_id,) = _PULL_REQ_HEAD.unpack_from(body)
    ids = tuple(
        _EVENT_ID.unpack_from(body, _PULL_REQ_HEAD.size + i * _EVENT_ID.size)
        for i in range(count)
    )
    return PayloadRequest(req_id=req_id, ids=ids)


def _encode_payload_response_into(
    message: PayloadResponse, buffer: bytearray
) -> int:
    # Same first-offending-entry size accounting as _encode_ball_into:
    # a response that outgrows the datagram cap is rejected at the event
    # that crosses it, naming how far encoding got.
    buffer += _PULL_RESP_HEAD.pack(
        message.req_id & 0xFFFFFFFF, len(message.missing)
    )
    size = len(buffer) + len(message.missing) * _EVENT_ID.size
    payload_total = 0
    total = len(message.events)
    for index, event in enumerate(message.events):
        try:
            payload = json.dumps(event.payload).encode()
        except (TypeError, ValueError) as exc:
            raise CodecError(
                f"payload of event {event.id} is not JSON-serializable: {exc}"
            ) from exc
        size += _CHUNK_EVENT.size + len(payload)
        if size > MAX_DATAGRAM:
            raise CodecError(
                f"payload-response event {index + 1} of {total} (event "
                f"{event.id}) pushes the encoded message to {size} bytes, "
                f"exceeding the {MAX_DATAGRAM}-byte datagram cap"
            )
        buffer += _CHUNK_EVENT.pack(
            event.ts, event.source_id, event.seq, len(payload)
        )
        buffer += payload
        payload_total += len(payload)
    for source, seq in message.missing:
        buffer += _EVENT_ID.pack(source, seq)
    return payload_total


def _decode_payload_response(body, count: int) -> PayloadResponse:
    if _PULL_RESP_HEAD.size > len(body):
        raise CodecError("truncated payload-response header")
    req_id, missing_count = _PULL_RESP_HEAD.unpack_from(body)
    offset = _PULL_RESP_HEAD.size
    events = []
    for _ in range(count):
        if offset + _CHUNK_EVENT.size > len(body):
            raise CodecError("truncated payload-response event header")
        ts, source, seq, payload_len = _CHUNK_EVENT.unpack_from(body, offset)
        offset += _CHUNK_EVENT.size
        if offset + payload_len > len(body):
            raise CodecError("truncated payload-response event payload")
        raw = body[offset : offset + payload_len]
        offset += payload_len
        payload = _json_payload(raw, "corrupt payload-response payload")
        events.append(
            Event(id=(source, seq), ts=ts, source_id=source, payload=payload)
        )
    end = offset + missing_count * _EVENT_ID.size
    if end > len(body):
        raise CodecError("truncated payload-response missing ids")
    missing = tuple(
        _EVENT_ID.unpack_from(body, offset + i * _EVENT_ID.size)
        for i in range(missing_count)
    )
    if end != len(body):
        raise CodecError(
            f"{len(body) - end} trailing bytes after payload response"
        )
    return PayloadResponse(req_id=req_id, events=tuple(events), missing=missing)
