"""Wire codec for EpTO messages (paper §8.5).

A compact, dependency-free binary encoding for everything EpTO and
Cyclon put on the wire, used by the UDP transport. Deliberately **not**
pickle: decoding untrusted bytes must never execute code, so the format
is fixed-layout structs plus JSON-encoded payloads.

Layout (all integers big-endian):

```
header:   magic "EP" | version u8 | kind u8 | sender i64 | count u32
ball:     count x { ts i64 | source i64 | seq i64 | ttl i32 |
                    payload_len u32 | payload (UTF-8 JSON) }
cyclon:   count x { peer i64 | age i32 }
```

Payloads must be JSON-serializable — the natural constraint for data
crossing process boundaries. Encoded messages are capped at
:data:`MAX_DATAGRAM` bytes so they fit in a UDP datagram; EpTO's
per-round batching keeps balls small at the scales the runtime demo
targets (fragmenting giant balls across datagrams is a transport
concern left out of scope, and flagged loudly instead of silently
truncated).
"""

from __future__ import annotations

import json
import struct
from typing import Tuple, Union

from ..core.errors import TransportError
from ..core.event import Ball, BallEntry, Event, make_ball
from ..pss.cyclon import CyclonRequest, CyclonResponse

#: Largest message the codec will produce (safe single-datagram size).
MAX_DATAGRAM = 60_000

_MAGIC = b"EP"
_VERSION = 1
_KIND_BALL = 1
_KIND_CYCLON_REQ = 2
_KIND_CYCLON_RESP = 3

_HEADER = struct.Struct("!2sBBqI")
_BALL_ENTRY = struct.Struct("!qqqiI")
_CYCLON_ENTRY = struct.Struct("!qi")

#: Everything the codec can carry.
WireMessage = Union[Ball, CyclonRequest, CyclonResponse]


class CodecError(TransportError):
    """Raised on malformed, oversized or incompatible wire data."""


def encode(sender: int, message: WireMessage) -> bytes:
    """Serialize *message* from *sender* into a datagram.

    Raises:
        CodecError: If a payload is not JSON-serializable or the
            encoded message exceeds :data:`MAX_DATAGRAM`.
    """
    buffer = bytearray()
    _encode_into(sender, message, buffer)
    return bytes(buffer)


def encode_into(
    sender: int, message: WireMessage, buffer: bytearray
) -> memoryview:
    """Serialize *message* into *buffer* (cleared first), allocation-free.

    The pooled twin of :func:`encode` for hot send paths: the caller
    owns a reusable ``bytearray`` and receives a read-only view of the
    encoded datagram, valid until the next ``encode_into`` on the same
    buffer. An EpTO round fans one ball out to K peers — with a pooled
    buffer the per-round garbage is zero instead of one fresh ``bytes``
    per round (see :meth:`repro.runtime.udp.UdpNetwork.send_many`).

    Raises:
        CodecError: Same conditions as :func:`encode`; the buffer
            contents are unspecified after a failure.
    """
    del buffer[:]
    _encode_into(sender, message, buffer)
    return memoryview(buffer).toreadonly()


def _encode_into(sender: int, message: WireMessage, buffer: bytearray) -> None:
    if isinstance(message, CyclonRequest):
        kind, count = _KIND_CYCLON_REQ, len(message.entries)
    elif isinstance(message, CyclonResponse):
        kind, count = _KIND_CYCLON_RESP, len(message.entries)
    elif isinstance(message, tuple):
        kind, count = _KIND_BALL, len(message)
    else:
        raise CodecError(f"cannot encode message of type {type(message).__name__}")
    buffer += _HEADER.pack(_MAGIC, _VERSION, kind, sender, count)
    if kind == _KIND_BALL:
        _encode_ball_into(message, buffer)
    else:
        buffer += _encode_cyclon(message.entries)
    if len(buffer) > MAX_DATAGRAM:
        raise CodecError(
            f"encoded message is {len(buffer)} bytes, exceeding the "
            f"{MAX_DATAGRAM}-byte datagram cap"
        )


def decode(datagram: bytes) -> Tuple[int, WireMessage]:
    """Parse a datagram; returns ``(sender, message)``.

    Raises:
        CodecError: On any malformed or version-incompatible input.
    """
    if len(datagram) < _HEADER.size:
        raise CodecError(f"datagram too short ({len(datagram)} bytes)")
    magic, version, kind, sender, count = _HEADER.unpack_from(datagram)
    if magic != _MAGIC:
        raise CodecError(f"bad magic {magic!r}")
    if version != _VERSION:
        raise CodecError(f"unsupported version {version}")
    body = datagram[_HEADER.size :]
    if kind == _KIND_BALL:
        return sender, _decode_ball(body, count)
    if kind == _KIND_CYCLON_REQ:
        return sender, CyclonRequest(entries=_decode_cyclon(body, count))
    if kind == _KIND_CYCLON_RESP:
        return sender, CyclonResponse(entries=_decode_cyclon(body, count))
    raise CodecError(f"unknown message kind {kind}")


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------


def _encode_ball_into(ball: Ball, buffer: bytearray) -> None:
    # The cumulative size is tracked while encoding so an oversized
    # ball is rejected at the first entry that crosses the cap, instead
    # of serializing every remaining entry first and failing at the
    # end. The error names how far encoding got, which is what callers
    # need to size their balls (or split them) correctly.
    size = len(buffer)
    for index, entry in enumerate(ball):
        event = entry.event
        try:
            payload = json.dumps(event.payload).encode()
        except (TypeError, ValueError) as exc:
            raise CodecError(
                f"payload of event {event.id} is not JSON-serializable: {exc}"
            ) from exc
        size += _BALL_ENTRY.size + len(payload)
        if size > MAX_DATAGRAM:
            raise CodecError(
                f"ball entry {index + 1} of {len(ball)} (event {event.id}) "
                f"pushes the encoded message to {size} bytes, exceeding the "
                f"{MAX_DATAGRAM}-byte datagram cap"
            )
        buffer += _BALL_ENTRY.pack(
            event.ts, event.source_id, event.seq, entry.ttl, len(payload)
        )
        buffer += payload


def _decode_ball(body: bytes, count: int) -> Ball:
    entries = []
    offset = 0
    for _ in range(count):
        if offset + _BALL_ENTRY.size > len(body):
            raise CodecError("truncated ball entry header")
        ts, source, seq, ttl, payload_len = _BALL_ENTRY.unpack_from(body, offset)
        offset += _BALL_ENTRY.size
        if offset + payload_len > len(body):
            raise CodecError("truncated ball entry payload")
        raw = body[offset : offset + payload_len]
        offset += payload_len
        try:
            payload = json.loads(raw.decode())
        except (ValueError, UnicodeDecodeError) as exc:
            raise CodecError(f"corrupt payload: {exc}") from exc
        if ttl < 0:
            raise CodecError(f"negative ttl {ttl}")
        entries.append(
            BallEntry(
                Event(id=(source, seq), ts=ts, source_id=source, payload=payload),
                ttl=ttl,
            )
        )
    if offset != len(body):
        raise CodecError(f"{len(body) - offset} trailing bytes after ball")
    return make_ball(entries)


def _encode_cyclon(entries) -> bytes:
    return b"".join(_CYCLON_ENTRY.pack(peer, age) for peer, age in entries)


def _decode_cyclon(body: bytes, count: int):
    expected = count * _CYCLON_ENTRY.size
    if len(body) != expected:
        raise CodecError(
            f"cyclon body is {len(body)} bytes, expected {expected}"
        )
    return tuple(
        _CYCLON_ENTRY.unpack_from(body, i * _CYCLON_ENTRY.size)
        for i in range(count)
    )
