"""Convenience orchestration for asyncio EpTO clusters (paper §8.5)."""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Union

from ..core.config import EpToConfig
from ..core.errors import MembershipError
from ..core.event import Event
from ..pss.base import MembershipDirectory
from ..pss.cyclon import CyclonPss
from ..pss.uniform import UniformViewPss
from ..sync.config import SyncConfig
from . import fastloop
from .node import AsyncEpToNode
from .transport import AsyncNetwork

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..storage.journal import DeliveryJournal
    from ..storage.recovery import RecoveredState


class AsyncCluster:
    """A set of :class:`~repro.runtime.node.AsyncEpToNode` on one loop.

    Mirrors :class:`repro.sim.cluster.SimCluster` for the asyncio
    runtime: node provisioning, PSS wiring (uniform or Cyclon), a
    shared delivery journal, quiescence helpers for tests and examples,
    and crash/respawn support for fault injection
    (:mod:`repro.faults`).

    Args:
        config: EpTO configuration (``round_interval`` in milliseconds).
        network: Message fabric; a lossless zero-latency one is built
            when omitted. Any object with the ``register`` /
            ``unregister`` / ``send`` surface works, including
            :class:`repro.runtime.udp.UdpNetwork` (open its sockets
            with ``await network.open_all()`` before ``start_all``).
        pss: ``"uniform"`` or ``"cyclon"``.
        drift_fraction: Per-round sleep jitter for every node.
        seed: Base seed for node randomness.
        expected_size: System-size hint forwarded to nodes; required
            when ``config.expose_stability`` is set.
        storage_dir: Root directory for durable per-node journals
            (:mod:`repro.storage`). When set, every node appends its
            deliveries and broadcast sequence to
            ``storage_dir/node-<id>/`` and :meth:`respawn_node`
            restores crashed nodes from disk (snapshot + log replay,
            with re-delivery dedupe) instead of starting them blank.
            ``None`` (the default) keeps the cluster fully in-memory
            with zero storage overhead.
        storage_fsync: Log fsync policy for journaled nodes
            (:data:`repro.storage.log.FSYNC_POLICIES`). The default
            ``"rotate"`` is the sweet spot for crash *simulation*:
            every append is flushed to the OS, so in-process "crashes"
            lose nothing.
        sync: Optional :class:`repro.sync.SyncConfig` enabling the
            anti-entropy catch-up protocol on every node (requires
            ``storage_dir``). Respawned nodes then run a blocking
            catch-up against a peer's delivery log *before* rejoining
            dissemination, closing the TTL gap for long outages
            (docs/SYNC.md).
    """

    def __init__(
        self,
        config: EpToConfig,
        network: AsyncNetwork | None = None,
        pss: str = "uniform",
        drift_fraction: float = 0.0,
        seed: int = 0,
        expected_size: Optional[int] = None,
        storage_dir: Union[str, Path, None] = None,
        storage_fsync: str = "rotate",
        sync: Optional[SyncConfig] = None,
    ) -> None:
        if pss not in ("uniform", "cyclon"):
            raise MembershipError(f"unknown PSS kind {pss!r}")
        if sync is not None and storage_dir is None:
            raise MembershipError(
                "anti-entropy sync requires storage_dir (it exchanges "
                "delivery-log suffixes)"
            )
        # Opportunistic loop upgrade: a no-op unless the optional
        # uvloop extra is installed and no loop is running yet.
        fastloop.ensure_uvloop()
        self.config = config
        self.network = network if network is not None else AsyncNetwork(seed=seed)
        self.pss_kind = pss
        self.drift_fraction = drift_fraction
        self.seed = seed
        self.expected_size = expected_size
        self.storage_dir = Path(storage_dir) if storage_dir is not None else None
        self.storage_fsync = storage_fsync
        self.sync = sync
        self.directory = MembershipDirectory()
        self.nodes: Dict[int, AsyncEpToNode] = {}
        #: node id -> events delivered, in order (the shared journal).
        self.deliveries: Dict[int, List[Event]] = {}
        #: node id -> journal indices at which each respawn began, so
        #: checkers can evaluate a recovered node's post-restart suffix.
        self.restart_indices: Dict[int, List[int]] = {}
        #: node id -> live durable journal (only when ``storage_dir``).
        self.journals: Dict[int, "DeliveryJournal"] = {}
        #: node id -> recovery outcomes, one per respawn-from-disk.
        self.recoveries: Dict[int, List["RecoveredState"]] = {}
        #: user delivery callbacks, kept so respawned nodes re-wire them.
        self._on_deliver: Dict[int, Optional[Callable[[Event], None]]] = {}
        self._next_id = 0
        import random as _random

        self._rng = _random.Random(f"{seed}:async-cluster")

    # ------------------------------------------------------------------
    # Provisioning
    # ------------------------------------------------------------------

    def add_node(
        self,
        on_deliver: Callable[[Event], None] | None = None,
    ) -> AsyncEpToNode:
        """Create, register and return one node (call :meth:`start_all`
        or ``node.start()`` afterwards to begin gossiping)."""
        node_id = self._next_id
        self._next_id += 1
        self.deliveries[node_id] = []
        self._on_deliver[node_id] = on_deliver
        return self._provision(node_id, journal=self._open_journal(node_id))

    def add_nodes(self, count: int) -> List[AsyncEpToNode]:
        """Provision *count* nodes."""
        return [self.add_node() for _ in range(count)]

    def node_storage_dir(self, node_id: int) -> Path:
        """The durable storage directory of *node_id*."""
        if self.storage_dir is None:
            raise MembershipError("cluster has no storage_dir configured")
        return self.storage_dir / f"node-{node_id}"

    def _open_journal(
        self, node_id: int, resume: "RecoveredState | None" = None
    ) -> "DeliveryJournal | None":
        if self.storage_dir is None:
            return None
        from ..storage.journal import DeliveryJournal

        journal = DeliveryJournal(
            self.node_storage_dir(node_id),
            fsync=self.storage_fsync,
            resume=resume,
        )
        self.journals[node_id] = journal
        return journal

    def _provision(
        self,
        node_id: int,
        config: EpToConfig | None = None,
        journal: "DeliveryJournal | None" = None,
    ) -> AsyncEpToNode:
        """Build and register a node object for *node_id* (fresh or
        respawned); the delivery journal must already exist."""

        def record(event: Event) -> None:
            self.deliveries[node_id].append(event)
            callback = self._on_deliver.get(node_id)
            if callback is not None:
                callback(event)

        config = config if config is not None else self.config
        if self.pss_kind == "uniform":
            pss = UniformViewPss(
                node_id,
                self.directory,
                rng=self._fork_rng(f"pss:{node_id}"),
            )
        else:
            fanout = config.fanout
            pss = CyclonPss(
                node_id=node_id,
                view_size=2 * fanout,
                shuffle_size=max(1, fanout),
                send=lambda dst, msg: self.network.send(node_id, dst, msg),
                rng=self._fork_rng(f"pss:{node_id}"),
            )
            pss.bootstrap(self.directory.sample(self._rng, 2 * fanout))

        node = AsyncEpToNode(
            node_id=node_id,
            config=config,
            network=self.network,
            peer_sampler=pss,
            on_deliver=record,
            drift_fraction=self.drift_fraction,
            seed=self.seed,
            system_size_hint=self.expected_size,
            journal=journal,
            sync_config=self.sync if journal is not None else None,
        )
        self.directory.add(node_id)
        self.nodes[node_id] = node
        return node

    async def remove_node(self, node_id: int) -> None:
        """Stop and deregister *node_id* (graceful leave)."""
        node = self.nodes.pop(node_id, None)
        if node is None:
            raise MembershipError(f"node {node_id} is not in the cluster")
        await node.stop()
        self.directory.remove(node_id)
        journal = self.journals.pop(node_id, None)
        if journal is not None and not journal.closed:
            journal.close()

    def crash_node(self, node_id: int) -> AsyncEpToNode:
        """Abruptly kill *node_id* (fault injection).

        Unlike :meth:`remove_node`, the corpse stays in :attr:`nodes`
        (flagged ``crashed``) so a supervisor or
        :meth:`respawn_node` can resurrect it under the same identity.
        """
        node = self.nodes.get(node_id)
        if node is None:
            raise MembershipError(f"node {node_id} is not in the cluster")
        node.crash()
        self.directory.remove(node_id)
        return node

    async def respawn_node(
        self, node_id: int, config: EpToConfig | None = None
    ) -> AsyncEpToNode:
        """Replace a crashed node with a fresh process of the same id.

        The replacement keeps the node's delivery journal and user
        callback, resumes the predecessor's broadcast sequence (so
        event ids stay unique), re-registers with the network fabric
        and the PSS directory, and — on socket-backed fabrics — rebinds
        its socket. The caller starts it (``node.start()``).

        On a cluster with ``storage_dir``, the replacement first runs
        :func:`repro.storage.recovery.recover` over the corpse's
        directory: its broadcast sequence resumes from the maximum of
        the in-memory corpse counter and the durable record, its fresh
        journal inherits the recovered dedupe watermark (so re-gossiped
        pre-crash events never reach the callback again), and the
        :class:`~repro.storage.recovery.RecoveredState` is appended to
        :attr:`recoveries` for the caller to restore application state
        from.

        Args:
            config: Optional replacement EpTO configuration — the hook
                a Lemma 7 adaptation uses to respawn under recomputed
                K/TTL (see
                :func:`repro.faults.adaptive.supervisor_adaptation`).
                ``None`` keeps the cluster-wide configuration.
        """
        corpse = self.nodes.get(node_id)
        if corpse is None:
            raise MembershipError(f"node {node_id} is not in the cluster")
        if corpse.running:
            raise MembershipError(f"node {node_id} is still running")
        self.restart_indices.setdefault(node_id, []).append(
            len(self.deliveries[node_id])
        )
        journal = None
        resume_seq = corpse.process.dissemination.issued_sequence
        if self.storage_dir is not None:
            # Two-writer guard: the corpse's journal object survives the
            # simulated crash (in-process fault injection never runs
            # close()), so seal it before the successor opens the log.
            old = self.journals.get(node_id)
            if old is not None and not old.closed:
                old.close()
            from ..storage.recovery import recover

            recovered = recover(node_id, self.node_storage_dir(node_id))
            self.recoveries.setdefault(node_id, []).append(recovered)
            resume_seq = max(resume_seq, recovered.next_seq)
            journal = self._open_journal(node_id, resume=recovered)
        node = self._provision(node_id, config=config, journal=journal)
        node.process.resume_sequence(resume_seq)
        open_socket = getattr(self.network, "open", None)
        if open_socket is not None:
            await open_socket(node_id)
        if node.sync_manager is not None:
            # Repair the TTL-outliving gap before the caller starts the
            # round loop: epidemic deliveries to a still-catching-up
            # node could advance its order mark past the unfetched
            # suffix, turning a transient outage into permanent holes.
            await node.catch_up()
        return node

    def start_all(self) -> None:
        """Start every node's round loop."""
        for node in self.nodes.values():
            node.start()

    async def stop_all(self) -> None:
        """Stop every node (and close its durable journal, if any)."""
        for node in list(self.nodes.values()):
            await node.stop()
        for journal in self.journals.values():
            if not journal.closed:
                journal.close()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def live_ids(self) -> List[int]:
        """Ids of nodes that are neither crashed nor removed."""
        return [nid for nid, node in self.nodes.items() if not node.crashed]

    async def wait_until(
        self,
        predicate: Callable[[], bool],
        timeout: float,
        poll: float = 0.01,
    ) -> bool:
        """Poll *predicate* until true or *timeout* seconds elapse."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while loop.time() < deadline:
            if predicate():
                return True
            await asyncio.sleep(poll)
        return predicate()

    async def wait_for_deliveries(self, count: int, timeout: float) -> bool:
        """Wait until every live (non-crashed) node delivered at least
        *count* events."""
        return await self.wait_until(
            lambda: all(
                len(self.deliveries[node_id]) >= count
                for node_id, node in self.nodes.items()
                if not node.crashed
            ),
            timeout,
        )

    def delivery_payload_sequences(self) -> Dict[int, List[Any]]:
        """Per-node delivered payloads, in delivery order."""
        return {
            node_id: [event.payload for event in events]
            for node_id, events in self.deliveries.items()
        }

    def _fork_rng(self, label: str):
        import random as _random

        return _random.Random(f"{self.seed}:{label}")
