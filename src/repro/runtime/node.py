"""An EpTO node running on the asyncio event loop (paper §8.5).

The exact same :class:`repro.core.process.EpToProcess` object that runs
under the discrete-event simulator is driven here by real timers: a
round task awaiting ``round_interval`` (with optional drift jitter) and
an inbox callback wired to an :class:`~repro.runtime.transport.AsyncNetwork`.
Nothing in the core is aware of the substitution — the demonstration
the paper's §8.5 calls for.

Time base: ``EpToConfig.round_interval`` is interpreted as
*milliseconds* in this runtime (the simulator interprets it as ticks),
and the global-clock oracle samples the loop's monotonic clock in
milliseconds.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import TYPE_CHECKING, Any, Callable, Optional

from ..core.config import EpToConfig
from ..core.event import Event
from ..core.interfaces import PeerSampler
from ..core.process import EpToProcess
from ..sync.config import SyncConfig
from ..sync.manager import SyncManager, epto_chunk_applier
from ..sync.protocol import SYNC_MESSAGE_TYPES
from .transport import AsyncNetwork, AsyncNodeTransport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..storage.journal import DeliveryJournal


def _monotonic_millis() -> int:
    """Monotonic wall time in milliseconds (global-clock source)."""
    return int(time.monotonic() * 1000)


class AsyncEpToNode:
    """One EpTO participant hosted on asyncio.

    Args:
        node_id: Unique node identifier.
        config: EpTO configuration (``round_interval`` in ms here).
        network: Shared in-process async fabric.
        peer_sampler: PSS view (e.g.
            :class:`repro.pss.uniform.UniformViewPss` over the
            cluster's directory, or a :class:`repro.pss.cyclon.CyclonPss`).
        on_deliver: Total-order delivery callback.
        on_out_of_order: Optional §8.2 tagged-delivery callback.
        drift_fraction: Uniform jitter applied to each round sleep.
        seed: Seed for this node's randomness (peer choice, drift).
        journal: Optional :class:`repro.storage.journal.DeliveryJournal`
            making this node's history durable. Every delivery is
            appended before the callback runs, and deliveries the
            journal identifies as pre-crash re-deliveries are dropped
            without reaching the callback. ``None`` (the default) keeps
            the delivery path byte-for-byte identical to a node built
            before this hook existed.
        sync_config: Optional anti-entropy parameters. Requires a
            *journal*; the node then runs a
            :class:`~repro.sync.SyncManager` beside the round loop —
            periodic digest probes plus cursor-paginated pulls — and
            gains :meth:`catch_up` for blocking post-recovery repair.
    """

    def __init__(
        self,
        node_id: int,
        config: EpToConfig,
        network: AsyncNetwork,
        peer_sampler: PeerSampler,
        on_deliver: Callable[[Event], None],
        on_out_of_order: Callable[[Event], None] | None = None,
        drift_fraction: float = 0.0,
        seed: int = 0,
        system_size_hint: int | None = None,
        journal: "DeliveryJournal | None" = None,
        sync_config: SyncConfig | None = None,
    ) -> None:
        self.node_id = node_id
        self.config = config
        self.network = network
        self.journal = journal
        self._drift_fraction = drift_fraction
        self._rng = random.Random(f"{seed}:async:{node_id}")
        if journal is not None:
            user_deliver = on_deliver

            def journaled_deliver(event: Event) -> None:
                if journal.record_delivery(event):
                    user_deliver(event)

            on_deliver = journaled_deliver
        if config.mode == "lazy":
            if sync_config is not None:
                raise ValueError(
                    "anti-entropy sync is not supported in lazy mode "
                    "(repaired events bypass the payload store)"
                )
            from ..lazy.process import LazyEpToProcess

            self.process: Any = LazyEpToProcess(
                node_id=node_id,
                config=config,
                peer_sampler=peer_sampler,
                transport=AsyncNodeTransport(network),
                on_deliver=on_deliver,
                on_out_of_order=on_out_of_order,
                time_source=_monotonic_millis,
                rng=self._rng,
                system_size_hint=system_size_hint,
            )
        else:
            self.process = EpToProcess(
                node_id=node_id,
                config=config,
                peer_sampler=peer_sampler,
                transport=AsyncNodeTransport(network),
                on_deliver=on_deliver,
                on_out_of_order=on_out_of_order,
                time_source=_monotonic_millis,
                rng=self._rng,
                system_size_hint=system_size_hint,
            )
        self._task: Optional[asyncio.Task] = None
        self._shuffle_task: Optional[asyncio.Task] = None
        self._sync_task: Optional[asyncio.Task] = None
        self._pss = peer_sampler
        self._crashed = False
        self.sync_manager: Optional[SyncManager] = None
        if sync_config is not None:
            if journal is None:
                raise ValueError("sync_config requires a journal")
            self.sync_manager = SyncManager(
                node_id=node_id,
                journal=journal,
                send=lambda dst, message: network.send(node_id, dst, message),
                peer_sampler=peer_sampler,
                apply_events=epto_chunk_applier(self.process),
                config=sync_config,
            )
        network.register(node_id, self._handle_message)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the periodic round (and Cyclon shuffle) tasks."""
        loop = asyncio.get_running_loop()
        self._crashed = False
        if self._task is None or self._task.done():
            self._task = loop.create_task(self._round_loop())
            self._task.add_done_callback(self._on_round_task_done)
        # Any self-maintaining PSS (Cyclon, HyParView, Brahms) gets a
        # shuffle task; the idealized uniform view has no shuffle.
        if callable(getattr(self._pss, "shuffle", None)) and (
            self._shuffle_task is None or self._shuffle_task.done()
        ):
            self._shuffle_task = loop.create_task(self._shuffle_loop())
        if self.sync_manager is not None and (
            self._sync_task is None or self._sync_task.done()
        ):
            self._sync_task = loop.create_task(self._sync_loop())

    async def stop(self) -> None:
        """Cancel the periodic tasks and leave the network."""
        for attr in ("_task", "_shuffle_task", "_sync_task"):
            task = getattr(self, attr)
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
                setattr(self, attr, None)
        self._crashed = False
        self.network.unregister(self.node_id)

    def crash(self) -> None:
        """Simulate abrupt process death (fault injection).

        Kills the periodic tasks and drops the inbox without the
        orderly shutdown of :meth:`stop`. The node object survives so a
        :class:`repro.faults.supervisor.NodeSupervisor` (or
        :meth:`repro.runtime.cluster.AsyncCluster.respawn_node`) can
        observe the corpse and bring a replacement up under the same
        identity.
        """
        self._crashed = True
        for attr in ("_task", "_shuffle_task", "_sync_task"):
            task = getattr(self, attr)
            if task is not None:
                task.cancel()
        self.network.unregister(self.node_id)

    @property
    def running(self) -> bool:
        """Whether the round loop is active."""
        return self._task is not None and not self._task.done()

    @property
    def crashed(self) -> bool:
        """Whether the node died (injected crash or round-task error)
        rather than being deliberately stopped."""
        return self._crashed

    def _on_round_task_done(self, task: asyncio.Task) -> None:
        # Self-detection of an unexpected death: a round task that
        # finishes with an exception (not a cancellation) means the
        # process is effectively dead — leave the network so peers'
        # sends fail like against a crashed process, and flag the
        # corpse for the supervisor.
        if task.cancelled() or task.exception() is None:
            return
        self._crashed = True
        self.network.unregister(self.node_id)
        if self._shuffle_task is not None:
            self._shuffle_task.cancel()

    # ------------------------------------------------------------------
    # EpTO surface
    # ------------------------------------------------------------------

    def broadcast(self, payload: Any = None) -> Event:
        """EpTO-broadcast *payload* from this node."""
        event = self.process.broadcast(payload)
        if self.journal is not None:
            # Persist the issued sequence before the ball leaves, so a
            # replacement never reuses this (source, seq) id even when
            # the event was still in flight at crash time.
            self.journal.record_broadcast(event)
        return event

    @property
    def delivered_count(self) -> int:
        """Events delivered in total order so far."""
        return self.process.delivered_count

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _handle_message(self, src: int, message: Any) -> None:
        # Cyclon traffic (when the PSS is a CyclonPss), overlay
        # maintenance (HyParView/Brahms), lazy-push traffic (when the
        # process is lazy), anti-entropy traffic (when a SyncManager
        # runs), or a ball.
        from ..lazy.protocol import LAZY_MESSAGE_TYPES
        from ..pss import OVERLAY_MESSAGE_TYPES
        from ..pss.cyclon import CyclonRequest, CyclonResponse

        if isinstance(message, CyclonRequest):
            self._pss.handle_request(src, message)  # type: ignore[attr-defined]
        elif isinstance(message, CyclonResponse):
            self._pss.handle_response(src, message)  # type: ignore[attr-defined]
        elif isinstance(message, OVERLAY_MESSAGE_TYPES):
            overlay = getattr(self._pss, "handle_message", None)
            if overlay is not None:
                overlay(src, message)
            # else: overlay chatter at a uniform/cyclon node; drop
        elif isinstance(message, LAZY_MESSAGE_TYPES):
            lazy = getattr(self.process, "on_lazy_message", None)
            if lazy is not None:
                lazy(src, message)
            # else: stray lazy traffic at an eager node; drop
        elif isinstance(message, SYNC_MESSAGE_TYPES):
            if self.sync_manager is not None:
                self.sync_manager.on_message(src, message)
            # else: not sync-enabled; ignore stray anti-entropy traffic
        else:
            self.process.on_ball(message)

    async def _round_loop(self) -> None:
        interval_s = self.config.round_interval / 1000.0
        while True:
            sleep_for = interval_s
            if self._drift_fraction > 0.0:
                jitter = self._rng.uniform(-self._drift_fraction, self._drift_fraction)
                sleep_for = max(0.001, interval_s * (1.0 + jitter))
            await asyncio.sleep(sleep_for)
            self.process.on_round()

    async def _shuffle_loop(self) -> None:
        interval_s = self.config.round_interval / 1000.0
        while True:
            await asyncio.sleep(interval_s)
            self._pss.shuffle()  # type: ignore[attr-defined]

    async def _sync_loop(self) -> None:
        # The manager counts rounds itself (probe every interval_rounds,
        # request timeouts in rounds), so it is ticked once per round
        # interval — same time base as the simulator's PeriodicTask.
        interval_s = self.config.round_interval / 1000.0
        while True:
            await asyncio.sleep(interval_s)
            self.sync_manager.on_round()

    async def catch_up(self, max_rounds: float | None = None) -> bool:
        """Run blocking anti-entropy until converged or out of budget.

        Drives the sync manager directly — round tasks need not be
        running, which is the point: a respawned node repairs its
        TTL-outliving gap *before* rejoining dissemination, so epidemic
        deliveries cannot advance its order mark past the still-missing
        suffix. Returns whether the node caught up (a digest exchange
        concluded with no peer ahead) within ``max_rounds`` round
        intervals (default: ``sync_config.catch_up_rounds``).
        """
        manager = self.sync_manager
        if manager is None:
            return True
        budget = max_rounds if max_rounds is not None else manager.config.catch_up_rounds
        interval_s = self.config.round_interval / 1000.0
        manager.kick()
        rounds = 0
        while rounds < budget:
            manager.on_round()
            rounds += 1
            await asyncio.sleep(interval_s)
            if manager.caught_up:
                return True
        return manager.caught_up

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AsyncEpToNode(id={self.node_id}, running={self.running}, "
            f"delivered={self.delivered_count})"
        )
