"""Asyncio runtime: the paper §8.5 "real system implementation".

Runs the unmodified EpTO core on real timers and an asynchronous
in-process message fabric (latency and loss injectable), demonstrating
that nothing in :mod:`repro.core` depends on the simulator.
"""

from .cluster import AsyncCluster
from .codec import MAX_DATAGRAM, CodecError, decode, encode
from .fastloop import ensure_uvloop, uvloop_available
from .node import AsyncEpToNode
from .transport import AsyncNetwork, AsyncNetworkStats, AsyncNodeTransport
from .udp import UdpNetwork, UdpStats

__all__ = [
    "AsyncCluster",
    "AsyncEpToNode",
    "AsyncNetwork",
    "AsyncNetworkStats",
    "AsyncNodeTransport",
    "CodecError",
    "MAX_DATAGRAM",
    "UdpNetwork",
    "UdpStats",
    "decode",
    "encode",
    "ensure_uvloop",
    "uvloop_available",
]
