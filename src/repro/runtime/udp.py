"""UDP transport: EpTO over real datagram sockets (paper §8.5).

Exposes the same three-method surface as
:class:`~repro.runtime.transport.AsyncNetwork` (``register`` /
``unregister`` / ``send``) so :class:`~repro.runtime.node.AsyncEpToNode`
runs over genuine loopback UDP without modification: each registered
node gets its own socket, messages are serialized with
:mod:`repro.runtime.codec`, and malformed datagrams are counted and
dropped rather than crashing the node — exactly how an internet-facing
gossip process must behave.

Lifecycle: ``register`` records the inbox synchronously (so node
construction stays synchronous); ``await open_all()`` binds the sockets
before starting the nodes; ``await close()`` tears everything down.
Sends to nodes whose socket is not open yet are counted as drops — UDP
gives no delivery guarantee anyway, and EpTO is built for exactly that.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from ..core.errors import MembershipError
from .codec import CodecError, decode, encode

#: Inbox callback: ``handler(src, message)``.
UdpMessageHandler = Callable[[int, Any], None]


@dataclass(slots=True)
class UdpStats:
    """Counters for the UDP fabric."""

    sent: int = 0
    delivered: int = 0
    dropped_unopened: int = 0
    dropped_encode: int = 0
    dropped_malformed: int = 0


class _NodeProtocol(asyncio.DatagramProtocol):
    """Per-node datagram protocol: decode and dispatch."""

    def __init__(self, network: "UdpNetwork", node_id: int) -> None:
        self._network = network
        self._node_id = node_id

    def datagram_received(self, data: bytes, addr) -> None:
        self._network._on_datagram(self._node_id, data)

    def error_received(self, exc) -> None:  # pragma: no cover - OS-dependent
        pass


class UdpNetwork:
    """Loopback UDP fabric hosting any number of in-process nodes.

    Args:
        host: Interface to bind (default loopback).
    """

    def __init__(self, host: str = "127.0.0.1") -> None:
        self.host = host
        self.stats = UdpStats()
        self._handlers: Dict[int, UdpMessageHandler] = {}
        self._transports: Dict[int, asyncio.DatagramTransport] = {}
        self._addresses: Dict[int, Tuple[str, int]] = {}

    # ------------------------------------------------------------------
    # AsyncNetwork-compatible surface
    # ------------------------------------------------------------------

    def register(self, node_id: int, handler: UdpMessageHandler) -> None:
        """Record *handler* as the inbox of *node_id* (socket bound by
        :meth:`open` / :meth:`open_all`)."""
        if node_id in self._handlers:
            raise MembershipError(f"node {node_id} is already registered")
        self._handlers[node_id] = handler

    def unregister(self, node_id: int) -> None:
        """Forget *node_id* and close its socket if open."""
        self._handlers.pop(node_id, None)
        transport = self._transports.pop(node_id, None)
        self._addresses.pop(node_id, None)
        if transport is not None:
            transport.close()

    def send(self, src: int, dst: int, message: Any) -> None:
        """Encode and ship one datagram from *src* to *dst*."""
        self.stats.sent += 1
        sender_transport = self._transports.get(src)
        address = self._addresses.get(dst)
        if sender_transport is None or address is None:
            self.stats.dropped_unopened += 1
            return
        try:
            datagram = encode(src, message)
        except CodecError:
            self.stats.dropped_encode += 1
            return
        sender_transport.sendto(datagram, address)

    # ------------------------------------------------------------------
    # Socket lifecycle
    # ------------------------------------------------------------------

    async def open(self, node_id: int) -> Tuple[str, int]:
        """Bind *node_id*'s socket on an ephemeral port; returns it."""
        if node_id not in self._handlers:
            raise MembershipError(f"node {node_id} is not registered")
        if node_id in self._transports:
            return self._addresses[node_id]
        loop = asyncio.get_event_loop()
        transport, _ = await loop.create_datagram_endpoint(
            lambda: _NodeProtocol(self, node_id),
            local_addr=(self.host, 0),
        )
        address = transport.get_extra_info("sockname")[:2]
        self._transports[node_id] = transport
        self._addresses[node_id] = (address[0], address[1])
        return self._addresses[node_id]

    async def open_all(self) -> None:
        """Bind a socket for every registered node."""
        for node_id in list(self._handlers):
            await self.open(node_id)

    async def close(self) -> None:
        """Close every socket."""
        for node_id in list(self._transports):
            self._transports.pop(node_id).close()
        self._addresses.clear()
        # Give the loop one tick to process the closes.
        await asyncio.sleep(0)

    def address_of(self, node_id: int) -> Optional[Tuple[str, int]]:
        """The (host, port) of *node_id*, if its socket is open."""
        return self._addresses.get(node_id)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _on_datagram(self, node_id: int, data: bytes) -> None:
        handler = self._handlers.get(node_id)
        if handler is None:
            return
        try:
            sender, message = decode(data)
        except CodecError:
            self.stats.dropped_malformed += 1
            return
        self.stats.delivered += 1
        handler(sender, message)
