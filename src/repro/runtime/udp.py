"""UDP transport: EpTO over real datagram sockets (paper §8.5).

Exposes the same three-method surface as
:class:`~repro.runtime.transport.AsyncNetwork` (``register`` /
``unregister`` / ``send``) so :class:`~repro.runtime.node.AsyncEpToNode`
runs over genuine loopback UDP without modification: each registered
node gets its own socket, messages are serialized with
:mod:`repro.runtime.codec`, and malformed datagrams are counted and
dropped rather than crashing the node — exactly how an internet-facing
gossip process must behave.

Lifecycle: ``register`` records the inbox synchronously (so node
construction stays synchronous); ``await open_all()`` binds the sockets
before starting the nodes; ``await close()`` tears everything down.
Sends to nodes whose socket is not open yet are counted as drops — UDP
gives no delivery guarantee anyway, and EpTO is built for exactly that.

Fault injection surface (driven by
:class:`repro.faults.runtime_injector.AsyncFaultInjector`):

* :meth:`UdpNetwork.set_partition` / :meth:`UdpNetwork.heal_partition`
  drop datagrams crossing partition groups at send time;
* :meth:`UdpNetwork.set_loss_burst` drops outgoing datagrams with a
  given probability for a wall-clock window;
* :meth:`UdpNetwork.set_corruption` mangles outgoing datagrams with a
  given probability (garbled magic, truncation, or a corrupted entry
  count), exercising the receiver-side ``dropped_malformed`` defence
  with real bytes on real sockets, in the spirit of update diffusion
  under Byzantine payload corruption (Malkhi et al.);
* :meth:`UdpNetwork.set_latency_spike` defers ``sendto`` calls for a
  wall-clock window — real sockets cannot stretch the wire, but a
  sender-side delay is indistinguishable to the receiver, so the full
  :class:`~repro.faults.schedule.FaultSchedule` vocabulary runs over
  genuine UDP.

The EpTO fan-out uses :meth:`UdpNetwork.send_many`: one ball is
serialized once per round and the same bytes are shipped to all K
peers (``stats.encoded_datagrams`` vs ``stats.sent`` shows the saving).
Serialization writes into a pooled ``bytearray`` owned by the fabric
(:func:`repro.runtime.codec.encode_into`), so the steady-state send
path allocates no fresh ``bytes`` object per round; latency-spiked
sends lease a reusable buffer from a small pool instead of copying,
and only corrupted datagrams take a true owned copy.

Syscall batching (ROADMAP: wire speed): by default the fabric binds
raw non-blocking sockets driven by :mod:`repro.runtime.batchio` — a
round's K-peer fan-out is one ``sendmmsg(2)`` and an inbound burst is
drained by one ``recvmmsg(2)``, with receive bytes handed to the codec
as zero-copy ``memoryview`` slices. ``batch=False`` restores the
pre-batching asyncio datagram endpoints (the equivalence baseline);
``batch="sendto"`` (or any :data:`~repro.runtime.batchio.SEND_TIERS`
name) forces a specific send tier. Platforms whose event loop cannot
watch raw file descriptors (Proactor) fall back to asyncio endpoints
automatically. ``stats.syscalls_send`` / ``stats.syscalls_recv``
against ``stats.sent`` / ``stats.delivered`` show the batching factor.
"""

from __future__ import annotations

import asyncio
import random
import socket
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..auth.authenticator import SignedBall
from ..auth.guard import BallGuard
from ..core.errors import MembershipError
from . import batchio, fastloop
from .codec import (
    CodecError,
    CodecVersionError,
    decode,
    encode_into,
    last_encode_payload_bytes,
)

#: Inbox callback: ``handler(src, message)``.
UdpMessageHandler = Callable[[int, Any], None]

#: Sentinel returned by admission when an entire datagram is rejected.
_REJECTED = object()


@dataclass(slots=True)
class UdpStats:
    """Counters for the UDP fabric.

    The receive-side rejection counters are split by cause so a drill
    can tell line noise from hostile traffic: ``dropped_malformed``
    (undecodable bytes), ``dropped_bad_version`` (well-framed datagram
    from an incompatible peer), ``dropped_bad_signature`` /
    ``dropped_unknown_key`` / ``dropped_unsigned`` (authentication
    rejections; per *entry* for signed balls, since one datagram can
    mix admitted and forged entries). :attr:`dropped_undecodable` is
    the old single-counter aggregate, kept as a derived property.
    """

    sent: int = 0
    delivered: int = 0
    dropped_unopened: int = 0
    dropped_encode: int = 0
    dropped_malformed: int = 0
    dropped_bad_version: int = 0
    dropped_bad_signature: int = 0
    dropped_unknown_key: int = 0
    dropped_unsigned: int = 0
    dropped_partition: int = 0
    dropped_burst: int = 0
    corrupted: int = 0
    delayed: int = 0
    transport_errors: int = 0
    encoded_datagrams: int = 0
    #: Send-side syscalls. With batching, a whole fan-out counts one;
    #: on asyncio endpoints each ``sendto`` counts one (an approximation
    #: when the transport buffers, which loopback never does).
    syscalls_send: int = 0
    #: Receive-side syscalls (wakeups on asyncio endpoints).
    syscalls_recv: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    #: Encode-side byte split: JSON application payload vs everything
    #: else (headers, entry metadata, MACs, watermarks), counted per
    #: datagram times its fan-out at encode time — before the fault
    #: surfaces, so the two sum to the bytes *offered* to the wire.
    #: This is the pair the lazy-push benchmark compares across modes
    #: (metadata-only id-balls vs full eager balls; docs/OVERLAY.md).
    metadata_bytes_sent: int = 0
    payload_bytes_sent: int = 0

    @property
    def dropped_undecodable(self) -> int:
        """Aggregate of every receive-side rejection — the value the
        pre-split ``dropped_malformed`` counter used to report."""
        return (
            self.dropped_malformed
            + self.dropped_bad_version
            + self.dropped_bad_signature
            + self.dropped_unknown_key
            + self.dropped_unsigned
        )


class _NodeProtocol(asyncio.DatagramProtocol):
    """Per-node datagram protocol: decode and dispatch."""

    def __init__(self, network: "UdpNetwork", node_id: int) -> None:
        self._network = network
        self._node_id = node_id

    def datagram_received(self, data: bytes, addr) -> None:
        # One wakeup per datagram: the unbatched receive cost model.
        self._network.stats.syscalls_recv += 1
        self._network._on_datagram(self._node_id, data)

    def error_received(self, exc) -> None:
        # OS-level send/receive errors (e.g. ICMP port unreachable).
        # UDP gives no guarantees, so these are counted, not raised.
        self._network.stats.transport_errors += 1


#: Kernel receive-buffer request for raw batched sockets. A burst of
#: n-1 balls at paper scale outruns the default 212 KiB rmem on many
#: distros; the kernel clamps this to ``rmem_max`` silently.
_RECV_SOCKET_BUFFER = 1 << 21

#: Cap on pooled deferred-send buffers kept alive between latency
#: spikes. Spikes defer at most a few rounds of fan-out at once; beyond
#: the cap, buffers are simply dropped for the GC.
_DEFERRED_POOL_LIMIT = 64


class _RawEndpoint:
    """A raw non-blocking UDP socket driven straight off the event loop.

    Replaces the asyncio datagram transport when batching is enabled:
    sends go through a :class:`~repro.runtime.batchio.BatchSender`
    (whole fan-out = one ``sendmmsg``) and readable wakeups drain the
    socket through a :class:`~repro.runtime.batchio.BatchReceiver`
    (burst = one ``recvmmsg``), handing each datagram to the fabric as
    a zero-copy ``memoryview`` valid only for the duration of the
    handler call. Exposes the slice of the transport surface the fabric
    and its tests rely on: ``sendto`` / ``is_closing`` / ``close``.
    """

    is_raw = True

    def __init__(
        self,
        network: "UdpNetwork",
        node_id: int,
        sock: socket.socket,
        loop: asyncio.AbstractEventLoop,
        send_tier: Optional[str],
        recv_tier: Optional[str],
    ) -> None:
        self._network = network
        self._node_id = node_id
        self._sock = sock
        self._loop = loop
        self._sender = batchio.BatchSender(send_tier)
        self._receiver = batchio.BatchReceiver(recv_tier)
        self._closed = False
        # Raises NotImplementedError on loops without FD watching
        # (Proactor); the caller falls back to asyncio endpoints.
        loop.add_reader(sock.fileno(), self._on_readable)

    def sendto(self, data, address) -> None:
        """Ship one datagram now; kernel refusals are counted drops."""
        if self._closed:
            return
        stats = self._network.stats
        stats.syscalls_send += 1
        if self._sender.send_one(self._sock, data, address):
            stats.bytes_sent += len(data)
        else:
            stats.transport_errors += 1

    def send_batch(self, items) -> None:
        """Ship ``(buffer, address)`` pairs in as few syscalls as the
        platform tier allows."""
        if self._closed or not items:
            return
        stats = self._network.stats
        sender = self._sender
        syscalls_before = sender.syscalls
        rejected_before = sender.rejected
        bytes_before = sender.bytes
        sender.send_batch(self._sock, items)
        stats.syscalls_send += sender.syscalls - syscalls_before
        stats.transport_errors += sender.rejected - rejected_before
        stats.bytes_sent += sender.bytes - bytes_before

    def send_fanout(self, buf, addresses) -> None:
        """Ship one buffer to every address — the per-round fan-out,
        specialized past the generic pair-list path."""
        if self._closed or not addresses:
            return
        stats = self._network.stats
        sender = self._sender
        syscalls_before = sender.syscalls
        rejected_before = sender.rejected
        bytes_before = sender.bytes
        sender.send_fanout(self._sock, buf, addresses)
        stats.syscalls_send += sender.syscalls - syscalls_before
        stats.transport_errors += sender.rejected - rejected_before
        stats.bytes_sent += sender.bytes - bytes_before

    def _on_readable(self) -> None:
        stats = self._network.stats
        receiver = self._receiver
        while not self._closed:
            syscalls_before = receiver.syscalls
            views = receiver.receive(self._sock)
            stats.syscalls_recv += receiver.syscalls - syscalls_before
            if not views:
                return
            for view in views:
                # The view dies with this call: _on_datagram's codec
                # materializes everything that escapes the handler.
                self._network._on_datagram(self._node_id, view)
                if self._closed:
                    return

    def is_closing(self) -> bool:
        return self._closed

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._loop.remove_reader(self._sock.fileno())
        except (OSError, ValueError):  # pragma: no cover - loop closed
            pass
        self._sock.close()


#: Base sender-side delay (seconds) a latency spike multiplies when the
#: fabric's own artificial ``latency`` is zero. Real loopback latency
#: is effectively unmeasurable, so spikes need a non-zero unit to
#: stretch; one millisecond is large against loopback and small against
#: any realistic round interval.
DEFAULT_SPIKE_BASE = 0.001


class UdpNetwork:
    """Loopback UDP fabric hosting any number of in-process nodes.

    Args:
        host: Interface to bind (default loopback).
        seed: Seed for the fault-injection randomness (loss bursts,
            corruption, latency jitter).
        latency: Optional artificial sender-side mean delay in seconds
            applied to every outgoing datagram (each send draws a
            uniformly random delay in ``[0.5, 1.5] * latency``). Real
            sockets cannot stretch the wire, but delaying ``sendto``
            is observationally identical to the receiver — this is
            what lets :class:`~repro.faults.schedule.LatencySpike`
            actions run over genuine UDP.
        authenticator: Optional
            :class:`~repro.auth.authenticator.HmacAuthenticator`. When
            set, outgoing balls are sealed and shipped as signed balls
            (codec kind 7) and incoming balls are verified entry by
            entry — forged entries are counted in
            ``dropped_bad_signature`` / ``dropped_unknown_key`` /
            ``dropped_unsigned`` and never reach the node. Plain
            unsigned balls are rejected wholesale on an authenticating
            fabric. ``None`` (default) keeps the fabric tolerant: it
            still *reads* signed balls from authenticating peers,
            stripping the signatures.
        batch: Syscall batching mode. ``"auto"`` (default) binds raw
            non-blocking sockets using the best
            :mod:`~repro.runtime.batchio` tiers the platform offers,
            falling back to asyncio endpoints on loops that cannot
            watch file descriptors. ``False`` forces the pre-batching
            asyncio datagram endpoints (the equivalence baseline). A
            send-tier name (``"sendmmsg"`` / ``"sendmsg"`` /
            ``"sendto"``) forces raw sockets on that tier — forcing an
            unavailable tier raises ``ValueError``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        seed: int = 0,
        latency: float = 0.0,
        authenticator=None,
        batch: object = "auto",
    ) -> None:
        # Opportunistic loop upgrade: a no-op unless the optional
        # uvloop extra is installed and no loop is running yet.
        fastloop.ensure_uvloop()
        self.host = host
        self.latency = float(latency)
        self.stats = UdpStats()
        if batch is False or batch is None:
            self._batch_enabled = False
            self._send_tier: Optional[str] = None
            self._recv_tier: Optional[str] = None
        elif batch in ("auto", True):
            self._batch_enabled = True
            self._send_tier = batchio.best_send_tier()
            self._recv_tier = batchio.best_recv_tier()
        else:
            # A forced tier must never silently degrade (ValueError).
            self._send_tier = batchio.select_send_tier(str(batch))
            self._recv_tier = batchio.best_recv_tier()
            self._batch_enabled = True
        self._guard = BallGuard(authenticator) if authenticator else None
        self._adversary = None
        self._handlers: Dict[int, UdpMessageHandler] = {}
        # Callbacks run at the top of close(), before any socket dies:
        # layers stacked on the fabric (the multi-topic service demux)
        # use this to cancel their periodic tasks while the loop can
        # still process the cancellations — see docs/SERVICE.md.
        self._close_listeners: List[Callable[[], None]] = []
        # Endpoint per node: _RawEndpoint when batching, else an
        # asyncio DatagramTransport — both expose sendto/is_closing/
        # close, which is all the fabric (and the test rigs) touch.
        self._transports: Dict[int, Any] = {}
        self._addresses: Dict[int, Tuple[str, int]] = {}
        self._rng = random.Random(seed)
        # Shared encode pool: every outgoing datagram is serialized
        # into this one buffer and fanned out as a read-only view, so
        # the hot path is allocation-free. Any send that outlives the
        # current dispatch (delayed or corrupted datagrams) must take
        # its own storage — delayed sends lease it from the pool below.
        self._encode_buffer = bytearray()
        # Reusable buffers for latency-spiked (deferred) sends: leased
        # in _route, returned by _sendto_later once the kernel (raw
        # sockets, synchronously) or the transport (asyncio endpoints
        # copy before buffering) no longer references the bytes.
        self._deferred_pool: List[bytearray] = []
        # Per-slot encode buffers for send_bundle: a bundle's datagrams
        # must all be alive for one sendmmsg, so the single shared
        # encode buffer cannot serve them. Grows to the largest bundle
        # ever shipped (bounded by cluster size) and is reused forever.
        self._bundle_pool: List[bytearray] = []
        # Partition: node id -> group label (None group is implicit).
        self._partition: Dict[int, object] = {}
        self._partitioned = False
        # Fault windows, in loop.time() seconds (None = open-ended).
        self._burst_rate = 0.0
        self._burst_until = 0.0
        self._corrupt_rate = 0.0
        self._corrupt_until: Optional[float] = 0.0
        self._spike_factor = 1.0
        self._spike_until = 0.0

    # ------------------------------------------------------------------
    # AsyncNetwork-compatible surface
    # ------------------------------------------------------------------

    def register(self, node_id: int, handler: UdpMessageHandler) -> None:
        """Record *handler* as the inbox of *node_id* (socket bound by
        :meth:`open` / :meth:`open_all`)."""
        if node_id in self._handlers:
            raise MembershipError(f"node {node_id} is already registered")
        self._handlers[node_id] = handler

    def unregister(self, node_id: int) -> None:
        """Forget *node_id* and close its socket if open."""
        self._handlers.pop(node_id, None)
        transport = self._transports.pop(node_id, None)
        self._addresses.pop(node_id, None)
        if transport is not None:
            transport.close()

    def is_registered(self, node_id: int) -> bool:
        """Whether *node_id* currently has an inbox."""
        return node_id in self._handlers

    def send(self, src: int, dst: int, message: Any) -> None:
        """Encode and ship one datagram from *src* to *dst*."""
        try:
            datagram = self._encode(src, self._outbound(src, dst, message))
        except CodecError:
            self.stats.sent += 1
            self.stats.dropped_encode += 1
            return
        self._account_split(len(datagram), copies=1)
        self._dispatch(src, dst, datagram)

    def send_many(self, src: int, dsts, message: Any) -> None:
        """Encode *message* once, then ship the same bytes to every id
        in *dsts*.

        This is the encode-once fan-out path: an EpTO round sends one
        identical ball to K peers, so serialization cost is paid once
        per round instead of once per destination. Partitions, loss
        bursts, corruption and latency spikes still apply per
        destination (corruption mangles a per-destination copy — the
        shared buffer is never mutated). A ball from a node under a
        hostile :meth:`set_adversary` behavior loses the optimisation:
        the adversary may ship a *different* mutation to each
        destination, so those sends encode per destination.
        """
        if self._adversary is not None and self._adversary.is_hostile(src):
            for dst in dsts:
                self.send(src, dst, message)
            return
        try:
            datagram = self._encode(src, self._outbound(src, None, message))
        except CodecError:
            for _ in dsts:
                self.stats.sent += 1
                self.stats.dropped_encode += 1
            return
        self._account_split(len(datagram), copies=len(dsts))
        endpoint = self._transports.get(src)
        if getattr(endpoint, "is_raw", False):
            stats = self.stats
            if self._fault_free():
                # Wire-speed fast path: with every fault surface idle,
                # per-destination routing reduces to an address lookup
                # (and draws nothing from the fault RNG, so seeded runs
                # match the routed path bit for bit). The shared
                # read-only view cannot be pinned by ctypes; the batch
                # ships the writable pool buffer it wraps.
                addresses: List[Tuple[str, int]] = []
                lookup = self._addresses.get
                append = addresses.append
                stats.sent += len(dsts)
                for dst in dsts:
                    address = lookup(dst)
                    if address is None:
                        stats.dropped_unopened += 1
                        continue
                    append(address)
                endpoint.send_fanout(self._encode_buffer, addresses)
            else:
                # Batched fan-out under faults: route every destination
                # first (faults apply per destination exactly as on the
                # unbatched path), then ship the survivors together.
                items = []
                for dst in dsts:
                    route = self._route(src, dst, datagram)
                    if route is None:
                        continue
                    payload, address = route
                    if payload is datagram:
                        payload = self._encode_buffer
                    items.append((payload, address))
                endpoint.send_batch(items)
        else:
            for dst in dsts:
                self._dispatch(src, dst, datagram)

    def send_bundle(self, src: int, items) -> None:
        """Encode every ``(dst, message)`` pair in *items* and ship the
        lot in as few syscalls as the platform allows.

        The multi-topic service's flush path: one host's per-tick
        traffic — envelopes for several destinations, each with its own
        bytes — becomes a single ``sendmmsg`` on batching fabrics. The
        messages are *distinct* (unlike :meth:`send_many`'s one-ball
        fan-out), so each leases its own slot from the bundle pool.
        Under active fault surfaces, or on asyncio endpoints, the
        bundle degrades to per-item :meth:`send` calls so partitions,
        bursts, corruption and spikes keep their per-datagram
        semantics.
        """
        endpoint = self._transports.get(src)
        if not getattr(endpoint, "is_raw", False) or not self._fault_free():
            for dst, message in items:
                self.send(src, dst, message)
            return
        stats = self.stats
        lookup = self._addresses.get
        pool = self._bundle_pool
        while len(pool) < len(items):
            pool.append(bytearray())
        batch: List[Tuple[bytearray, Tuple[str, int]]] = []
        for index, (dst, message) in enumerate(items):
            stats.sent += 1
            address = lookup(dst)
            if address is None:
                stats.dropped_unopened += 1
                continue
            buffer = pool[index]
            try:
                encode_into(src, message, buffer)
            except CodecError:
                stats.dropped_encode += 1
                continue
            stats.encoded_datagrams += 1
            self._account_split(len(buffer), copies=1)
            batch.append((buffer, address))
        endpoint.send_batch(batch)

    def _outbound(self, src: int, dst: Optional[int], message: Any) -> Any:
        """Apply adversary transforms and auth sealing to a ball.

        Non-ball messages (cyclon, anti-entropy) pass through — they
        are integrity-checked by their own layers (docs/SECURITY.md).
        The transform runs *before* sealing: a hostile relay mutating
        entries it did not originate cannot obtain MACs for them, which
        is precisely the property the drill asserts.
        """
        if not isinstance(message, tuple):
            return message
        ball = message
        if (
            dst is not None
            and self._adversary is not None
            and self._adversary.is_hostile(src)
        ):
            ball = self._adversary.transform(src, dst, ball)
        if self._guard is None:
            return ball
        self._guard.seal(src, ball)
        return self._guard.attach(ball)

    def _account_split(self, datagram_len: int, copies: int) -> None:
        """Record the metadata/payload byte split of the last encode,
        multiplied by its fan-out (encode-once paths ship the same
        bytes to several destinations)."""
        payload = last_encode_payload_bytes()
        self.stats.payload_bytes_sent += payload * copies
        self.stats.metadata_bytes_sent += (datagram_len - payload) * copies

    def _encode(self, src: int, message: Any) -> memoryview:
        """Serialize one message into the shared pool buffer.

        Returns a read-only view of :attr:`_encode_buffer`, valid until
        the next encode. Safe because :meth:`_dispatch` hands the bytes
        to the kernel (or copies them) synchronously before the next
        message can be encoded.
        """
        datagram = encode_into(src, message, self._encode_buffer)
        self.stats.encoded_datagrams += 1
        return datagram

    def _dispatch(self, src: int, dst: int, datagram: memoryview) -> None:
        """Apply per-destination fault surfaces and ship *datagram*."""
        route = self._route(src, dst, datagram)
        if route is None:
            return
        payload, address = route
        self._transmit(self._transports[src], payload, address)

    def _route(
        self, src: int, dst: int, datagram: memoryview
    ) -> Optional[Tuple[Any, Tuple[str, int]]]:
        """Run one destination through the fault surfaces.

        Returns ``(payload, address)`` for a datagram that should be
        shipped *now* (payload is *datagram* itself unless corruption
        took a mangled copy), or ``None`` when it was dropped or
        deferred — deferred sends lease a pool buffer and reschedule
        themselves via :meth:`_sendto_later`.
        """
        self.stats.sent += 1
        if self._crosses_partition(src, dst):
            self.stats.dropped_partition += 1
            return None
        if self._transports.get(src) is None:
            self.stats.dropped_unopened += 1
            return None
        address = self._addresses.get(dst)
        if address is None:
            self.stats.dropped_unopened += 1
            return None
        loop = asyncio.get_running_loop()
        now = loop.time()
        if (
            self._burst_rate > 0.0
            and now < self._burst_until
            and self._rng.random() < self._burst_rate
        ):
            self.stats.dropped_burst += 1
            return None
        payload: Any = datagram
        if self._corruption_active() and self._rng.random() < self._corrupt_rate:
            payload = self._corrupt(datagram)
            self.stats.corrupted += 1
        delay = self._send_delay(now)
        if delay > 0.0:
            # The pooled encode buffer will be overwritten long before
            # the timer fires; lease a deferred-send buffer instead of
            # allocating a fresh copy (returned in _sendto_later).
            self.stats.delayed += 1
            lease = (
                self._deferred_pool.pop() if self._deferred_pool else bytearray()
            )
            lease[:] = payload
            loop.call_later(delay, self._sendto_later, src, lease, address)
            return None
        return payload, address

    def _transmit(self, endpoint, payload, address) -> None:
        """Hand one datagram to *endpoint*, keeping the syscall and
        byte counters honest for both endpoint flavors."""
        if getattr(endpoint, "is_raw", False):
            endpoint.sendto(payload, address)
        else:
            endpoint.sendto(payload, address)
            self.stats.syscalls_send += 1
            self.stats.bytes_sent += len(payload)

    def _fault_free(self) -> bool:
        """Whether every send-side fault surface is idle right now —
        the condition under which routing a destination draws nothing
        from the fault RNG and cannot drop, corrupt, or defer."""
        if self._partitioned or self.latency > 0.0:
            return False
        if self._corruption_active():
            return False
        if self._burst_rate > 0.0 or self._spike_until > 0.0:
            now = asyncio.get_running_loop().time()
            if self._burst_rate > 0.0 and now < self._burst_until:
                return False
            if now < self._spike_until:
                return False
        return True

    def _send_delay(self, now: float) -> float:
        """Sender-side artificial delay for a datagram sent at *now*.

        Returns zero on the default fast path (no artificial latency,
        no active spike). During a spike the base latency — or
        :data:`DEFAULT_SPIKE_BASE` on an otherwise-zero-latency fabric
        — is multiplied by the spike factor and jittered ±50%, matching
        :meth:`repro.runtime.transport.AsyncNetwork.send` semantics.
        """
        latency = self.latency
        if now < self._spike_until:
            latency = (latency or DEFAULT_SPIKE_BASE) * self._spike_factor
        if latency <= 0.0:
            return 0.0
        return latency * self._rng.uniform(0.5, 1.5)

    def _sendto_later(self, src: int, datagram, address) -> None:
        """Fire a delayed send; the sender may have died meanwhile.

        The leased buffer goes back to the pool afterwards: raw
        endpoints hand the bytes to the kernel synchronously, and
        asyncio transports copy (``bytes(data)``) before buffering, so
        nothing references the lease once ``sendto`` returns.
        """
        try:
            endpoint = self._transports.get(src)
            if endpoint is None or endpoint.is_closing():
                self.stats.dropped_unopened += 1
                return
            self._transmit(endpoint, datagram, address)
        finally:
            if (
                isinstance(datagram, bytearray)
                and len(self._deferred_pool) < _DEFERRED_POOL_LIMIT
            ):
                self._deferred_pool.append(datagram)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def set_adversary(self, router) -> None:
        """Install a hostile-behavior router (see
        :class:`repro.faults.byzantine.ByzantineRouter`): balls sent by
        its hostile nodes are transformed per destination before
        encoding, modeling Byzantine relays on real sockets."""
        self._adversary = router

    def clear_adversary(self) -> None:
        """Remove any installed hostile-behavior router."""
        self._adversary = None

    def set_partition(self, groups: Dict[int, object]) -> None:
        """Partition the fabric: datagrams crossing groups are dropped.

        Args:
            groups: Mapping from node id to an arbitrary group label.
                Nodes absent from the mapping share the implicit
                ``None`` group.
        """
        self._partition = dict(groups)
        self._partitioned = True

    def heal_partition(self) -> None:
        """Remove any partition; full connectivity is restored."""
        self._partition = {}
        self._partitioned = False

    def set_loss_burst(self, rate: float, duration: float) -> None:
        """Drop outgoing datagrams with probability *rate* for
        *duration* seconds (counted in ``stats.dropped_burst``)."""
        self._burst_rate = float(rate)
        self._burst_until = asyncio.get_running_loop().time() + duration

    def set_corruption(self, rate: float, duration: float | None = None) -> None:
        """Corrupt outgoing datagrams with probability *rate*.

        Corrupted datagrams still hit the wire — the receiving node's
        codec must reject them (``stats.dropped_malformed``) without
        crashing. *duration* limits the window in seconds; ``None``
        keeps corrupting until :meth:`clear_corruption`.
        """
        self._corrupt_rate = float(rate)
        if duration is None:
            self._corrupt_until = None
        else:
            self._corrupt_until = asyncio.get_running_loop().time() + duration

    def set_latency_spike(self, factor: float, duration: float) -> None:
        """Delay outgoing datagrams for *duration* seconds.

        Sender-side spike: every ``sendto`` in the window is deferred
        by ``latency * factor`` (jittered ±50%), where a zero
        configured latency falls back to :data:`DEFAULT_SPIKE_BASE`.
        This completes the :class:`~repro.faults.schedule.FaultSchedule`
        vocabulary over real sockets — the receiver observes stretched
        delivery times exactly as if the wire itself had slowed.
        """
        self._spike_factor = float(factor)
        self._spike_until = asyncio.get_running_loop().time() + duration

    def clear_corruption(self) -> None:
        """Stop corrupting datagrams."""
        self._corrupt_rate = 0.0
        self._corrupt_until = 0.0

    def _corruption_active(self) -> bool:
        if self._corrupt_rate <= 0.0:
            return False
        if self._corrupt_until is None:
            return True
        return asyncio.get_running_loop().time() < self._corrupt_until

    def _corrupt(self, datagram) -> bytes:
        """Mangle a copy of *datagram* so the receiving codec must
        reject it; the pooled source buffer is never touched."""
        datagram = bytes(datagram)
        mode = self._rng.randrange(3)
        if mode == 0:
            # Garble the magic: instant decode rejection.
            return b"XX" + datagram[2:]
        if mode == 1 and len(datagram) > 1:
            # Truncate: simulates a datagram cut short in transit.
            return datagram[: self._rng.randrange(1, len(datagram))]
        # Flip the entry count high (header byte 12 starts the u32
        # count in "!2sBBqI"): body length no longer matches.
        return datagram[:12] + b"\xff" + datagram[13:]

    def _crosses_partition(self, src: int, dst: int) -> bool:
        if not self._partitioned:
            return False
        return self._partition.get(src) != self._partition.get(dst)

    # ------------------------------------------------------------------
    # Socket lifecycle
    # ------------------------------------------------------------------

    async def open(self, node_id: int) -> Tuple[str, int]:
        """Bind *node_id*'s socket on an ephemeral port; returns it."""
        if node_id not in self._handlers:
            raise MembershipError(f"node {node_id} is not registered")
        if node_id in self._transports:
            return self._addresses[node_id]
        loop = asyncio.get_running_loop()
        endpoint = None
        if self._batch_enabled:
            endpoint = self._open_raw(node_id, loop)
        if endpoint is not None:
            address = endpoint._sock.getsockname()[:2]
        else:
            transport, _ = await loop.create_datagram_endpoint(
                lambda: _NodeProtocol(self, node_id),
                local_addr=(self.host, 0),
            )
            endpoint = transport
            address = transport.get_extra_info("sockname")[:2]
        self._transports[node_id] = endpoint
        self._addresses[node_id] = (address[0], address[1])
        return self._addresses[node_id]

    def _open_raw(self, node_id: int, loop) -> Optional[_RawEndpoint]:
        """Bind a raw batched socket, or ``None`` if this loop cannot
        watch file descriptors (batching then stays off for the run)."""
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_RCVBUF, _RECV_SOCKET_BUFFER
            )
        except OSError:  # pragma: no cover - exotic kernel limits
            pass
        try:
            sock.bind((self.host, 0))
            sock.setblocking(False)
            return _RawEndpoint(
                self, node_id, sock, loop, self._send_tier, self._recv_tier
            )
        except NotImplementedError:
            # Proactor-style loops have no add_reader; use asyncio
            # endpoints for this and every later socket.
            sock.close()
            self._batch_enabled = False
            return None
        except OSError:
            sock.close()
            raise

    async def open_all(self) -> None:
        """Bind a socket for every registered node."""
        for node_id in list(self._handlers):
            await self.open(node_id)

    def add_close_listener(self, callback: Callable[[], None]) -> None:
        """Run *callback* at the top of :meth:`close`, before any
        socket dies.

        The hook for layers stacked on the fabric — the multi-topic
        service registers its :meth:`~repro.service.BroadcastService.abort`
        here, so closing the fabric under a live service cancels the
        service's periodic tasks first and the final loop tick can
        retire them (no "Task was destroyed but it is pending"
        warnings). Listeners run once and are then forgotten.
        """
        self._close_listeners.append(callback)

    async def close(self) -> None:
        """Close every socket and forget every inbox.

        Close listeners (stacked layers such as the multi-topic service
        demux) run first, so their tasks are cancelled while the loop
        below can still process the cancellations. After ``close()``
        the fabric is inert: stale node ids can be re-registered
        without collisions, and late sends are counted as
        ``dropped_unopened``.
        """
        listeners, self._close_listeners = self._close_listeners, []
        for callback in listeners:
            callback()
        for node_id in list(self._transports):
            self._transports.pop(node_id).close()
        self._addresses.clear()
        self._handlers.clear()
        # Give the loop one tick to process the closes.
        await asyncio.sleep(0)

    def address_of(self, node_id: int) -> Optional[Tuple[str, int]]:
        """The (host, port) of *node_id*, if its socket is open."""
        return self._addresses.get(node_id)

    @property
    def batching(self) -> Optional[str]:
        """The active send tier when syscall batching is on, else
        ``None`` (asyncio endpoints)."""
        return self._send_tier if self._batch_enabled else None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _on_datagram(self, node_id: int, data) -> None:
        """Decode and admit one inbound datagram.

        *data* may be a ``memoryview`` into a reusable receive buffer
        (the batched path): it is only valid for the duration of this
        call, and :func:`~repro.runtime.codec.decode` materializes
        everything that reaches the handler.
        """
        self.stats.bytes_received += len(data)
        handler = self._handlers.get(node_id)
        if handler is None:
            return
        try:
            sender, message = decode(data)
        except CodecVersionError:
            self.stats.dropped_bad_version += 1
            return
        except CodecError:
            self.stats.dropped_malformed += 1
            return
        message = self._admit(message)
        if message is _REJECTED:
            return
        self.stats.delivered += 1
        handler(sender, message)

    def _admit(self, message: Any) -> Any:
        """Authentication gate between decode and the node's inbox.

        Signed balls are verified entry by entry (the admitted
        sub-ball is delivered; rejections are counted per cause) or —
        with no authenticator configured — accepted with signatures
        stripped. A *plain* ball on an authenticating fabric is
        rejected wholesale: an honest authenticating peer always signs.
        """
        if isinstance(message, SignedBall):
            if self._guard is None:
                return message.entries
            ball, counts = self._guard.admit_signed(message)
            self.stats.dropped_bad_signature += counts.bad_signature
            self.stats.dropped_unknown_key += counts.unknown_key
            self.stats.dropped_unsigned += counts.unsigned
            return ball
        if self._guard is not None and isinstance(message, tuple):
            self.stats.dropped_unsigned += 1
            return _REJECTED
        return message
