"""Optional uvloop acceleration for the asyncio runtime.

uvloop is a drop-in libuv-based event loop that roughly halves the
per-wakeup overhead of the stdlib selector loop — worth having under a
UDP fabric that wakes once per burst, never required for correctness.
It ships as the ``fast`` extra (``pip install .[fast]``); this module
is the single place that touches it, so the rest of the codebase never
imports uvloop directly and runs unchanged when it is absent.

* :func:`ensure_uvloop` installs uvloop's event-loop policy when the
  package is importable, nothing is already running, and the
  ``EPTO_NO_UVLOOP`` environment variable is unset. It is called by
  :class:`~repro.runtime.cluster.AsyncCluster` and
  :class:`~repro.runtime.udp.UdpNetwork` on construction, so any
  entry point that builds a cluster before starting its loop gets the
  fast loop automatically.
* :func:`run` is ``asyncio.run`` with the policy check in front — the
  convenience entry for benchmarks and experiments.

Batched raw sockets (:mod:`repro.runtime.batchio`) work on either
loop: uvloop implements ``add_reader``/``remove_reader`` natively.
"""

from __future__ import annotations

import asyncio
import os
from typing import Any, Coroutine, Optional

__all__ = ["ENV_DISABLE", "ensure_uvloop", "run", "uvloop_available"]

#: Set this environment variable (to any non-empty value) to keep the
#: stdlib event loop even when uvloop is installed — the escape hatch
#: for A/B benchmarking and for debugging loop-dependent behavior.
ENV_DISABLE = "EPTO_NO_UVLOOP"


def _uvloop_module():
    """The uvloop module, or ``None`` when unavailable or disabled."""
    if os.environ.get(ENV_DISABLE):
        return None
    try:
        import uvloop
    except ImportError:
        return None
    return uvloop


def uvloop_available() -> bool:
    """Whether uvloop is importable and not disabled via environment."""
    return _uvloop_module() is not None


def ensure_uvloop() -> bool:
    """Install uvloop's event-loop policy if possible.

    Returns whether uvloop is (now) the active policy. Never raises
    and never installs while a loop is already running — changing the
    policy mid-run would not affect the running loop anyway, so in
    that case this only reports whether the *current* loop is uvloop's.
    """
    uvloop = _uvloop_module()
    if uvloop is None:
        return False
    try:
        running = asyncio.get_running_loop()
    except RuntimeError:
        running = None
    if running is not None:
        return "uvloop" in type(running).__module__
    policy = asyncio.get_event_loop_policy()
    if isinstance(policy, uvloop.EventLoopPolicy):
        return True
    asyncio.set_event_loop_policy(uvloop.EventLoopPolicy())
    return True


def run(coro: Coroutine[Any, Any, Any], *, debug: Optional[bool] = None) -> Any:
    """``asyncio.run`` under uvloop when installed, stdlib otherwise."""
    ensure_uvloop()
    if debug is None:
        return asyncio.run(coro)
    return asyncio.run(coro, debug=debug)
