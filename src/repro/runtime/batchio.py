"""Batched datagram syscalls for the UDP hot path (ROADMAP: wire speed).

EpTO's per-round network cost is K datagrams out (the ball fan-out) and
a burst of datagrams in (every peer's ball lands within the same round
window). With plain ``socket.sendto`` that is K syscalls per round per
node on the way out and one ``recvfrom`` wakeup per datagram on the way
in — at production fan-out the syscall boundary, not the ordering
logic, dominates (PAPER.md §4; BENCH_core.json ``udp_e2e``).

This module wraps the Linux ``sendmmsg(2)`` / ``recvmmsg(2)`` batch
syscalls with :mod:`ctypes`, feature-detected at import time, behind a
tiered cascade that always works:

* send: ``sendmmsg`` (whole fan-out = one syscall) →
  ``socket.sendmsg`` (one syscall per datagram, scatter-gather capable)
  → ``socket.sendto`` (the portable floor);
* receive: ``recvmmsg`` (drain a burst = one syscall) →
  ``recv_into`` loop (one syscall per datagram, still allocation-free).

Every tier presents the same interface and the same drop semantics, so
:class:`repro.runtime.udp.UdpNetwork` behaves identically on any
platform — only the syscall counters differ
(``tests/runtime/test_batchio.py`` pins the matrix).

Zero-copy contract: senders hand *writable* buffers (``bytearray``) on
the hot path — :class:`BatchSender` takes a pointer straight into them
(``ctypes.from_buffer``) for the duration of the call only. Read-only
buffers (``bytes``, read-only ``memoryview``) are accepted but cost one
copy. :class:`BatchReceiver` owns preallocated receive buffers and
returns ``memoryview`` slices into them, valid **only until the next
call** — receivers must fully materialize what they keep (the codec
does; ``tests/runtime/test_udp_zero_copy.py`` proves nothing escapes).

Only IPv4 addresses are supported by the ``sendmmsg`` tier (the
``sockaddr_in`` layout below); other families fall back one tier.
"""

from __future__ import annotations

import ctypes
import errno
import os
import socket
import struct
import sys
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "HAS_SENDMMSG",
    "HAS_RECVMMSG",
    "SEND_TIERS",
    "RECV_TIERS",
    "best_send_tier",
    "best_recv_tier",
    "select_send_tier",
    "select_recv_tier",
    "BatchSender",
    "BatchReceiver",
]

#: Send tiers, fastest first. ``sendmmsg`` ships a whole fan-out in one
#: syscall; ``sendmsg`` and ``sendto`` are one syscall per datagram.
SEND_TIERS = ("sendmmsg", "sendmsg", "sendto")

#: Receive tiers, fastest first. ``recvmmsg`` drains a burst in one
#: syscall; ``recv_into`` takes one per datagram (both allocation-free).
RECV_TIERS = ("recvmmsg", "recv_into")

# ----------------------------------------------------------------------
# libc feature detection
# ----------------------------------------------------------------------

_libc = None
_sendmmsg = None
_recvmmsg = None
if os.name == "posix":  # pragma: no branch - single-platform CI
    try:
        _libc = ctypes.CDLL(None, use_errno=True)
    except (OSError, TypeError):  # pragma: no cover - exotic libc
        _libc = None
if _libc is not None:
    _sendmmsg = getattr(_libc, "sendmmsg", None)
    _recvmmsg = getattr(_libc, "recvmmsg", None)

#: Whether the running libc exposes ``sendmmsg(2)``.
HAS_SENDMMSG = _sendmmsg is not None
#: Whether the running libc exposes ``recvmmsg(2)``.
HAS_RECVMMSG = _recvmmsg is not None
#: Whether ``socket.sendmsg`` exists (absent on some Windows builds).
HAS_SENDMSG = hasattr(socket.socket, "sendmsg")


def best_send_tier() -> str:
    """The fastest send tier this platform supports."""
    if HAS_SENDMMSG:
        return "sendmmsg"
    if HAS_SENDMSG:
        return "sendmsg"
    return "sendto"


def best_recv_tier() -> str:
    """The fastest receive tier this platform supports."""
    return "recvmmsg" if HAS_RECVMMSG else "recv_into"


def select_send_tier(forced: Optional[str] = None) -> str:
    """Resolve a send tier: the best available, or *forced*.

    Forcing a tier the platform lacks raises ``ValueError`` — a forced
    tier is a test/bench instrument and must never silently degrade.
    Forcing a *lower* tier than available is always allowed (that is
    how the fallback matrix is exercised on a sendmmsg-capable box).
    """
    if forced is None:
        return best_send_tier()
    if forced not in SEND_TIERS:
        raise ValueError(f"unknown send tier {forced!r}; one of {SEND_TIERS}")
    if forced == "sendmmsg" and not HAS_SENDMMSG:
        raise ValueError("sendmmsg is not available on this platform")
    if forced == "sendmsg" and not HAS_SENDMSG:
        raise ValueError("socket.sendmsg is not available on this platform")
    return forced


def select_recv_tier(forced: Optional[str] = None) -> str:
    """Resolve a receive tier: the best available, or *forced*."""
    if forced is None:
        return best_recv_tier()
    if forced not in RECV_TIERS:
        raise ValueError(f"unknown recv tier {forced!r}; one of {RECV_TIERS}")
    if forced == "recvmmsg" and not HAS_RECVMMSG:
        raise ValueError("recvmmsg is not available on this platform")
    return forced


# ----------------------------------------------------------------------
# ctypes layouts (Linux ABI; the only platform with the mmsg syscalls)
# ----------------------------------------------------------------------


class _iovec(ctypes.Structure):
    _fields_ = [
        ("iov_base", ctypes.c_void_p),
        ("iov_len", ctypes.c_size_t),
    ]


class _sockaddr_in(ctypes.Structure):
    _fields_ = [
        ("sin_family", ctypes.c_uint16),
        ("sin_port", ctypes.c_uint16),  # network byte order
        ("sin_addr", ctypes.c_uint32),  # network byte order
        ("sin_zero", ctypes.c_char * 8),
    ]


class _msghdr(ctypes.Structure):
    _fields_ = [
        ("msg_name", ctypes.c_void_p),
        ("msg_namelen", ctypes.c_uint32),
        ("msg_iov", ctypes.POINTER(_iovec)),
        ("msg_iovlen", ctypes.c_size_t),
        ("msg_control", ctypes.c_void_p),
        ("msg_controllen", ctypes.c_size_t),
        ("msg_flags", ctypes.c_int),
    ]


class _mmsghdr(ctypes.Structure):
    _fields_ = [
        ("msg_hdr", _msghdr),
        ("msg_len", ctypes.c_uint),
    ]


def _pack_sockaddr_in(host: str, port: int) -> _sockaddr_in:
    """Build a ``sockaddr_in`` for an IPv4 (host, port); raises
    ``OSError`` for non-IPv4 hosts (callers fall back a tier)."""
    addr = _sockaddr_in()
    addr.sin_family = socket.AF_INET
    addr.sin_port = struct.unpack("=H", struct.pack("!H", port))[0]
    addr.sin_addr = struct.unpack("=I", socket.inet_aton(host))[0]
    return addr


_EAGAIN = (errno.EAGAIN, errno.EWOULDBLOCK)


class BatchSender:
    """Ships batches of datagrams with as few syscalls as the tier allows.

    One instance per socket-owning endpoint: the ``sendmmsg`` tier keeps
    reusable ``mmsghdr``/``iovec`` arrays and per-slot caches (packed
    destination sockaddr, buffer pointer/length) so a steady-state
    fan-out to the same peer set costs near-zero Python-side setup on
    top of the single syscall.

    Drop semantics are UDP's own on every tier: a datagram the kernel
    will not take right now (``EAGAIN`` on a non-blocking socket) is
    *dropped and counted*, never retried — EpTO's relay redundancy is
    the retransmission mechanism (paper §4).
    """

    #: Initial slot capacity; grows geometrically on demand.
    _INITIAL_CAPACITY = 16

    def __init__(self, tier: Optional[str] = None) -> None:
        self.tier = select_send_tier(tier)
        #: Syscalls issued by this sender (all tiers).
        self.syscalls = 0
        #: Datagrams handed to the kernel.
        self.sent = 0
        #: Datagrams the kernel refused (EAGAIN/ENOBUFS — dropped).
        self.rejected = 0
        #: Payload bytes handed to the kernel (accepted datagrams only).
        self.bytes = 0
        self._capacity = 0
        self._msgs = None
        self._iovs = None
        self._addrs: List[Optional[_sockaddr_in]] = []
        self._slot_dst: List[Optional[Tuple[str, int]]] = []
        self._sockaddr_cache: Dict[Tuple[str, int], _sockaddr_in] = {}
        if self.tier == "sendmmsg":
            self._grow(self._INITIAL_CAPACITY)

    # -- sendmmsg plumbing ------------------------------------------------

    def _grow(self, capacity: int) -> None:
        msgs = (_mmsghdr * capacity)()
        iovs = (_iovec * capacity)()
        for i in range(capacity):
            msgs[i].msg_hdr.msg_iov = ctypes.pointer(iovs[i])
            msgs[i].msg_hdr.msg_iovlen = 1
        self._msgs = msgs
        self._iovs = iovs
        self._addrs = [None] * capacity
        self._slot_dst = [None] * capacity
        # Last (pointer, length) written to each iovec: a steady-state
        # fan-out re-sends the same pool buffer to the same peer set,
        # so most slot updates are comparisons, not ctypes writes.
        self._slot_ptr: List[Optional[int]] = [None] * capacity
        self._slot_len: List[Optional[int]] = [None] * capacity
        self._capacity = capacity

    def _sockaddr(self, dst: Tuple[str, int]) -> _sockaddr_in:
        packed = self._sockaddr_cache.get(dst)
        if packed is None:
            packed = _pack_sockaddr_in(dst[0], dst[1])
            self._sockaddr_cache[dst] = packed
        return packed

    @staticmethod
    def _buffer_pointer(buf) -> Tuple[int, int, object]:
        """(address, length, keepalive) of *buf*'s bytes.

        Writable buffers are pointed at in place; read-only ones are
        copied into a scratch ctypes buffer (the keepalive).
        """
        length = len(buf)
        try:
            raw = (ctypes.c_char * length).from_buffer(buf)
        except TypeError:
            raw = ctypes.create_string_buffer(bytes(buf), length)
        return ctypes.addressof(raw), length, raw

    # -- public API -------------------------------------------------------

    def send_batch(
        self,
        sock: socket.socket,
        items: Sequence[Tuple[object, Tuple[str, int]]],
    ) -> int:
        """Ship every ``(buffer, (host, port))`` in *items*.

        Returns the number of datagrams handed to the kernel. The
        ``sendmmsg`` tier issues ``ceil(len(items) / capacity)``
        syscalls (one, for any realistic fan-out); the fallback tiers
        issue one syscall per datagram. Kernel refusals are counted in
        :attr:`rejected` and skipped, mirroring UDP loss.
        """
        if not items:
            return 0
        if self.tier == "sendmmsg":
            try:
                return self._send_batch_mmsg(sock, items)
            except OSError:
                # Non-IPv4 destination or an unexpected ABI mismatch:
                # degrade to the portable tier for this batch.
                return self._send_batch_fallback(sock, items, "sendto")
        return self._send_batch_fallback(sock, items, self.tier)

    def _send_batch_mmsg(self, sock, items) -> int:
        n = len(items)
        if n > self._capacity:
            self._grow(max(n, self._capacity * 2))
        msgs, iovs = self._msgs, self._iovs
        slot_ptr, slot_len, slot_dst = self._slot_ptr, self._slot_len, self._slot_dst
        keepalive = []
        keepalive_append = keepalive.append
        # A fan-out ships ONE buffer to K peers: resolve its pointer
        # once per run of identical objects, not once per destination
        # (items sharing a buffer arrive consecutively on the fan-out
        # path). The pointer must be re-resolved every call (a bytearray
        # may have reallocated since), but within a call it cannot move
        # — the from_buffer export pins it.
        prev_buf = None
        address = length = 0
        total_bytes = 0
        for i, (buf, dst) in enumerate(items):
            if buf is not prev_buf:
                address, length, raw = self._buffer_pointer(buf)
                keepalive_append(raw)
                prev_buf = buf
            total_bytes += length
            if slot_ptr[i] != address:
                iovs[i].iov_base = address
                slot_ptr[i] = address
            if slot_len[i] != length:
                iovs[i].iov_len = length
                slot_len[i] = length
            prev = slot_dst[i]
            if prev is not dst and prev != dst:
                packed = self._sockaddr(dst)
                self._addrs[i] = packed
                slot_dst[i] = dst
                msgs[i].msg_hdr.msg_name = ctypes.cast(
                    ctypes.byref(packed), ctypes.c_void_p
                )
                msgs[i].msg_hdr.msg_namelen = ctypes.sizeof(_sockaddr_in)
        fd = sock.fileno()
        done = 0
        while done < n:
            self.syscalls += 1
            result = _sendmmsg(
                fd, ctypes.byref(msgs[done]), n - done, 0
            )
            if result < 0:
                err = ctypes.get_errno()
                if err in _EAGAIN or err == errno.ENOBUFS:
                    self.rejected += n - done
                    break
                raise OSError(err, os.strerror(err))
            if result == 0:  # pragma: no cover - kernel never does this
                self.rejected += n - done
                break
            done += result
        del keepalive
        self.sent += done
        if done == n:
            self.bytes += total_bytes
        else:
            self.bytes += sum(len(items[i][0]) for i in range(done))
        return done

    def send_fanout(
        self,
        sock: socket.socket,
        buf,
        dests: Sequence[Tuple[str, int]],
    ) -> int:
        """Ship one buffer to every destination in *dests* — the EpTO
        round fan-out, specialized: the buffer pointer is resolved once
        and no per-destination pairs are materialized. Same tier,
        syscall, and drop semantics as :meth:`send_batch`.
        """
        if not dests:
            return 0
        if self.tier == "sendmmsg":
            try:
                return self._send_fanout_mmsg(sock, buf, dests)
            except OSError:
                return self._send_fanout_fallback(sock, buf, dests, "sendto")
        return self._send_fanout_fallback(sock, buf, dests, self.tier)

    def _send_fanout_mmsg(self, sock, buf, dests) -> int:
        n = len(dests)
        if n > self._capacity:
            self._grow(max(n, self._capacity * 2))
        msgs, iovs = self._msgs, self._iovs
        slot_ptr, slot_len, slot_dst = self._slot_ptr, self._slot_len, self._slot_dst
        address, length, keepalive = self._buffer_pointer(buf)
        for i, dst in enumerate(dests):
            if slot_ptr[i] != address:
                iovs[i].iov_base = address
                slot_ptr[i] = address
            if slot_len[i] != length:
                iovs[i].iov_len = length
                slot_len[i] = length
            prev = slot_dst[i]
            if prev is not dst and prev != dst:
                packed = self._sockaddr(dst)
                self._addrs[i] = packed
                slot_dst[i] = dst
                msgs[i].msg_hdr.msg_name = ctypes.cast(
                    ctypes.byref(packed), ctypes.c_void_p
                )
                msgs[i].msg_hdr.msg_namelen = ctypes.sizeof(_sockaddr_in)
        fd = sock.fileno()
        done = 0
        while done < n:
            self.syscalls += 1
            result = _sendmmsg(fd, ctypes.byref(msgs[done]), n - done, 0)
            if result < 0:
                err = ctypes.get_errno()
                if err in _EAGAIN or err == errno.ENOBUFS:
                    self.rejected += n - done
                    break
                raise OSError(err, os.strerror(err))
            if result == 0:  # pragma: no cover - kernel never does this
                self.rejected += n - done
                break
            done += result
        del keepalive
        self.sent += done
        self.bytes += done * length
        return done

    def _send_fanout_fallback(self, sock, buf, dests, tier: str) -> int:
        done = 0
        use_sendmsg = tier == "sendmsg"
        for dst in dests:
            self.syscalls += 1
            try:
                if use_sendmsg:
                    sock.sendmsg([buf], [], 0, dst)
                else:
                    sock.sendto(buf, dst)
            except (BlockingIOError, InterruptedError):
                self.rejected += 1
                continue
            except OSError as exc:
                if exc.errno == errno.ENOBUFS:
                    self.rejected += 1
                    continue
                raise
            done += 1
        self.sent += done
        self.bytes += done * len(buf)
        return done

    def _send_batch_fallback(self, sock, items, tier: str) -> int:
        done = 0
        use_sendmsg = tier == "sendmsg"
        for buf, dst in items:
            self.syscalls += 1
            try:
                if use_sendmsg:
                    sock.sendmsg([buf], [], 0, dst)
                else:
                    sock.sendto(buf, dst)
            except (BlockingIOError, InterruptedError):
                self.rejected += 1
                continue
            except OSError as exc:
                if exc.errno == errno.ENOBUFS:
                    self.rejected += 1
                    continue
                raise
            done += 1
            self.bytes += len(buf)
        self.sent += done
        return done

    def send_one(self, sock, buf, dst: Tuple[str, int]) -> bool:
        """Ship a single datagram (always one syscall); returns whether
        the kernel accepted it."""
        self.syscalls += 1
        try:
            sock.sendto(buf, dst)
        except (BlockingIOError, InterruptedError):
            self.rejected += 1
            return False
        except OSError as exc:
            if exc.errno == errno.ENOBUFS:
                self.rejected += 1
                return False
            raise
        self.sent += 1
        self.bytes += len(buf)
        return True


class BatchReceiver:
    """Drains bursts of datagrams with as few syscalls as the tier allows.

    Owns :attr:`max_batch` preallocated receive buffers; every
    :meth:`receive` returns ``memoryview`` slices into them, **valid
    only until the next call**. The ``recvmmsg`` tier drains up to a
    whole burst per syscall; the ``recv_into`` tier takes one syscall
    per datagram plus the final empty probe, still without allocating.
    """

    def __init__(
        self,
        tier: Optional[str] = None,
        max_batch: int = 32,
        buffer_size: int = 65_535,
    ) -> None:
        self.tier = select_recv_tier(tier)
        self.max_batch = int(max_batch)
        self.buffer_size = int(buffer_size)
        #: Syscalls issued by this receiver (all tiers).
        self.syscalls = 0
        #: Datagrams drained.
        self.received = 0
        self._buffers = [bytearray(self.buffer_size) for _ in range(self.max_batch)]
        self._views = [memoryview(buf) for buf in self._buffers]
        if self.tier == "recvmmsg":
            self._raws = [
                (ctypes.c_char * self.buffer_size).from_buffer(buf)
                for buf in self._buffers
            ]
            self._iovs = (_iovec * self.max_batch)()
            self._msgs = (_mmsghdr * self.max_batch)()
            for i in range(self.max_batch):
                self._iovs[i].iov_base = ctypes.addressof(self._raws[i])
                self._iovs[i].iov_len = self.buffer_size
                self._msgs[i].msg_hdr.msg_iov = ctypes.pointer(self._iovs[i])
                self._msgs[i].msg_hdr.msg_iovlen = 1
                # Sender addresses are not needed: the EpTO codec
                # carries the sender id in-band.
                self._msgs[i].msg_hdr.msg_name = None
                self._msgs[i].msg_hdr.msg_namelen = 0

    def receive(self, sock: socket.socket) -> List[memoryview]:
        """Drain up to :attr:`max_batch` datagrams from *sock*.

        The socket must be non-blocking. Returns zero-copy views into
        the receiver's own buffers — consume them before calling again.
        """
        if self.tier == "recvmmsg":
            return self._receive_mmsg(sock)
        return self._receive_loop(sock)

    def _receive_mmsg(self, sock) -> List[memoryview]:
        self.syscalls += 1
        count = _recvmmsg(sock.fileno(), self._msgs, self.max_batch, 0, None)
        if count < 0:
            err = ctypes.get_errno()
            if err in _EAGAIN or err == errno.EINTR:
                return []
            raise OSError(err, os.strerror(err))
        self.received += count
        return [
            self._views[i][: self._msgs[i].msg_len] for i in range(count)
        ]

    def _receive_loop(self, sock) -> List[memoryview]:
        out: List[memoryview] = []
        for i in range(self.max_batch):
            self.syscalls += 1
            try:
                size = sock.recv_into(self._buffers[i], self.buffer_size)
            except (BlockingIOError, InterruptedError):
                break
            except OSError as exc:  # pragma: no cover - platform quirk
                if exc.errno == errno.ECONNREFUSED:
                    continue  # ICMP unreachable bounced back; not data
                raise
            out.append(self._views[i][:size])
            self.received += 1
        return out
