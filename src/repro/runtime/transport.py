"""Asyncio message fabric for the real-runtime EpTO nodes (paper §8.5).

Provides an in-process asyncio network with the same failure surface as
the simulated one — per-message latency and independent loss — but
driven by the real event loop clock instead of simulator ticks. Nodes
communicate through :class:`AsyncNetwork`, and
:class:`AsyncNodeTransport` adapts it to the
:class:`repro.core.interfaces.Transport` protocol one EpTO process
expects.

The in-memory fabric is intentionally the default: the §8.5 runtime
exists to prove the algorithm runs unmodified outside the simulator,
and an in-memory loop keeps the test suite hermetic. Swapping in a
datagram socket is a matter of implementing the same three-method
surface (``register`` / ``unregister`` / ``send``).
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..core.errors import MembershipError

#: Inbox callback: ``handler(src, message)`` (synchronous, loop thread).
AsyncMessageHandler = Callable[[int, Any], None]


@dataclass(slots=True)
class AsyncNetworkStats:
    """Counters mirroring :class:`repro.sim.network.NetworkStats`."""

    sent: int = 0
    delivered: int = 0
    dropped_loss: int = 0
    dropped_dead: int = 0


class AsyncNetwork:
    """In-process asyncio network with latency and loss injection.

    Args:
        latency: Mean one-way delay in seconds; each message draws a
            uniformly random delay in ``[0.5, 1.5] * latency``. Zero
            delivers on the next loop iteration.
        loss_rate: Probability a message is silently dropped.
        seed: Seed for the loss/latency randomness.
    """

    def __init__(
        self,
        latency: float = 0.0,
        loss_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.latency = latency
        self.loss_rate = loss_rate
        self.stats = AsyncNetworkStats()
        self._handlers: Dict[int, AsyncMessageHandler] = {}
        self._rng = random.Random(seed)

    def register(self, node_id: int, handler: AsyncMessageHandler) -> None:
        """Attach *handler* as the inbox of *node_id*."""
        if node_id in self._handlers:
            raise MembershipError(f"node {node_id} is already registered")
        self._handlers[node_id] = handler

    def unregister(self, node_id: int) -> None:
        """Detach *node_id*; in-flight messages to it are lost."""
        self._handlers.pop(node_id, None)

    def send(self, src: int, dst: int, message: Any) -> None:
        """Best-effort asynchronous send (never raises on loss)."""
        self.stats.sent += 1
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            self.stats.dropped_loss += 1
            return
        loop = asyncio.get_event_loop()
        if self.latency > 0.0:
            delay = self.latency * self._rng.uniform(0.5, 1.5)
            loop.call_later(delay, self._deliver, src, dst, message)
        else:
            loop.call_soon(self._deliver, src, dst, message)

    def _deliver(self, src: int, dst: int, message: Any) -> None:
        handler = self._handlers.get(dst)
        if handler is None:
            self.stats.dropped_dead += 1
            return
        self.stats.delivered += 1
        handler(src, message)


class AsyncNodeTransport:
    """Adapts :class:`AsyncNetwork` to the core ``Transport`` protocol."""

    def __init__(self, network: AsyncNetwork) -> None:
        self._network = network

    def send(self, src: int, dst: int, ball: Any) -> None:
        """Forward a ball onto the async fabric."""
        self._network.send(src, dst, ball)
