"""Asyncio message fabric for the real-runtime EpTO nodes (paper §8.5).

Provides an in-process asyncio network with the same failure surface as
the simulated one — per-message latency, independent loss, partitions,
and time-windowed fault bursts — but driven by the real event loop
clock instead of simulator ticks. Nodes communicate through
:class:`AsyncNetwork`, and :class:`AsyncNodeTransport` adapts it to the
:class:`repro.core.interfaces.Transport` protocol one EpTO process
expects.

The in-memory fabric is intentionally the default: the §8.5 runtime
exists to prove the algorithm runs unmodified outside the simulator,
and an in-memory loop keeps the test suite hermetic. Swapping in a
datagram socket is a matter of implementing the same three-method
surface (``register`` / ``unregister`` / ``send``).

Fault injection surface (driven by
:class:`repro.faults.runtime_injector.AsyncFaultInjector`):

* :meth:`AsyncNetwork.set_partition` / :meth:`AsyncNetwork.heal_partition`
  mirror :class:`repro.sim.network.SimNetwork`; partition membership is
  checked at send *and* delivery time, so messages in flight when a
  partition forms are lost like on a real network.
* :meth:`AsyncNetwork.set_loss_burst` raises the loss rate for a
  wall-clock window (a loss *burst*), counted separately from baseline
  loss so experiments can attribute drops.
* :meth:`AsyncNetwork.set_latency_spike` multiplies the mean latency
  for a window.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict

from ..auth.guard import BallGuard
from ..core.errors import MembershipError

#: Inbox callback: ``handler(src, message)`` (synchronous, loop thread).
AsyncMessageHandler = Callable[[int, Any], None]


@dataclass(slots=True)
class AsyncNetworkStats:
    """Counters mirroring :class:`repro.sim.network.NetworkStats`.

    The authentication counters are per ball *entry* (an authenticated
    fabric admits the verified sub-ball and counts the rest), matching
    the sim and UDP fabrics.
    """

    sent: int = 0
    delivered: int = 0
    dropped_loss: int = 0
    dropped_dead: int = 0
    dropped_partition: int = 0
    dropped_burst: int = 0
    dropped_bad_signature: int = 0
    dropped_unknown_key: int = 0
    dropped_unsigned: int = 0

    @property
    def dropped(self) -> int:
        """Total messages that never reached a handler."""
        return (
            self.dropped_loss
            + self.dropped_dead
            + self.dropped_partition
            + self.dropped_burst
        )


class AsyncNetwork:
    """In-process asyncio network with latency, loss and fault injection.

    Args:
        latency: Mean one-way delay in seconds; each message draws a
            uniformly random delay in ``[0.5, 1.5] * latency``. Zero
            delivers on the next loop iteration.
        loss_rate: Probability a message is silently dropped.
        seed: Seed for the loss/latency randomness.
        authenticator: Optional
            :class:`~repro.auth.authenticator.HmacAuthenticator`; when
            set, balls are sealed at send time and verified at delivery
            through a fabric-shared :class:`~repro.auth.guard.BallGuard`
            — same semantics as :class:`repro.sim.network.SimNetwork`.
    """

    def __init__(
        self,
        latency: float = 0.0,
        loss_rate: float = 0.0,
        seed: int = 0,
        authenticator=None,
    ) -> None:
        self.latency = latency
        self.loss_rate = loss_rate
        self.stats = AsyncNetworkStats()
        self._guard = BallGuard(authenticator) if authenticator else None
        self._adversary = None
        self._handlers: Dict[int, AsyncMessageHandler] = {}
        self._rng = random.Random(seed)
        # Partition: node id -> group label (None group is implicit).
        self._partition: Dict[int, object] = {}
        self._partitioned = False
        # Fault windows, in loop.time() seconds.
        self._burst_rate = 0.0
        self._burst_until = 0.0
        self._spike_factor = 1.0
        self._spike_until = 0.0

    def register(self, node_id: int, handler: AsyncMessageHandler) -> None:
        """Attach *handler* as the inbox of *node_id*."""
        if node_id in self._handlers:
            raise MembershipError(f"node {node_id} is already registered")
        self._handlers[node_id] = handler

    def unregister(self, node_id: int) -> None:
        """Detach *node_id*; in-flight messages to it are lost."""
        self._handlers.pop(node_id, None)

    def is_registered(self, node_id: int) -> bool:
        """Whether *node_id* currently has an inbox."""
        return node_id in self._handlers

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def set_partition(self, groups: Dict[int, object]) -> None:
        """Partition the network: only same-group nodes can talk.

        Args:
            groups: Mapping from node id to an arbitrary group label.
                Nodes absent from the mapping share the implicit
                ``None`` group.
        """
        self._partition = dict(groups)
        self._partitioned = True

    def heal_partition(self) -> None:
        """Remove any partition; full connectivity is restored."""
        self._partition = {}
        self._partitioned = False

    def set_loss_burst(self, rate: float, duration: float) -> None:
        """Drop messages with probability *rate* for *duration* seconds.

        While the burst window is open the burst rate applies on top of
        (checked after) the baseline ``loss_rate``; burst drops are
        counted in ``stats.dropped_burst``.
        """
        self._burst_rate = float(rate)
        self._burst_until = asyncio.get_running_loop().time() + duration

    def set_latency_spike(self, factor: float, duration: float) -> None:
        """Multiply the mean latency by *factor* for *duration* seconds."""
        self._spike_factor = float(factor)
        self._spike_until = asyncio.get_running_loop().time() + duration

    def set_adversary(self, router) -> None:
        """Install a hostile-behavior router (see
        :class:`repro.faults.byzantine.ByzantineRouter`): balls sent by
        its hostile nodes are transformed per destination."""
        self._adversary = router

    def clear_adversary(self) -> None:
        """Remove any installed hostile-behavior router."""
        self._adversary = None

    def _crosses_partition(self, src: int, dst: int) -> bool:
        if not self._partitioned:
            return False
        return self._partition.get(src) != self._partition.get(dst)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(self, src: int, dst: int, message: Any) -> None:
        """Best-effort asynchronous send (never raises on loss)."""
        message = self._outbound(src, dst, message)
        self.stats.sent += 1
        if self._crosses_partition(src, dst):
            self.stats.dropped_partition += 1
            return
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            self.stats.dropped_loss += 1
            return
        loop = asyncio.get_running_loop()
        now = loop.time()
        if now < self._burst_until and self._rng.random() < self._burst_rate:
            self.stats.dropped_burst += 1
            return
        latency = self.latency
        if now < self._spike_until:
            latency *= self._spike_factor
        if latency > 0.0:
            delay = latency * self._rng.uniform(0.5, 1.5)
            loop.call_later(delay, self._deliver, src, dst, message)
        else:
            loop.call_soon(self._deliver, src, dst, message)

    def send_many(self, src: int, dsts, message: Any) -> None:
        """Fan one message out to every id in *dsts*.

        Per-destination loss/burst/partition decisions are unchanged
        relative to sequential :meth:`send` calls; the message object
        is shared across all deliveries, never copied.
        """
        for dst in dsts:
            self.send(src, dst, message)

    def _outbound(self, src: int, dst: int, message: Any) -> Any:
        """Seal the genuine ball, then apply any hostile transform —
        same ordering rationale as the sim fabric: the guard's cache
        pins the original canonical bytes before a relay can mutate."""
        if not isinstance(message, tuple):
            return message
        ball = message
        if self._guard is not None:
            self._guard.seal(src, ball)
        if self._adversary is not None and self._adversary.is_hostile(src):
            ball = self._adversary.transform(src, dst, ball)
        return ball

    def _deliver(self, src: int, dst: int, message: Any) -> None:
        if self._crosses_partition(src, dst):
            # Partition formed while the message was in flight.
            self.stats.dropped_partition += 1
            return
        handler = self._handlers.get(dst)
        if handler is None:
            self.stats.dropped_dead += 1
            return
        if self._guard is not None and isinstance(message, tuple):
            message, counts = self._guard.admit_ball(message)
            self.stats.dropped_bad_signature += counts.bad_signature
            self.stats.dropped_unknown_key += counts.unknown_key
            self.stats.dropped_unsigned += counts.unsigned
        self.stats.delivered += 1
        handler(src, message)


class AsyncNodeTransport:
    """Adapts :class:`AsyncNetwork` to the core ``Transport`` protocol."""

    def __init__(self, network: AsyncNetwork) -> None:
        self._network = network
        self._send_many = getattr(network, "send_many", None)

    def send(self, src: int, dst: int, ball: Any) -> None:
        """Forward a ball onto the async fabric."""
        self._network.send(src, dst, ball)

    def send_many(self, src: int, dsts, ball: Any) -> None:
        """Forward one ball to many peers (encode-once on UDP fabrics)."""
        if self._send_many is not None:
            self._send_many(src, dsts, ball)
        else:
            for dst in dsts:
                self._network.send(src, dst, ball)
