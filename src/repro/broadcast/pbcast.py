"""Pbcast-style stability-only ordered broadcast (paper §7, [16]).

Hayden and Birman's *Pbcast* was the first probabilistic total order
algorithm: epidemic dissemination plus a *stability delay* — an event
is delivered once it has been in the system long enough, in timestamp
order. Crucially, and unlike EpTO, it relies on a **fully synchronous
model**: delivery happens purely because the clock says the event is
old enough, with no check that earlier-ordered events might still be
in flight.

:class:`StabilityOrderedProcess` implements that delivery rule on top
of the shared dissemination component. It is *deliberately* missing
EpTO's two ordering guards (Algorithm 2):

* no ``minQueuedTs`` guard — a stable event is delivered even if a
  smaller-timestamp event is still aging;
* no last-delivered-key discard — a late event is delivered on
  stabilization regardless of what was already delivered.

Under the synchrony Pbcast assumes (bounded latency below the round
duration, no drift) this delivers in total order; under the asynchrony
EpTO targets it visibly violates order. The ordering-guard ablation
benchmark (``benchmarks/test_ablation_ordering_guard.py``) quantifies
exactly that gap, supporting the paper's §7 claim that Pbcast-style
protocols need "a static and fully synchronous network".
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List

from ..core.clock import StabilityOracle, make_oracle
from ..core.config import EpToConfig
from ..core.dissemination import DisseminationComponent
from ..core.event import Ball, Event, EventId, EventRecord
from ..core.interfaces import PeerSampler, Transport


class StabilityOrderedProcess:
    """Deliver-on-stability broadcast without EpTO's ordering guards.

    Hosting interface matches
    :class:`~repro.core.process.EpToProcess` (``broadcast`` /
    ``on_ball`` / ``on_round``) so it plugs into
    :class:`~repro.sim.cluster.SimCluster` via ``process_factory``.

    Args mirror :class:`~repro.broadcast.balls_bins.BallsBinsProcess`.
    """

    def __init__(
        self,
        node_id: int,
        config: EpToConfig,
        peer_sampler: PeerSampler,
        transport: Transport,
        on_deliver: Callable[[Event], None],
        time_source: Callable[[], int] | None = None,
        rng: random.Random | None = None,
        oracle: StabilityOracle | None = None,
    ) -> None:
        self.node_id = node_id
        self.config = config
        if oracle is None:
            oracle = make_oracle(config.clock, config.ttl, time_source)
        self.oracle = oracle
        self._on_deliver = on_deliver
        self._received: Dict[EventId, EventRecord] = {}
        self._delivered: set[EventId] = set()
        self.delivered_count = 0
        self.dissemination = DisseminationComponent(
            node_id=node_id,
            config=config,
            oracle=oracle,
            peer_sampler=peer_sampler,
            transport=transport,
            order_events=self._order_events,
            rng=rng,
        )

    def _order_events(self, ball: Ball) -> None:
        """Stability-only delivery: age, merge, deliver all stable.

        This is EpTO's Algorithm 2 with lines 9 (late discard) and
        15-26 (deliverable/queued split) removed — the rule Pbcast's
        synchronous model permits.
        """
        for record in self._received.values():
            record.age()
        for entry in ball:
            if entry.event.id in self._delivered:
                continue
            record = self._received.get(entry.event.id)
            if record is not None:
                record.merge_ttl(entry.ttl)
            else:
                self._received[entry.event.id] = EventRecord(entry.event, entry.ttl)

        stable: List[EventRecord] = [
            record
            for record in self._received.values()
            if self.oracle.is_deliverable(record)
        ]
        stable.sort(key=lambda record: record.event.order_key)
        for record in stable:
            event = record.event
            del self._received[event.id]
            self._delivered.add(event.id)
            self.delivered_count += 1
            self._on_deliver(event)

    def broadcast(self, payload: Any = None) -> Event:
        """Broadcast *payload* (delivered after the stability delay)."""
        return self.dissemination.broadcast(payload)

    def on_ball(self, ball: Ball) -> None:
        """Network entry point."""
        self.dissemination.receive_ball(ball)

    def on_round(self) -> None:
        """Timer entry point."""
        self.dissemination.round_tick()

    @property
    def pending_count(self) -> int:
        """Known-but-undelivered events."""
        return len(self._received)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StabilityOrderedProcess(id={self.node_id}, "
            f"delivered={self.delivered_count}, pending={self.pending_count})"
        )
