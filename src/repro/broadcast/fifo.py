"""FIFO-order epidemic broadcast baseline.

A middle point between the unordered balls-and-bins baseline and full
EpTO total order, in the spirit of the Bimodal Multicast follow-up the
paper's related work discusses ("messages are delivered in FIFO
order", §7 on [2]): events from the *same* source are delivered in
their broadcast (sequence) order, but events from different sources are
delivered at first availability with no cross-source guarantees.

Useful as an ablation: it quantifies how much of EpTO's delivery delay
buys *total* order rather than mere per-source ordering.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict

from ..core.clock import StabilityOracle, make_oracle
from ..core.config import EpToConfig
from ..core.dissemination import DisseminationComponent
from ..core.event import Ball, Event, EventId
from ..core.interfaces import PeerSampler, Transport


class FifoProcess:
    """Per-source FIFO delivery over the shared dissemination component.

    Events are buffered per source and released in contiguous sequence
    order; a missing sequence number blocks later events from that
    source only (unordered across sources).

    Args mirror :class:`~repro.broadcast.balls_bins.BallsBinsProcess`.
    """

    def __init__(
        self,
        node_id: int,
        config: EpToConfig,
        peer_sampler: PeerSampler,
        transport: Transport,
        on_deliver: Callable[[Event], None],
        time_source: Callable[[], int] | None = None,
        rng: random.Random | None = None,
        oracle: StabilityOracle | None = None,
    ) -> None:
        self.node_id = node_id
        self.config = config
        if oracle is None:
            oracle = make_oracle(config.clock, config.ttl, time_source)
        self.oracle = oracle
        self._on_deliver = on_deliver
        self._seen: set[EventId] = set()
        # Per-source reassembly: next expected seq and buffered events.
        self._next_seq: Dict[int, int] = {}
        self._buffers: Dict[int, Dict[int, Event]] = {}
        self.delivered_count = 0
        self.blocked_count = 0
        self.dissemination = DisseminationComponent(
            node_id=node_id,
            config=config,
            oracle=oracle,
            peer_sampler=peer_sampler,
            transport=transport,
            order_events=self._ingest,
            rng=rng,
        )

    def _ingest(self, ball: Ball) -> None:
        for entry in ball:
            event = entry.event
            if event.id in self._seen:
                continue
            self._seen.add(event.id)
            source = event.source_id
            buffer = self._buffers.setdefault(source, {})
            buffer[event.seq] = event
            self._drain(source)

    def _drain(self, source: int) -> None:
        """Deliver contiguous buffered events from *source*."""
        buffer = self._buffers[source]
        next_seq = self._next_seq.get(source, 0)
        while next_seq in buffer:
            event = buffer.pop(next_seq)
            self.delivered_count += 1
            self._on_deliver(event)
            next_seq += 1
        self._next_seq[source] = next_seq
        self.blocked_count = sum(len(b) for b in self._buffers.values())

    def broadcast(self, payload: Any = None) -> Event:
        """Broadcast *payload* (delivered locally in FIFO position)."""
        return self.dissemination.broadcast(payload)

    def on_ball(self, ball: Ball) -> None:
        """Network entry point (delivers eagerly, like the baseline)."""
        self._ingest(ball)
        self.dissemination.receive_ball(ball)

    def on_round(self) -> None:
        """Timer entry point: relay the accumulated ball."""
        self.dissemination.round_tick()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FifoProcess(id={self.node_id}, delivered={self.delivered_count}, "
            f"blocked={self.blocked_count})"
        )
