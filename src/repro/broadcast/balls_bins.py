"""Unordered balls-and-bins epidemic broadcast (Koldehofe [19]).

The paper's Figure 6 baseline: "a pure balls-and-bins dissemination
(i.e., Algorithm 1) without order guarantees, essentially showing the
time required for an event to infect all processes". This is exactly
EpTO's dissemination component with the ordering component replaced by
immediate first-sight delivery.

It reuses :class:`repro.core.dissemination.DisseminationComponent`
verbatim, so the baseline and EpTO share identical relaying behaviour
— the measured gap in Figure 6 is purely the cost of ordering.
"""

from __future__ import annotations

import random
from typing import Any, Callable

from ..core.clock import StabilityOracle, make_oracle
from ..core.config import EpToConfig
from ..core.dissemination import DisseminationComponent
from ..core.event import Ball, Event, EventId
from ..core.interfaces import PeerSampler, Transport


class BallsBinsProcess:
    """Reliable-broadcast process: delivers events on first sight.

    Exposes the same hosting interface as
    :class:`~repro.core.process.EpToProcess` (``broadcast`` /
    ``on_ball`` / ``on_round``) so a
    :class:`~repro.sim.cluster.SimCluster` can host either via its
    ``process_factory`` hook.

    Args:
        node_id: Unique process identifier.
        config: Reuses :class:`~repro.core.config.EpToConfig` for the
            shared knobs (fanout, TTL, round interval, clock type).
        peer_sampler: PSS view.
        transport: Outgoing channel.
        on_deliver: Called once per distinct event, at first sight —
            *not* in total order.
        time_source: Needed for ``config.clock == "global"``.
        rng: Randomness for peer selection.
    """

    def __init__(
        self,
        node_id: int,
        config: EpToConfig,
        peer_sampler: PeerSampler,
        transport: Transport,
        on_deliver: Callable[[Event], None],
        time_source: Callable[[], int] | None = None,
        rng: random.Random | None = None,
        oracle: StabilityOracle | None = None,
    ) -> None:
        self.node_id = node_id
        self.config = config
        if oracle is None:
            oracle = make_oracle(config.clock, config.ttl, time_source)
        self.oracle = oracle
        self._on_deliver = on_deliver
        self._seen: set[EventId] = set()
        self.delivered_count = 0
        self.dissemination = DisseminationComponent(
            node_id=node_id,
            config=config,
            oracle=oracle,
            peer_sampler=peer_sampler,
            transport=transport,
            order_events=self._deliver_new,
            rng=rng,
        )

    def _deliver_new(self, ball: Ball) -> None:
        """Deliver each never-seen event immediately (no ordering)."""
        for entry in ball:
            event = entry.event
            if event.id not in self._seen:
                self._seen.add(event.id)
                self.delivered_count += 1
                self._on_deliver(event)

    def broadcast(self, payload: Any = None) -> Event:
        """Broadcast *payload*; the local copy delivers next round."""
        return self.dissemination.broadcast(payload)

    def on_ball(self, ball: Ball) -> None:
        """Network entry point.

        Unlike EpTO, the baseline delivers straight from the incoming
        ball as well (first sight), not only at round boundaries — an
        event expiring its TTL on arrival would otherwise never be
        delivered here, whereas EpTO's ordering component intentionally
        ignores such stragglers.
        """
        self._deliver_new(ball)
        self.dissemination.receive_ball(ball)

    def on_round(self) -> None:
        """Timer entry point: relay the accumulated ball."""
        self.dissemination.round_tick()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BallsBinsProcess(id={self.node_id}, "
            f"delivered={self.delivered_count})"
        )
