"""Baseline epidemic broadcast protocols (no / weaker ordering)."""

from .balls_bins import BallsBinsProcess
from .fifo import FifoProcess
from .pbcast import StabilityOrderedProcess

__all__ = ["BallsBinsProcess", "FifoProcess", "StabilityOrderedProcess"]
