"""Fabric-level admission control: seal outgoing balls, admit incoming.

:class:`BallGuard` is what the three network fabrics (`SimNetwork`,
`AsyncNetwork`, `UdpNetwork`) actually talk to. It wraps an
:class:`~repro.auth.authenticator.HmacAuthenticator` with the two
policies the fabrics share:

* **Seal on send** — :meth:`seal` signs every entry whose event was
  *originated by the sender* (``entry.event.source_id == sender``) and
  remembers the signature in a bounded FIFO cache keyed by event id.
  A node never signs events it merely relays: that is the
  authenticated-diffusion model (Malkhi et al.) — only the source can
  vouch for its own events, so a hostile relay that mutates someone
  else's entry cannot produce a matching MAC.
* **Admit on receive** — :meth:`admit_ball` (object fabrics, where the
  signature travels in the guard's cache) and :meth:`admit_signed`
  (UDP, where it travels in the datagram) verify each entry, drop the
  ones that fail, and report per-verdict counts so the fabrics can
  surface ``dropped_bad_signature`` / ``dropped_unknown_key`` /
  ``dropped_unsigned``.

The cache doubles as a **sign-once oracle**: the first seal of a given
event id pins the canonical bytes that were MACed. The simulator's
fabrics share one guard per network, which models every node holding
its own key without serializing signatures into object messages —
because the origin's ``seal`` always runs before any relay can forward
the event, the cache holds the genuine event's MAC, and a mutated copy
under the same id fails recomputation at admission.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.event import Ball, BallEntry, EventId
from .authenticator import (
    VERDICT_BAD_SIGNATURE,
    VERDICT_OK,
    VERDICT_UNKNOWN_KEY,
    EventSignature,
    HmacAuthenticator,
    SignedBall,
)

#: Default signature-cache capacity. Event ids are retired from balls
#: after TTL rounds, so anything beyond a few rounds of traffic is dead
#: weight; 65k entries is orders of magnitude above any drill's window.
DEFAULT_CACHE_SIZE = 1 << 16


@dataclass(slots=True)
class AdmitCounts:
    """Per-verdict tally for one admitted ball."""

    bad_signature: int = 0
    unknown_key: int = 0
    unsigned: int = 0

    @property
    def rejected(self) -> int:
        """Total entries dropped by admission."""
        return self.bad_signature + self.unknown_key + self.unsigned


class BallGuard:
    """Seals outgoing and admits incoming balls for one fabric."""

    def __init__(
        self,
        authenticator: HmacAuthenticator,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        self.authenticator = authenticator
        self._cache_size = int(cache_size)
        self._signatures: "OrderedDict[EventId, EventSignature]" = OrderedDict()

    # ------------------------------------------------------------------
    # Outgoing
    # ------------------------------------------------------------------

    def seal(self, sender: int, ball: Ball) -> None:
        """Sign (and cache) the entries *sender* originated.

        Relayed entries (``source_id != sender``) are left alone — their
        signatures were cached when their sources first sealed them, or
        they stay unsigned and admission drops them.
        """
        for entry in ball:
            event = entry.event
            if event.source_id != sender:
                continue
            if event.id not in self._signatures:
                self._remember(event.id, self.authenticator.sign(event))

    def attach(self, ball: Ball) -> SignedBall:
        """Wire form of *ball*: each entry paired with its cached
        signature (``None`` when the guard has never sealed that id)."""
        return SignedBall(
            entries=ball,
            signatures=tuple(
                self._signatures.get(entry.event.id) for entry in ball
            ),
        )

    # ------------------------------------------------------------------
    # Incoming
    # ------------------------------------------------------------------

    def admit_ball(self, ball: Ball) -> Tuple[Ball, AdmitCounts]:
        """Verify *ball* against cached signatures (object fabrics).

        Returns the admitted sub-ball (original entry objects, original
        order) plus the rejection tally.
        """
        signatures = tuple(
            self._signatures.get(entry.event.id) for entry in ball
        )
        return self._admit(ball, signatures, cache_verified=False)

    def admit_signed(self, signed: SignedBall) -> Tuple[Ball, AdmitCounts]:
        """Verify a decoded :class:`SignedBall` (datagram fabrics).

        Verified signatures are cached so this receiver can later relay
        the entries onward with their MACs attached.
        """
        return self._admit(
            signed.entries, signed.signatures, cache_verified=True
        )

    def _admit(
        self,
        ball: Ball,
        signatures: Tuple[Optional[EventSignature], ...],
        cache_verified: bool,
    ) -> Tuple[Ball, AdmitCounts]:
        counts = AdmitCounts()
        admitted: List[BallEntry] = []
        for entry, signature in zip(ball, signatures):
            if signature is None:
                counts.unsigned += 1
                continue
            verdict = self.authenticator.verify(entry.event, signature)
            if verdict == VERDICT_OK:
                if cache_verified and entry.event.id not in self._signatures:
                    self._remember(entry.event.id, signature)
                admitted.append(entry)
            elif verdict == VERDICT_UNKNOWN_KEY:
                counts.unknown_key += 1
            else:
                assert verdict == VERDICT_BAD_SIGNATURE
                counts.bad_signature += 1
        return tuple(admitted), counts

    # ------------------------------------------------------------------
    # Cache
    # ------------------------------------------------------------------

    def _remember(self, event_id: EventId, signature: EventSignature) -> None:
        self._signatures[event_id] = signature
        while len(self._signatures) > self._cache_size:
            self._signatures.popitem(last=False)

    def cached_signature(self, event_id: EventId) -> Optional[EventSignature]:
        """The cached signature for *event_id*, if any (telemetry/tests)."""
        return self._signatures.get(event_id)

    def __len__(self) -> int:
        return len(self._signatures)
