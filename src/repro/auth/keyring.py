"""Per-cluster key material: per-node keys, epochs, rotation.

A :class:`KeyRing` derives every node's signing key from one cluster
master secret, so provisioning a thousand-node drill needs a single
string while each node still signs under its *own* key: forging another
identity's events requires that identity's key, which is exactly the
authenticated-diffusion assumption of Malkhi et al. (*On Diffusing
Updates in a Byzantine Environment*). Keys are versioned by a per-node
**epoch**: :meth:`rotate` bumps the epoch (the new key is a fresh
derivation), and verifiers keep accepting a bounded window of previous
epochs (``retain_epochs``) so events signed just before a rotation are
not orphaned mid-flight — rotation is a ratchet, not a flag day.

Everything here is the Python standard library (:mod:`hmac`,
:mod:`hashlib`): the robustness layer stays dependency-free.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Dict, Set

from ..core.errors import AuthError


def derive_key(master: bytes, node_id: int, epoch: int) -> bytes:
    """Deterministic per-(node, epoch) key: HMAC-SHA256 of a domain-
    separated label under the master secret."""
    label = b"epto-auth|node=%d|epoch=%d" % (node_id, epoch)
    return hmac.new(master, label, hashlib.sha256).digest()


class KeyRing:
    """Cluster key material with per-node keys and rotation.

    Args:
        master: The cluster master secret (``str`` is UTF-8 encoded).
            Every per-node key is derived from it, so two rings built
            from the same secret agree on every key — which is how the
            simulator's fabric-global ring models each node holding its
            own key without distributing key files.
        retain_epochs: How many epochs *behind* a node's current epoch
            verifiers still accept. ``1`` (default) tolerates events
            signed immediately before a rotation; ``0`` makes rotation
            an instant cut-over.
    """

    def __init__(self, master: bytes | str, retain_epochs: int = 1) -> None:
        if isinstance(master, str):
            master = master.encode()
        if not master:
            raise AuthError("master secret must not be empty")
        if retain_epochs < 0:
            raise AuthError(
                f"retain_epochs must be >= 0, got {retain_epochs}"
            )
        self._master = bytes(master)
        self.retain_epochs = int(retain_epochs)
        self._epochs: Dict[int, int] = {}
        self._revoked: Set[int] = set()

    # ------------------------------------------------------------------
    # Key access
    # ------------------------------------------------------------------

    def epoch_of(self, node_id: int) -> int:
        """The current signing epoch of *node_id* (0 until rotated)."""
        return self._epochs.get(node_id, 0)

    def key_for(self, node_id: int, epoch: int | None = None) -> bytes:
        """The signing key of *node_id* at *epoch* (current if omitted).

        Raises:
            AuthError: If the identity is revoked or the epoch is
                outside the acceptance window (future, or older than
                ``retain_epochs`` behind).
        """
        if node_id in self._revoked:
            raise AuthError(f"node {node_id} is revoked")
        if epoch is None:
            epoch = self.epoch_of(node_id)
        elif not self.accepts(node_id, epoch):
            raise AuthError(
                f"epoch {epoch} of node {node_id} is outside the "
                f"acceptance window (current {self.epoch_of(node_id)}, "
                f"retain {self.retain_epochs})"
            )
        return derive_key(self._master, node_id, epoch)

    def accepts(self, node_id: int, epoch: int) -> bool:
        """Whether a signature under ``(node_id, epoch)`` is verifiable:
        the identity is not revoked and the epoch is within the
        retention window behind (or equal to) the current epoch."""
        if node_id in self._revoked:
            return False
        current = self.epoch_of(node_id)
        return current - self.retain_epochs <= epoch <= current

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def rotate(self, node_id: int) -> int:
        """Advance *node_id* to a fresh key; returns the new epoch.

        Signatures under epochs more than ``retain_epochs`` behind the
        new epoch stop verifying immediately.
        """
        if node_id in self._revoked:
            raise AuthError(f"cannot rotate revoked node {node_id}")
        new_epoch = self.epoch_of(node_id) + 1
        self._epochs[node_id] = new_epoch
        return new_epoch

    def revoke(self, node_id: int) -> None:
        """Permanently stop signing and verifying for *node_id*; its
        signatures verify as ``unknown_key`` from now on."""
        self._revoked.add(node_id)

    def is_revoked(self, node_id: int) -> bool:
        """Whether :meth:`revoke` ran for *node_id*."""
        return node_id in self._revoked

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KeyRing(rotated={len(self._epochs)}, "
            f"revoked={len(self._revoked)}, retain={self.retain_epochs})"
        )
