"""Event authentication (`repro.auth`).

Dependency-free HMAC-SHA256 authentication of EpTO events: a
:class:`KeyRing` derives per-node keys (with rotation epochs) from one
cluster master secret, an :class:`HmacAuthenticator` signs and verifies
the canonical event bytes that :mod:`repro.sync` already CRC-checks,
and a :class:`BallGuard` applies the seal-on-send / admit-on-receive
policy shared by every network fabric. Authenticated diffusion detects
forgery and relay equivocation — it does **not** provide Byzantine
fault-tolerant ordering; read docs/SECURITY.md for the threat model.
"""

from .authenticator import (
    MAC_LEN,
    VERDICT_BAD_SIGNATURE,
    VERDICT_OK,
    VERDICT_UNKNOWN_KEY,
    EventSignature,
    HmacAuthenticator,
    SignedBall,
)
from .guard import DEFAULT_CACHE_SIZE, AdmitCounts, BallGuard
from .keyring import KeyRing, derive_key

__all__ = [
    "KeyRing",
    "derive_key",
    "HmacAuthenticator",
    "EventSignature",
    "SignedBall",
    "MAC_LEN",
    "VERDICT_OK",
    "VERDICT_BAD_SIGNATURE",
    "VERDICT_UNKNOWN_KEY",
    "BallGuard",
    "AdmitCounts",
    "DEFAULT_CACHE_SIZE",
]
