"""HMAC-SHA256 event authentication over canonical event bytes.

An :class:`HmacAuthenticator` signs exactly the bytes
:func:`repro.sync.canonical_event_bytes` produces — the ``(ts, source,
seq, payload_len)`` frame plus the sorted-key JSON payload. Two
consequences follow from that choice:

* The MAC is fabric-independent: an event signed in the simulator
  verifies after a UDP round-trip, because both fabrics agree on the
  canonical form (it is the same encoding ``repro.sync`` CRC-checks).
* The relay-mutable TTL is **not** covered. Relays legitimately
  decrement it every hop, so covering it would force re-signing per
  hop; the flip side is that a hostile relay can inflate TTLs without
  breaking any MAC (see docs/SECURITY.md — EpTO's delivery dedupe makes
  that a liveness nuisance, not a safety violation).

Verification never raises for hostile input: :meth:`verify` returns a
verdict string (``"ok"`` / ``"bad_signature"`` / ``"unknown_key"``) so
receivers count and drop instead of crashing on attacker-controlled
bytes. :class:`repro.core.errors.AuthError` is reserved for caller
misuse (signing for a revoked identity).
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.errors import AuthError
from ..core.event import Event
from ..sync.protocol import canonical_event_bytes
from .keyring import KeyRing

#: MAC bytes carried on the wire. HMAC-SHA256 truncated to 128 bits —
#: the standard truncation (RFC 2104 §5): halves per-entry overhead
#: while keeping forgery work far beyond anything a drill can brute.
MAC_LEN = 16

#: Verdicts returned by :meth:`HmacAuthenticator.verify`.
VERDICT_OK = "ok"
VERDICT_BAD_SIGNATURE = "bad_signature"
VERDICT_UNKNOWN_KEY = "unknown_key"


@dataclass(frozen=True, slots=True)
class EventSignature:
    """A detached MAC over one event's canonical bytes.

    Attributes:
        epoch: The signer's key epoch at signing time, carried so the
            verifier derives the matching key across rotations.
        mac: The truncated HMAC-SHA256 tag (:data:`MAC_LEN` bytes).
    """

    epoch: int
    mac: bytes


@dataclass(frozen=True, slots=True)
class SignedBall:
    """A ball in wire form: entries plus one optional signature each.

    ``signatures[i]`` authenticates ``entries[i].event`` (``None`` =
    the sender attached no MAC for that entry — a verifying receiver
    counts and drops it, a non-verifying one just strips it).
    """

    entries: tuple
    signatures: Tuple[Optional[EventSignature], ...]

    def __post_init__(self) -> None:
        if len(self.entries) != len(self.signatures):
            raise AuthError(
                f"signed ball has {len(self.entries)} entries but "
                f"{len(self.signatures)} signatures"
            )


class HmacAuthenticator:
    """Signs and verifies events against a :class:`KeyRing`.

    The epoch is mixed into the MAC input (not just used for key
    derivation) so a tag can never be replayed across an epoch whose
    key happened to collide with another derivation.
    """

    def __init__(self, keyring: KeyRing) -> None:
        self.keyring = keyring

    def sign(self, event: Event) -> EventSignature:
        """MAC *event* under its source's current key.

        Raises:
            AuthError: If the source identity is revoked.
        """
        epoch = self.keyring.epoch_of(event.source_id)
        key = self.keyring.key_for(event.source_id, epoch)
        return EventSignature(epoch=epoch, mac=self._mac(key, epoch, event))

    def verify(self, event: Event, signature: EventSignature) -> str:
        """Check *signature* against *event*; never raises for bad input.

        Returns:
            ``"ok"`` when the MAC matches; ``"unknown_key"`` when the
            source is revoked or the epoch falls outside the keyring's
            acceptance window; ``"bad_signature"`` when the MAC does
            not match (tampered event or wrong key).
        """
        if not self.keyring.accepts(event.source_id, signature.epoch):
            return VERDICT_UNKNOWN_KEY
        key = self.keyring.key_for(event.source_id, signature.epoch)
        expected = self._mac(key, signature.epoch, event)
        if hmac.compare_digest(expected, signature.mac):
            return VERDICT_OK
        return VERDICT_BAD_SIGNATURE

    @staticmethod
    def _mac(key: bytes, epoch: int, event: Event) -> bytes:
        message = epoch.to_bytes(4, "big") + canonical_event_bytes(event)
        return hmac.new(key, message, hashlib.sha256).digest()[:MAC_LEN]
