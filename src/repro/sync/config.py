"""Tuning knobs for the anti-entropy catch-up protocol."""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class SyncConfig:
    """Parameters of one node's :class:`~repro.sync.SyncManager`.

    Attributes:
        interval_rounds: Idle digest-probe period, in EpTO round units
            (the fabrics convert to ticks/seconds with the node's round
            interval). Catch-up after recovery ignores this and starts
            immediately.
        chunk_max_events: Hard cap on events per ``SYNC_CHUNK``.
        chunk_max_bytes: Soft cap on encoded event bytes per chunk
            (the first qualifying event is always sent, so a single
            oversized payload cannot wedge a session). Keep below the
            transport datagram limit minus header room.
        request_timeout_rounds: Rounds to wait for the chunk answering
            a request (or the digest answering a probe) before retrying.
        max_retries: Resend attempts per request before the pull
            session is aborted (a fresh probe will start over).
        backoff_factor: Multiplier applied to the timeout after each
            retry (exponential backoff).
        catch_up_rounds: Upper bound, in round units, on the blocking
            post-recovery catch-up phase; when exhausted the node
            rejoins dissemination anyway and continues repairing in the
            background.
    """

    interval_rounds: float = 4.0
    chunk_max_events: int = 64
    chunk_max_bytes: int = 32_000
    request_timeout_rounds: float = 2.0
    max_retries: int = 4
    backoff_factor: float = 2.0
    catch_up_rounds: float = 40.0

    def __post_init__(self) -> None:
        if self.interval_rounds <= 0:
            raise ConfigurationError("interval_rounds must be positive")
        if self.chunk_max_events < 1:
            raise ConfigurationError("chunk_max_events must be at least 1")
        if self.chunk_max_bytes < 1:
            raise ConfigurationError("chunk_max_bytes must be at least 1")
        if self.request_timeout_rounds <= 0:
            raise ConfigurationError("request_timeout_rounds must be positive")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be at least 1.0")
        if self.catch_up_rounds < 0:
            raise ConfigurationError("catch_up_rounds must be non-negative")
