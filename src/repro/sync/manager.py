"""Per-node anti-entropy driver: digest probes and pull sessions.

One :class:`SyncManager` runs beside each journaled EpTO process. It is
transport- and scheduler-agnostic: the hosting fabric calls
:meth:`SyncManager.on_round` once per round interval and routes every
incoming sync message to :meth:`SyncManager.on_message`; the manager
talks back through an injected ``send(dst, message)`` callable. The
simulator drives it from a :class:`~repro.sim.engine.PeriodicTask`
(fully deterministic), the asyncio runtime from a background task.

State machine (one session at a time, deliberately):

```
IDLE --interval elapsed--> PROBING --answer: peer ahead--> PULLING
 ^                            |  |                            |
 |<--answer: peer not ahead---+  +--timeout: new peer probe   |
 |<------- chunks applied, confirmation probe sent -----------+
```

* **IDLE → PROBING**: every ``interval_rounds`` the manager samples one
  peer from the peer-sampling service and sends a digest probe.
* **PROBING**: an answering digest that shows the peer ahead opens a
  pull session; one that does not marks the node caught up. No answer
  within the timeout re-probes a freshly sampled peer (the previous
  one may be down — that is the very situation anti-entropy exists
  for).
* **PULLING**: cursor-paginated ``SYNC_REQUEST``/``SYNC_CHUNK`` loop
  with per-request timeout, exponential backoff and bounded retries;
  checksum failures count as losses and re-request the same cursor.
  After the final chunk the manager sends a confirmation probe to the
  same peer, so progress the peer made *during* the session is caught
  immediately.

Push-pull: a node receiving a probe answers with its own digest *and*
checks the prober's digest against its own journal — if the prober is
ahead, the responder starts its own pull session. A single probe
therefore repairs whichever side is behind.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from typing import Callable, Dict, Iterable, Optional, Sequence, TYPE_CHECKING

from ..core.event import Event, OrderKey
from .config import SyncConfig
from .protocol import (
    DeliveryDigest,
    SyncChunk,
    SyncDigest,
    SyncRequest,
    event_wire_cost,
    events_checksum,
    freeze_watermarks,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.process import EpToProcess
    from ..storage.journal import DeliveryJournal


@dataclass
class SyncStats:
    """Counters exposed per node (see docs/SYNC.md)."""

    rounds: int = 0
    probes_sent: int = 0
    probe_timeouts: int = 0
    digests_sent: int = 0
    digests_received: int = 0
    requests_sent: int = 0
    requests_served: int = 0
    chunks_sent: int = 0
    chunks_received: int = 0
    stale_chunks: int = 0
    checksum_failures: int = 0
    retries: int = 0
    timeouts: int = 0
    sessions_started: int = 0
    sessions_completed: int = 0
    sessions_aborted: int = 0
    events_repaired: int = 0
    events_served: int = 0
    bytes_fetched: int = 0
    bytes_served: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class _PullSession:
    """One in-flight cursor-paginated pull from a single peer."""

    peer: int
    cursor: Optional[OrderKey]
    req_id: int
    rounds_waiting: int = 0
    retries: int = 0


class SyncManager:
    """Anti-entropy state machine for one journaled node.

    Args:
        node_id: Identity of the hosting node (for message addressing).
        journal: The node's live :class:`DeliveryJournal` — source of
            the local digest, the range reads served to peers, and the
            watermark that fetched events are filtered against.
        send: ``send(dst, message)`` transport callable.
        peer_sampler: Object with ``sample(k)`` returning up to ``k``
            live peer ids (the node's peer-sampling service view).
        apply_events: ``apply_events(events) -> int`` — applies fetched
            events through the ordering component's delivery path and
            returns how many were actually delivered (see
            :func:`epto_chunk_applier`).
        config: Protocol parameters.
    """

    def __init__(
        self,
        node_id: int,
        journal: "DeliveryJournal",
        send: Callable[[int, object], None],
        peer_sampler,
        apply_events: Callable[[Sequence[Event]], int],
        config: Optional[SyncConfig] = None,
    ) -> None:
        self.node_id = node_id
        self.journal = journal
        self.config = config or SyncConfig()
        self.stats = SyncStats()
        self._send = send
        self._peer_sampler = peer_sampler
        self._apply = apply_events
        self._session: Optional[_PullSession] = None
        self._probe_waiting: Optional[int] = None  # rounds since last probe
        self._idle_rounds = 0.0
        self._caught_up = False
        self._next_req_id = 1

    # ------------------------------------------------------------------
    # Scheduling surface
    # ------------------------------------------------------------------

    @property
    def caught_up(self) -> bool:
        """Whether the last completed exchange found no peer ahead and
        no pull session is in flight."""
        return self._session is None and self._caught_up

    @property
    def session_active(self) -> bool:
        return self._session is not None

    def kick(self) -> None:
        """Force a digest probe on the next :meth:`on_round` (used for
        immediate catch-up right after recovery)."""
        if self._session is None:
            self._probe_waiting = None
            self._idle_rounds = self.config.interval_rounds

    def on_round(self) -> None:
        """Advance timers; probe, retry, or time out as due."""
        self.stats.rounds += 1
        session = self._session
        if session is not None:
            session.rounds_waiting += 1
            if session.rounds_waiting >= self._timeout_rounds(session.retries):
                self.stats.timeouts += 1
                self._retry_or_abort(session)
            return
        if self._probe_waiting is not None:
            self._probe_waiting += 1
            if self._probe_waiting >= self.config.request_timeout_rounds:
                # The probed peer never answered (down, or the datagram
                # was lost). Unlike requests there is no backoff: probes
                # are tiny and idempotent, so just ask someone else.
                self.stats.probe_timeouts += 1
                self._send_probe()
            return
        self._idle_rounds += 1
        if self._idle_rounds >= self.config.interval_rounds:
            self._send_probe()

    # ------------------------------------------------------------------
    # Message surface
    # ------------------------------------------------------------------

    def on_message(self, src: int, message: object) -> bool:
        """Route one incoming sync message; returns ``False`` when the
        message is not an anti-entropy type (caller falls through to the
        epidemic path)."""
        if isinstance(message, SyncDigest):
            self._on_digest(src, message)
        elif isinstance(message, SyncRequest):
            self._on_request(src, message)
        elif isinstance(message, SyncChunk):
            self._on_chunk(src, message)
        else:
            return False
        return True

    def local_digest(self) -> DeliveryDigest:
        return DeliveryDigest.of(
            self.journal.last_delivered_key, self.journal.source_watermarks
        )

    # ------------------------------------------------------------------
    # Digest exchange
    # ------------------------------------------------------------------

    def _send_probe(self) -> None:
        peers = self._peer_sampler.sample(1)
        if not peers:
            # No live peer in view; stay idle and retry next interval.
            self._probe_waiting = None
            self._idle_rounds = self.config.interval_rounds
            return
        self.stats.probes_sent += 1
        self.stats.digests_sent += 1
        self._probe_waiting = 0
        self._idle_rounds = 0.0
        self._send(peers[0], SyncDigest(self.local_digest(), reply=True))

    def _on_digest(self, src: int, message: SyncDigest) -> None:
        self.stats.digests_received += 1
        mine = self.local_digest()
        if message.reply:
            self.stats.digests_sent += 1
            self._send(src, SyncDigest(mine, reply=False))
        if self._session is not None:
            return
        if self._probe_waiting is not None and not message.reply:
            self._probe_waiting = None
            self._idle_rounds = 0.0
        if mine.behind(message.digest):
            self._start_session(src)
        elif not message.reply:
            # Concluded exchange with nobody ahead: converged (as far as
            # this sample can tell — the next interval re-checks).
            self._caught_up = True

    # ------------------------------------------------------------------
    # Responder side
    # ------------------------------------------------------------------

    def _on_request(self, src: int, request: SyncRequest) -> None:
        self.stats.requests_served += 1
        watermarks = dict(request.watermarks)
        max_events = max(1, request.max_events)
        max_bytes = max(1, request.max_bytes)
        events = []
        size = 0
        more = False
        for event in self.journal.delivered_after(request.after):
            if event.seq <= watermarks.get(event.source_id, -1):
                continue
            cost = event_wire_cost(event)
            if len(events) >= max_events or (events and size + cost > max_bytes):
                more = True
                break
            events.append(event)
            size += cost
        chunk = SyncChunk(
            req_id=request.req_id,
            events=tuple(events),
            checksum=events_checksum(events),
            more=more,
            peer_last=self.journal.last_delivered_key,
        )
        self.stats.chunks_sent += 1
        self.stats.events_served += len(events)
        self.stats.bytes_served += size
        self._send(src, chunk)

    # ------------------------------------------------------------------
    # Requester side
    # ------------------------------------------------------------------

    def _start_session(self, peer: int) -> None:
        self._caught_up = False
        self._probe_waiting = None
        self._idle_rounds = 0.0
        self.stats.sessions_started += 1
        self._session = _PullSession(
            peer=peer, cursor=self.journal.last_delivered_key, req_id=0
        )
        self._send_request(self._session)

    def _send_request(self, session: _PullSession) -> None:
        session.req_id = self._next_req_id
        self._next_req_id += 1
        session.rounds_waiting = 0
        self.stats.requests_sent += 1
        self._send(
            session.peer,
            SyncRequest(
                req_id=session.req_id,
                after=session.cursor,
                watermarks=freeze_watermarks(self.journal.source_watermarks),
                max_events=self.config.chunk_max_events,
                max_bytes=self.config.chunk_max_bytes,
            ),
        )

    def _on_chunk(self, src: int, chunk: SyncChunk) -> None:
        session = self._session
        if session is None or src != session.peer or chunk.req_id != session.req_id:
            self.stats.stale_chunks += 1
            return
        if events_checksum(chunk.events) != chunk.checksum:
            # Corrupted in transit below the transport's own checks;
            # treat exactly like a lost chunk and re-pull the cursor.
            self.stats.checksum_failures += 1
            self._retry_or_abort(session)
            return
        self.stats.chunks_received += 1
        session.retries = 0
        session.rounds_waiting = 0
        watermark = self.journal.last_delivered_key
        fresh = [
            event
            for event in chunk.events
            if watermark is None or event.order_key > watermark
        ]
        self.stats.bytes_fetched += sum(event_wire_cost(e) for e in fresh)
        self.stats.events_repaired += self._apply(fresh)
        if chunk.events:
            last = chunk.events[-1].order_key
            session.cursor = (
                last if session.cursor is None else max(session.cursor, last)
            )
        if chunk.more:
            self._send_request(session)
            return
        # Suffix exhausted. Confirm with a fresh probe to the same peer:
        # anything the peer delivered while the session ran shows up in
        # its answer and opens a follow-up session.
        peer = session.peer
        self._session = None
        self.stats.sessions_completed += 1
        self.stats.probes_sent += 1
        self.stats.digests_sent += 1
        self._probe_waiting = 0
        self._idle_rounds = 0.0
        self._send(peer, SyncDigest(self.local_digest(), reply=True))

    def _retry_or_abort(self, session: _PullSession) -> None:
        if session.retries >= self.config.max_retries:
            self.stats.sessions_aborted += 1
            self._session = None
            # Re-probe (a freshly sampled peer) at the next round.
            self._probe_waiting = None
            self._idle_rounds = self.config.interval_rounds
            return
        session.retries += 1
        self.stats.retries += 1
        self._send_request(session)

    def _timeout_rounds(self, retries: int) -> int:
        scale = self.config.backoff_factor**retries
        return max(1, math.ceil(self.config.request_timeout_rounds * scale))


def epto_chunk_applier(process: "EpToProcess") -> Callable[[Sequence[Event]], int]:
    """Build the ``apply_events`` callable for an EpTO process.

    Fetched events bypass the TTL oracle entirely: they were already
    delivered (hence stable) on the serving peer, so they go straight
    through :meth:`OrderingComponent.deliver_external` in chunk order —
    which is ``(ts, srcId, seq)`` order — and land in the journal/
    application callback exactly like an epidemic delivery. Afterwards
    any pending epidemic copies the repair made obsolete are discarded
    so the ordering component never attempts a second, out-of-order
    delivery of the same region.
    """

    def apply(events: Iterable[Event]) -> int:
        ordering = process.ordering
        applied = 0
        for event in events:
            if ordering.deliver_external(event):
                applied += 1
        ordering.discard_obsolete_pending()
        return applied

    return apply
