"""Anti-entropy wire protocol: digests, pull requests, log chunks.

Three message types close the TTL gap (see docs/SYNC.md):

* :class:`SyncDigest` — a compact summary of a node's delivered-order
  progress: the order key of its newest delivery plus a per-source
  high-watermark vector (highest sequence number delivered from each
  source). Sent as a probe (``reply=True``, asking the peer to answer
  with its own digest) and as the answer (``reply=False``).
* :class:`SyncRequest` — a cursor-paginated pull: "send me delivery
  records with order key above ``after`` that my watermarks do not
  cover, up to these size caps". Stateless on the responder — every
  request carries the full cursor, so a retry is a plain resend.
* :class:`SyncChunk` — one bounded batch of the missing log suffix, in
  ``(ts, srcId, seq)`` order, carrying its own CRC32 over the events
  (defence in depth above the transport: a corruption that survives
  datagram decoding is still caught before anything is applied) and a
  ``more`` flag driving the next request.

The dataclasses are runtime-agnostic plain data: the simulator and the
in-process asyncio fabric pass them as objects; the UDP fabric encodes
them via :mod:`repro.runtime.codec` (kinds ``SYNC_DIGEST`` /
``SYNC_REQUEST`` / ``SYNC_CHUNK``).
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..core.errors import StorageError
from ..core.event import Event, OrderKey

#: Canonical per-event frame: big-endian (ts, source, seq, payload_len).
#: The same layout the codec puts on the wire for chunk events.
_EVENT_FRAME = struct.Struct("!qqqI")

#: Fixed per-event framing cost on the wire (ts, source, seq, payload
#: length) — the payload JSON comes on top. Kept in sync with the codec
#: struct so responder-side size caps match what the codec will emit.
EVENT_WIRE_OVERHEAD = _EVENT_FRAME.size

#: Watermark vector as sorted, immutable ``(source_id, max_seq)`` pairs.
Watermarks = Tuple[Tuple[int, int], ...]


def freeze_watermarks(mapping: Mapping[int, int]) -> Watermarks:
    """Canonical (sorted, immutable) form of a watermark mapping."""
    return tuple(sorted((int(src), int(seq)) for src, seq in mapping.items()))


@dataclass(frozen=True, slots=True)
class DeliveryDigest:
    """Summary of one node's delivered-order progress.

    Attributes:
        last_key: Order key of the newest delivery (``None`` = nothing
            delivered yet).
        watermarks: Per-source high-watermark vector: for each source
            id, the highest sequence number delivered from it. Because
            a source's order keys increase with its sequence numbers,
            "every event from ``s`` with ``seq > watermarks[s]``" is
            exactly "every event from ``s`` this node is missing above
            its history".
    """

    last_key: Optional[OrderKey]
    watermarks: Watermarks = ()

    @classmethod
    def of(
        cls, last_key: Optional[OrderKey], watermarks: Mapping[int, int]
    ) -> "DeliveryDigest":
        """Build from a journal's key + watermark mapping."""
        return cls(
            last_key=tuple(last_key) if last_key is not None else None,
            watermarks=freeze_watermarks(watermarks),
        )

    def as_mapping(self) -> Dict[int, int]:
        """The watermark vector as a plain dict."""
        return dict(self.watermarks)

    def behind(self, other: "DeliveryDigest") -> bool:
        """Whether *other* has progressed past this digest."""
        if other.last_key is None:
            return False
        return self.last_key is None or tuple(self.last_key) < tuple(other.last_key)


@dataclass(frozen=True, slots=True)
class SyncDigest:
    """Digest announcement; ``reply=True`` asks the peer to answer with
    its own digest (the probe half of a digest exchange)."""

    digest: DeliveryDigest
    reply: bool = False


@dataclass(frozen=True, slots=True)
class SyncRequest:
    """Pull one bounded batch of missing deliveries.

    Attributes:
        req_id: Requester-chosen id echoed by the matching chunk, so a
            late chunk from a timed-out request is discarded instead of
            corrupting the session cursor.
        after: Cursor — only records with order key strictly above this
            are wanted (``None`` = from the beginning of the peer's
            log). Advanced past each applied chunk, which makes a
            retried request idempotent.
        watermarks: The requester's per-source watermark vector;
            records already covered by it are skipped even above the
            cursor (they were delivered through the epidemic while the
            pull was in flight).
        max_events: Upper bound on events per chunk.
        max_bytes: Upper bound on the chunk's encoded event bytes.
    """

    req_id: int
    after: Optional[OrderKey]
    watermarks: Watermarks = ()
    max_events: int = 64
    max_bytes: int = 32_000


@dataclass(frozen=True, slots=True)
class SyncChunk:
    """One bounded batch of the missing log suffix, in key order.

    Attributes:
        req_id: Echo of the request this chunk answers.
        events: The delivery records, ordered by ``(ts, srcId, seq)``.
        checksum: :func:`events_checksum` over *events*; verified by
            the requester before anything is applied.
        more: Whether the responder stopped at a size cap with further
            qualifying records remaining.
        peer_last: The responder's newest delivered key at serve time
            (progress telemetry; the confirmation probe is what decides
            convergence).
    """

    req_id: int
    events: Tuple[Event, ...]
    checksum: int
    more: bool = False
    peer_last: Optional[OrderKey] = None


#: Every anti-entropy message type (dispatch surface for the fabrics).
SYNC_MESSAGE_TYPES = (SyncDigest, SyncRequest, SyncChunk)


def event_wire_cost(event: Event) -> int:
    """Encoded size of one event inside a chunk (framing + payload).

    Raises:
        StorageError: If the payload is not JSON-serializable (such an
            event could never have been journaled or encoded).
    """
    return EVENT_WIRE_OVERHEAD + len(_canonical_payload(event))


def canonical_event_bytes(event: Event) -> bytes:
    """The canonical byte encoding of one event.

    The big-endian ``(ts, source, seq, payload_len)`` frame followed by
    the sorted-key JSON payload — the exact bytes
    :func:`events_checksum` CRCs and :mod:`repro.auth` HMACs, identical
    whether the event travelled as an object (sim, in-process asyncio)
    or as a datagram (UDP). The relay-mutable TTL is deliberately *not*
    part of the canonical form (docs/SECURITY.md).
    """
    payload = _canonical_payload(event)
    return (
        _EVENT_FRAME.pack(event.ts, event.source_id, event.seq, len(payload))
        + payload
    )


def events_checksum(events: Sequence[Event]) -> int:
    """CRC32 over the canonical encoding of *events*.

    Canonical form per event: :func:`canonical_event_bytes`.
    """
    crc = 0
    for event in events:
        crc = zlib.crc32(canonical_event_bytes(event), crc)
    return crc


def _canonical_payload(event: Event) -> bytes:
    try:
        return json.dumps(event.payload, sort_keys=True).encode()
    except (TypeError, ValueError) as exc:
        raise StorageError(
            f"payload of event {event.id} is not JSON-serializable: {exc}"
        ) from exc
