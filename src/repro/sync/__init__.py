"""Anti-entropy catch-up (`repro.sync`).

Pull-based epidemic repair layered on the durable delivery log: nodes
periodically exchange compact digests of delivered-order progress and
pull the missing log suffix from a peer in bounded, CRC-verified
chunks. This is the deterministic complement to EpTO's probabilistic,
TTL-windowed dissemination — a node whose outage outlived the TTL
window converges to the survivors' delivery sequence instead of
diverging forever. See docs/SYNC.md.
"""

from .config import SyncConfig
from .manager import SyncManager, SyncStats, epto_chunk_applier
from .protocol import (
    SYNC_MESSAGE_TYPES,
    DeliveryDigest,
    SyncChunk,
    SyncDigest,
    SyncRequest,
    canonical_event_bytes,
    event_wire_cost,
    events_checksum,
    freeze_watermarks,
)

__all__ = [
    "SyncConfig",
    "SyncManager",
    "SyncStats",
    "epto_chunk_applier",
    "DeliveryDigest",
    "SyncDigest",
    "SyncRequest",
    "SyncChunk",
    "SYNC_MESSAGE_TYPES",
    "canonical_event_bytes",
    "events_checksum",
    "event_wire_cost",
    "freeze_watermarks",
]
