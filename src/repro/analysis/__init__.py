"""Analytic machinery: hole-probability bounds, balls-in-bins math,
and the timing/profiling helpers behind ``benchmarks/perf``."""

from .ballsbins import (
    EpidemicTrace,
    coupon_collector_threshold,
    epidemic_growth,
    expected_empty_bins,
    p_all_bins_hit,
    p_bin_empty,
    simulate_gossip_coverage,
    simulate_throws,
)
from .empirical import (
    HoleEstimate,
    estimate_hole_probability,
    smallest_reliable_ttl,
    ttl_sweep,
)
from .tradeoffs import (
    TradeoffPoint,
    latency_saving,
    rounds_for_coverage,
    rounds_for_stability,
    tradeoff_curve,
)
from .profiling import (
    Timing,
    profile_callable,
    speedup,
    time_callable,
)
from .differential import (
    DifferentialScenario,
    EngineRun,
    assert_engines_equivalent,
    compare_runs,
    run_differential,
    run_flat_engine,
    run_object_engine,
)
from .bounds import (
    balls_thrown,
    hole_bound_series,
    log10_p_hole_any_process,
    log10_p_hole_fixed_process,
    p_hole_any_process,
    p_hole_fixed_process,
    smallest_c_for_target,
)

__all__ = [
    "DifferentialScenario",
    "EngineRun",
    "EpidemicTrace",
    "assert_engines_equivalent",
    "compare_runs",
    "run_differential",
    "run_flat_engine",
    "run_object_engine",
    "HoleEstimate",
    "Timing",
    "TradeoffPoint",
    "profile_callable",
    "speedup",
    "time_callable",
    "balls_thrown",
    "latency_saving",
    "rounds_for_coverage",
    "rounds_for_stability",
    "tradeoff_curve",
    "estimate_hole_probability",
    "smallest_reliable_ttl",
    "ttl_sweep",
    "coupon_collector_threshold",
    "epidemic_growth",
    "expected_empty_bins",
    "hole_bound_series",
    "log10_p_hole_any_process",
    "log10_p_hole_fixed_process",
    "p_all_bins_hit",
    "p_bin_empty",
    "p_hole_any_process",
    "p_hole_fixed_process",
    "simulate_gossip_coverage",
    "simulate_throws",
    "smallest_c_for_target",
]
