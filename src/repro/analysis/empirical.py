"""Empirical hole-probability estimation (paper §8.1).

The paper observes that Theorem 2's bounds "are very loose, and as a
result our bounds for the Probabilistic Agreement property are also
very loose", leaving "way too many balls in the system"; tightening
them is flagged as future work. This module provides the measurement
side of that program: fast Monte-Carlo estimation of the *actual*
per-process miss probability of the balls-and-bins gossip for given
``(n, K, rounds)``, directly comparable with the Figure 3 analytic
bound.

The estimator simulates only the dissemination layer (no engine, no
ordering) so tens of thousands of trials run in seconds, and reports a
Wilson confidence interval — when zero misses are observed, the upper
Wilson limit still yields a useful "at most" statement.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Sequence

from ..core.errors import ConfigurationError
from .ballsbins import simulate_gossip_coverage
from .bounds import log10_p_hole_fixed_process


@dataclass(frozen=True, slots=True)
class HoleEstimate:
    """Monte-Carlo estimate of the per-process miss probability.

    Attributes:
        n: System size.
        fanout: Gossip fanout ``K``.
        rounds: Relay rounds (the TTL).
        trials: Number of simulated disseminations.
        misses: Total (process, event) misses observed.
        exposures: Total (process, event) opportunities
            (``trials * (n - 1)``; the source always has its event).
    """

    n: int
    fanout: int
    rounds: int
    trials: int
    misses: int
    exposures: int

    @property
    def miss_rate(self) -> float:
        """Point estimate of P[a fixed process misses an event]."""
        return self.misses / self.exposures if self.exposures else 0.0

    def wilson_upper(self, z: float = 2.576) -> float:
        """Upper Wilson confidence limit (default 99%).

        Meaningful even at zero observed misses: it bounds how large
        the true miss probability could plausibly be given the sample.
        """
        if self.exposures == 0:
            return 1.0
        n = float(self.exposures)
        p = self.miss_rate
        denom = 1.0 + z * z / n
        center = p + z * z / (2.0 * n)
        margin = z * math.sqrt((p * (1.0 - p) + z * z / (4.0 * n)) / n)
        return min(1.0, (center + margin) / denom)

    def log10_bound(self, c: float) -> float:
        """The Figure 3a analytic bound at the matching ``c``."""
        return log10_p_hole_fixed_process(self.n, c)


def estimate_hole_probability(
    n: int,
    fanout: int,
    rounds: int,
    trials: int = 200,
    seed: int = 0,
) -> HoleEstimate:
    """Monte-Carlo the gossip protocol and count per-process misses.

    Each trial runs Theorem 2's protocol once (one source, *rounds*
    relay rounds, *fanout* balls per informed process per round) and
    counts how many of the other ``n - 1`` processes never received a
    ball.
    """
    if trials < 1:
        raise ConfigurationError(f"need at least 1 trial, got {trials}")
    rng = random.Random(f"empirical:{seed}:{n}:{fanout}:{rounds}")
    misses = 0
    for _ in range(trials):
        coverage = simulate_gossip_coverage(n, fanout, rounds, rng)
        misses += n - coverage[-1]
    return HoleEstimate(
        n=n,
        fanout=fanout,
        rounds=rounds,
        trials=trials,
        misses=misses,
        exposures=trials * (n - 1),
    )


def ttl_sweep(
    n: int,
    fanout: int,
    ttls: Sequence[int],
    trials: int = 200,
    seed: int = 0,
) -> List[HoleEstimate]:
    """Estimate the miss probability for each TTL in *ttls*.

    The empirical counterpart of the paper's §6 observation that the
    theoretical TTL can be relaxed "to much lower values": the returned
    curve shows where misses actually start appearing.
    """
    return [
        estimate_hole_probability(n, fanout, ttl, trials=trials, seed=seed + ttl)
        for ttl in ttls
    ]


def smallest_reliable_ttl(
    n: int,
    fanout: int,
    max_ttl: int,
    trials: int = 100,
    seed: int = 0,
) -> int:
    """Smallest TTL with zero observed misses across all trials.

    Returns ``max_ttl + 1`` when even the largest TTL misses. A direct
    empirical answer to "how much slack does Lemma 3 leave?" (§8.1).
    """
    for ttl in range(1, max_ttl + 1):
        estimate = estimate_hole_probability(n, fanout, ttl, trials=trials, seed=seed)
        if estimate.misses == 0:
            return ttl
    return max_ttl + 1
