"""Differential harness: object engine vs. flat engine, bit for bit.

The flat engine (:mod:`repro.sim.flat`) exists to run the paper's
Figure 7b sizes; its correctness argument is not a proof but a
*differential test*: for any scenario — seed, size, EpTO parameters,
latency model, loss/duplication, churn, fault schedule — the object
engine (:class:`~repro.sim.cluster.SimCluster`) and the flat engine
must produce **identical** per-node delivery sequences, identical
delivery (node, event, time) logs and identical network counters.
This module is the reusable core of that harness: it builds both
stacks from one declarative :class:`DifferentialScenario` with an
identical setup call order (so every named RNG stream is consumed in
the same sequence) and reports the first divergence in a form small
enough to paste into a regression test.

``tests/sim/test_flat_equivalence.py`` drives this across a seed
matrix and hypothesis-generated scenarios; hypothesis shrinking then
minimizes any diverging scenario automatically because the scenario
is a flat value object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.config import EpToConfig
from ..faults.schedule import (
    CrashNodes,
    FaultSchedule,
    LatencySpike,
    LossBurst,
    PartitionNetwork,
)
from ..faults.sim_injector import SimFaultInjector
from ..sim.churn import ChurnDriver
from ..sim.cluster import ClusterConfig, SimCluster
from ..sim.drift import NoDrift, UniformDrift
from ..sim.engine import Simulator
from ..sim.flat import FlatCluster, FlatEngine, FlatNetwork
from ..sim.latency import (
    FixedLatency,
    LatencyModel,
    PlanetLabLatency,
    UniformLatency,
)
from ..sim.network import SimNetwork
from ..workloads.broadcast import ProbabilisticWorkload

__all__ = [
    "DifferentialScenario",
    "EngineRun",
    "FAULT_KINDS",
    "assert_engines_equivalent",
    "compare_runs",
    "run_differential",
    "run_flat_engine",
    "run_object_engine",
]

#: Fault-schedule presets a scenario can name. Rounds are multiples of
#: the round interval, small enough to land inside every test horizon.
FAULT_KINDS = ("none", "loss_burst", "crash", "partition", "mixed")


@dataclass(frozen=True)
class DifferentialScenario:
    """One seeded configuration both engines must agree on.

    Attributes mirror the knobs of a simulated deployment; the
    defaults describe a small but non-trivial run (24 nodes, lossy
    uniform-latency network, 1% drift) that finishes in well under a
    second per engine.
    """

    seed: int
    n: int = 24
    fanout: int = 4
    ttl: int = 8
    round_interval: int = 20
    clock: str = "global"
    round_phase: str = "synchronized"
    drift_fraction: float = 0.01
    #: ("fixed", delay) | ("uniform", lo, hi) | ("planetlab",)
    latency: Tuple = ("uniform", 1, 15)
    loss_rate: float = 0.0
    duplicate_rate: float = 0.0
    broadcast_rate: float = 0.08
    broadcast_rounds: int = 8
    churn_rate: float = 0.0
    faults: str = "none"
    recovery: str = "fresh"
    #: Simulated rounds to run; ``None`` = 3*TTL + broadcast window + 8.
    run_rounds: Optional[int] = None

    def horizon(self) -> int:
        """Absolute tick both engines run until."""
        rounds = self.run_rounds
        if rounds is None:
            rounds = 3 * self.ttl + self.broadcast_rounds + 8
        return rounds * self.round_interval

    def describe(self) -> str:
        """Compact one-line reproducer, pasteable into a test."""
        return (
            f"DifferentialScenario(seed={self.seed}, n={self.n}, "
            f"fanout={self.fanout}, ttl={self.ttl}, "
            f"round_interval={self.round_interval}, clock={self.clock!r}, "
            f"round_phase={self.round_phase!r}, "
            f"drift_fraction={self.drift_fraction}, latency={self.latency!r}, "
            f"loss_rate={self.loss_rate}, duplicate_rate={self.duplicate_rate}, "
            f"broadcast_rate={self.broadcast_rate}, "
            f"broadcast_rounds={self.broadcast_rounds}, "
            f"churn_rate={self.churn_rate}, faults={self.faults!r}, "
            f"recovery={self.recovery!r})"
        )


@dataclass(frozen=True)
class EngineRun:
    """Everything one engine produced that the other must reproduce."""

    sequences: Dict[int, Tuple]
    deliveries: Tuple[tuple, ...]
    network: Tuple[int, ...]
    broadcasts: int


def _make_latency(spec: Tuple) -> LatencyModel:
    kind = spec[0]
    if kind == "fixed":
        return FixedLatency(spec[1])
    if kind == "uniform":
        return UniformLatency(spec[1], spec[2])
    if kind == "planetlab":
        return PlanetLabLatency()
    raise ValueError(f"unknown latency spec {spec!r}")


def _make_schedule(scenario: DifferentialScenario) -> Optional[FaultSchedule]:
    kind = scenario.faults
    if kind == "none":
        return None
    if kind == "loss_burst":
        return FaultSchedule([LossBurst(at_round=3, rate=0.5, duration=4)])
    if kind == "crash":
        return FaultSchedule(
            [CrashNodes(at_round=4, fraction=0.2, recover_after=4)]
        )
    if kind == "partition":
        return FaultSchedule(
            [PartitionNetwork(at_round=5, fraction=0.5, heal_after=4)]
        )
    if kind == "mixed":
        return FaultSchedule(
            [
                LossBurst(at_round=3, rate=0.4, duration=3),
                CrashNodes(at_round=5, fraction=0.15, recover_after=4),
                PartitionNetwork(at_round=9, fraction=0.5, heal_after=3),
                LatencySpike(at_round=13, factor=3.0, duration=2),
            ]
        )
    raise ValueError(f"unknown fault kind {kind!r}; choose from {FAULT_KINDS}")


def _cluster_config(scenario: DifferentialScenario) -> ClusterConfig:
    # Built fresh per engine run: drift models may hold per-node RNG
    # state, and sharing one instance across runs would itself diverge.
    drift = (
        NoDrift()
        if scenario.drift_fraction == 0.0
        else UniformDrift(scenario.drift_fraction)
    )
    return ClusterConfig(
        epto=EpToConfig(
            fanout=scenario.fanout,
            ttl=scenario.ttl,
            round_interval=scenario.round_interval,
            clock=scenario.clock,
        ),
        drift=drift,
        round_phase=scenario.round_phase,
    )


def _drive(sim, cluster, scenario: DifferentialScenario) -> None:
    """Identical setup + run sequence for both stacks.

    The call order here *is* the equivalence argument for the driver
    layer: every component forks its RNG stream and schedules its
    first action in the same sequence on either engine.
    """
    cluster.add_nodes(scenario.n)
    schedule = _make_schedule(scenario)
    if schedule is not None:
        SimFaultInjector(
            sim, cluster, schedule, recovery=scenario.recovery
        ).install()
    if scenario.churn_rate > 0.0:
        ChurnDriver(
            sim,
            cluster,
            rate=scenario.churn_rate,
            start=scenario.round_interval * 2,
        )
    ProbabilisticWorkload(
        sim,
        cluster,
        rate=scenario.broadcast_rate,
        start=scenario.round_interval,
        rounds=scenario.broadcast_rounds,
    )
    sim.run(until=scenario.horizon())


def _network_fingerprint(stats) -> Tuple[int, ...]:
    return (
        stats.sent,
        stats.delivered,
        stats.dropped_loss,
        stats.dropped_dead,
        stats.dropped_partition,
        stats.duplicated,
    )


def run_object_engine(scenario: DifferentialScenario) -> EngineRun:
    """Run *scenario* on the reference object engine."""
    sim = Simulator(seed=scenario.seed)
    network = SimNetwork(
        sim,
        latency=_make_latency(scenario.latency),
        loss_rate=scenario.loss_rate,
        duplicate_rate=scenario.duplicate_rate,
    )
    cluster = SimCluster(sim, network, _cluster_config(scenario))
    _drive(sim, cluster, scenario)
    deliveries = tuple(
        (record.node_id, record.event_id, record.time)
        for record in cluster.collector.deliveries()
    )
    return EngineRun(
        sequences=cluster.collector.sequences(),
        deliveries=deliveries,
        network=_network_fingerprint(network.stats),
        broadcasts=len(cluster.collector.broadcasts()),
    )


def run_flat_engine(scenario: DifferentialScenario) -> EngineRun:
    """Run *scenario* on the flat engine."""
    sim = FlatEngine(seed=scenario.seed)
    network = FlatNetwork(
        sim,
        latency=_make_latency(scenario.latency),
        loss_rate=scenario.loss_rate,
        duplicate_rate=scenario.duplicate_rate,
    )
    cluster = FlatCluster(sim, network, _cluster_config(scenario))
    _drive(sim, cluster, scenario)
    return EngineRun(
        sequences=cluster.sequences(),
        deliveries=cluster.deliveries(),
        network=_network_fingerprint(network.stats),
        broadcasts=cluster.broadcast_count(),
    )


def compare_runs(reference: EngineRun, candidate: EngineRun) -> List[str]:
    """Describe every way *candidate* diverges from *reference*.

    Empty list means bit-identical. The first entry always pinpoints
    the smallest mismatch found (node id + first diverging index) so a
    hypothesis-shrunk failure reads as a direct reproducer.
    """
    problems: List[str] = []
    if reference.broadcasts != candidate.broadcasts:
        problems.append(
            f"broadcast counts differ: object={reference.broadcasts} "
            f"flat={candidate.broadcasts}"
        )
    ref_nodes = set(reference.sequences)
    cand_nodes = set(candidate.sequences)
    if ref_nodes != cand_nodes:
        problems.append(
            "delivering node sets differ: "
            f"object-only={sorted(ref_nodes - cand_nodes)} "
            f"flat-only={sorted(cand_nodes - ref_nodes)}"
        )
    for node in sorted(ref_nodes & cand_nodes):
        ref_seq = reference.sequences[node]
        cand_seq = candidate.sequences[node]
        if ref_seq == cand_seq:
            continue
        index = next(
            (
                i
                for i, (a, b) in enumerate(zip(ref_seq, cand_seq))
                if a != b
            ),
            min(len(ref_seq), len(cand_seq)),
        )
        problems.append(
            f"node {node} diverges at delivery #{index}: "
            f"object={ref_seq[index] if index < len(ref_seq) else '<end>'} "
            f"flat={cand_seq[index] if index < len(cand_seq) else '<end>'} "
            f"(lengths {len(ref_seq)} vs {len(cand_seq)})"
        )
    if reference.deliveries != candidate.deliveries:
        index = next(
            (
                i
                for i, (a, b) in enumerate(
                    zip(reference.deliveries, candidate.deliveries)
                )
                if a != b
            ),
            min(len(reference.deliveries), len(candidate.deliveries)),
        )
        problems.append(
            f"global delivery logs diverge at #{index} "
            f"(lengths {len(reference.deliveries)} vs "
            f"{len(candidate.deliveries)})"
        )
    if reference.network != candidate.network:
        problems.append(
            "network counters differ "
            "(sent, delivered, dropped_loss, dropped_dead, "
            f"dropped_partition, duplicated): object={reference.network} "
            f"flat={candidate.network}"
        )
    return problems


def run_differential(scenario: DifferentialScenario) -> List[str]:
    """Run both engines on *scenario*; return divergence descriptions."""
    return compare_runs(run_object_engine(scenario), run_flat_engine(scenario))


def assert_engines_equivalent(scenario: DifferentialScenario) -> None:
    """Raise ``AssertionError`` with a pasteable reproducer on divergence."""
    problems = run_differential(scenario)
    if problems:
        detail = "\n  ".join(problems)
        raise AssertionError(
            f"engines diverge on {scenario.describe()}:\n  {detail}"
        )
