"""Latency-vs-ordering-probability tradeoffs (paper §8.4).

§8.4 proposes exposing the balls-and-bins stability model to the
application so it can act on events that are *probably* stable instead
of waiting for the full TTL: "knowing that a majority of processes
have delivered a message may be sufficient", enabling "a wide range of
tradeoffs between latency and ordering probability".

This module formalizes that tradeoff on top of the same mean-field
model as :class:`repro.core.delivery.StabilityEstimator`:

* :func:`rounds_for_stability` — the inverse query: how many relay
  rounds until P[everyone has the event] reaches a target?
* :func:`rounds_for_coverage` — ditto for expected coverage (the
  "majority is enough" policy);
* :func:`tradeoff_curve` — the full curve an application would pick
  its operating point from: per round, expected delivery latency (in
  round intervals) against stability/coverage probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.delivery import StabilityEstimator
from ..core.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class TradeoffPoint:
    """One operating point of the §8.4 tradeoff curve.

    Attributes:
        rounds: Relay rounds waited (the effective TTL, i.e. latency
            in units of the round interval ``delta``).
        probability_stable: Estimated P[every process has the event].
        expected_coverage: Estimated fraction of processes reached.
    """

    rounds: int
    probability_stable: float
    expected_coverage: float


def tradeoff_curve(n: int, fanout: int, max_rounds: int | None = None) -> List[TradeoffPoint]:
    """The full latency/confidence curve for an ``(n, K)`` deployment."""
    estimator = StabilityEstimator(n, fanout, max_rounds=max_rounds)
    return [
        TradeoffPoint(
            rounds=t,
            probability_stable=estimator.probability_stable(t),
            expected_coverage=estimator.coverage_after(t),
        )
        for t in range(estimator.max_rounds + 1)
    ]


def rounds_for_stability(n: int, fanout: int, target: float) -> int:
    """Smallest round count with P[stable] >= *target*.

    Raises:
        ConfigurationError: If *target* is not in ``(0, 1)`` or is
            unreachable within the model's horizon (pathological
            fanout for the system size).
    """
    if not 0.0 < target < 1.0:
        raise ConfigurationError(f"target must be in (0, 1), got {target}")
    estimator = StabilityEstimator(n, fanout)
    for t in range(estimator.max_rounds + 1):
        if estimator.probability_stable(t) >= target:
            return t
    raise ConfigurationError(
        f"P[stable] never reaches {target} within {estimator.max_rounds} "
        f"rounds for n={n}, K={fanout}"
    )


def rounds_for_coverage(n: int, fanout: int, target: float) -> int:
    """Smallest round count with expected coverage >= *target*.

    The "majority is enough" query: ``rounds_for_coverage(n, K, 0.5)``
    is how long an application waits before acting on an event it only
    needs half the system to have seen.
    """
    if not 0.0 < target <= 1.0:
        raise ConfigurationError(f"target must be in (0, 1], got {target}")
    estimator = StabilityEstimator(n, fanout)
    for t in range(estimator.max_rounds + 1):
        if estimator.coverage_after(t) >= target:
            return t
    raise ConfigurationError(
        f"coverage never reaches {target} within {estimator.max_rounds} "
        f"rounds for n={n}, K={fanout}"
    )


def latency_saving(n: int, fanout: int, ttl: int, target: float) -> float:
    """Fraction of the TTL wait an application saves at confidence *target*.

    E.g. ``latency_saving(1000, K, TTL, 0.99) == 0.6`` means acting at
    99% estimated stability delivers 60% earlier than waiting for the
    deterministic-TTL path.
    """
    if ttl < 1:
        raise ConfigurationError(f"ttl must be >= 1, got {ttl}")
    needed = rounds_for_stability(n, fanout, target)
    return max(0.0, 1.0 - needed / ttl)
