"""Timing and profiling helpers for the perf-regression harness.

Small, dependency-free instrumentation used by ``benchmarks/perf`` (and
handy interactively): repeatable wall-clock timing with GC disabled, a
speedup comparator, and a cProfile wrapper that returns the hot-spot
table as text instead of printing it.

Timing methodology: each measurement runs the callable ``repeats``
times and reports the **best** repeat as the headline number — the
minimum is the least noisy estimator of intrinsic cost on a shared
machine (warmer caches and scheduler preemption only ever make runs
slower, never faster). The mean and all raw samples are kept for
inspection.
"""

from __future__ import annotations

import cProfile
import gc
import io
import pstats
import time
from dataclasses import dataclass
from typing import Any, Callable, Tuple


@dataclass(slots=True, frozen=True)
class Timing:
    """Result of timing one callable.

    Attributes:
        label: Human-readable name of the measured operation.
        times: Wall-clock seconds per repeat, in run order.
        result: Whatever the callable returned on its last run (lets
            benchmarks both time a workload and inspect its output
            without running it twice).
    """

    label: str
    times: Tuple[float, ...]
    result: Any = None

    @property
    def best(self) -> float:
        """Fastest repeat in seconds — the headline number."""
        return min(self.times)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all repeats in seconds."""
        return sum(self.times) / len(self.times)

    def as_dict(self) -> dict:
        """JSON-ready summary (used for BENCH_core.json)."""
        return {
            "label": self.label,
            "best_s": self.best,
            "mean_s": self.mean,
            "repeats": len(self.times),
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.label}: best {self.best * 1e3:.3f} ms over {len(self.times)} runs"


def time_callable(
    fn: Callable[[], Any],
    *,
    label: str = "",
    repeats: int = 3,
) -> Timing:
    """Time ``fn()`` over *repeats* runs with the GC paused.

    The garbage collector is disabled around each run (and re-enabled
    after) so an unlucky collection inside one repeat does not skew the
    comparison between two implementations allocating different
    amounts.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    times = []
    result = None
    gc_was_enabled = gc.isenabled()
    gc.collect()
    try:
        for _ in range(repeats):
            if gc_was_enabled:
                gc.disable()
            start = time.perf_counter()
            result = fn()
            elapsed = time.perf_counter() - start
            if gc_was_enabled:
                gc.enable()
            times.append(elapsed)
    finally:
        if gc_was_enabled:
            gc.enable()
    return Timing(label=label or getattr(fn, "__name__", "callable"), times=tuple(times), result=result)


def speedup(baseline: Timing, candidate: Timing) -> float:
    """How many times faster *candidate* is than *baseline* (best/best).

    Values above 1.0 mean the candidate wins; below 1.0 it regressed.
    """
    if candidate.best <= 0.0:
        return float("inf")
    return baseline.best / candidate.best


def profile_callable(
    fn: Callable[[], Any],
    *,
    top: int = 15,
    sort: str = "cumulative",
) -> str:
    """Run ``fn()`` under cProfile; return the top-*top* rows as text.

    Useful for answering "where did the round loop spend its time" when
    a perf regression shows up in the harness:

    >>> from repro.analysis import profile_callable
    >>> print(profile_callable(lambda: run_round_loop(...)))  # doctest: +SKIP
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        fn()
    finally:
        profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats(sort).print_stats(top)
    return buffer.getvalue()
