"""Balls-in-bins occupancy mathematics (paper §4.1, Theorem 2).

Support machinery for the Theorem 2 intuition: "during the first
``log2 n`` rounds, the number of balls disseminated doubles at each
round until at least ``n`` balls are transmitted per round". This
module provides the exact occupancy formulas, the epidemic growth
recurrence used by the §8.4 stability estimator, and a direct
Monte-Carlo throw simulator used by tests to validate both.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Sequence

from ..core.errors import ConfigurationError


def expected_empty_bins(n: int, balls: float) -> float:
    """Expected number of empty bins after throwing *balls* at *n* bins."""
    if n < 1:
        raise ConfigurationError(f"need n >= 1, got {n}")
    if balls < 0:
        raise ConfigurationError(f"need balls >= 0, got {balls}")
    return n * (1.0 - 1.0 / n) ** balls if n > 1 else (0.0 if balls else 1.0)


def p_bin_empty(n: int, balls: float) -> float:
    """Probability a fixed bin is empty after *balls* throws."""
    if n < 2:
        raise ConfigurationError(f"need n >= 2, got {n}")
    return (1.0 - 1.0 / n) ** balls


def p_all_bins_hit(n: int, balls: float) -> float:
    """Union-bound lower estimate of P[every bin received a ball]."""
    return max(0.0, 1.0 - n * p_bin_empty(n, balls))


def coupon_collector_threshold(n: int) -> float:
    """Expected throws to hit every bin at least once: ``n * H_n``."""
    if n < 1:
        raise ConfigurationError(f"need n >= 1, got {n}")
    harmonic = sum(1.0 / k for k in range(1, n + 1))
    return n * harmonic


@dataclass(frozen=True, slots=True)
class EpidemicTrace:
    """Round-by-round expected growth of one event's dissemination.

    Attributes:
        infected: Expected number of informed processes after each
            round (``infected[0] == 1``, the broadcaster).
        balls: Cumulative expected balls thrown up to each round.
    """

    infected: tuple[float, ...]
    balls: tuple[float, ...]

    def coverage(self, n: int) -> List[float]:
        """Per-round expected fraction of informed processes."""
        return [i / n for i in self.infected]

    def rounds_to_cover(self, n: int, fraction: float = 0.999) -> int:
        """First round whose expected coverage reaches *fraction*.

        Returns ``len(infected)`` when never reached in the trace.
        """
        for idx, infected in enumerate(self.infected):
            if infected / n >= fraction:
                return idx
        return len(self.infected)


def epidemic_growth(n: int, fanout: int, rounds: int) -> EpidemicTrace:
    """Expected-value epidemic recurrence for one event.

    Every informed process throws ``fanout`` balls at uniformly random
    bins each round; a bin missing every ball stays uninformed::

        i_{t+1} = n - (n - i_t) * (1 - 1/n) ** (fanout * i_t)

    This is the mean-field version of Theorem 2's doubling argument: in
    the early rounds ``i_{t+1} ~= (1 + fanout) * i_t``, and growth
    saturates once ``i_t`` approaches ``n``.
    """
    if n < 2:
        raise ConfigurationError(f"need n >= 2, got {n}")
    if fanout < 1:
        raise ConfigurationError(f"need fanout >= 1, got {fanout}")
    if rounds < 0:
        raise ConfigurationError(f"need rounds >= 0, got {rounds}")
    keep = 1.0 - 1.0 / n
    infected = [1.0]
    balls = [0.0]
    for _ in range(rounds):
        current = infected[-1]
        thrown = fanout * current
        balls.append(balls[-1] + thrown)
        infected.append(n - (n - current) * keep**thrown)
    return EpidemicTrace(infected=tuple(infected), balls=tuple(balls))


def simulate_throws(n: int, balls: int, rng: random.Random) -> int:
    """Monte-Carlo: throw *balls* at *n* bins, return empty-bin count."""
    if n < 1:
        raise ConfigurationError(f"need n >= 1, got {n}")
    hit = bytearray(n)
    for _ in range(balls):
        hit[rng.randrange(n)] = 1
    return n - sum(hit)


def simulate_gossip_coverage(
    n: int, fanout: int, rounds: int, rng: random.Random
) -> List[int]:
    """Monte-Carlo run of the Theorem 2 gossip protocol itself.

    Process 0 starts the rumor; each round, every process that received
    a ball in the *previous* round sends ``fanout`` balls to uniformly
    random processes. Returns the number of informed processes after
    each round (index 0 = just the source).
    """
    if n < 2:
        raise ConfigurationError(f"need n >= 2, got {n}")
    informed = bytearray(n)
    informed[0] = 1
    active = {0}
    coverage = [1]
    for _ in range(rounds):
        # "The processes which received one or more balls in the
        # previous round" — a set, not one entry per ball.
        next_active: set[int] = set()
        for _sender in active:
            for _ in range(fanout):
                target = rng.randrange(n)
                informed[target] = 1
                next_active.add(target)
        active = next_active
        coverage.append(sum(informed))
    return coverage
