"""Analytic hole-probability bounds (paper §4, Figure 3).

Theorem 2's gossip protocol throws at least ``c * n * log2(n)`` balls
at ``n`` bins during its last ``c * log2(n)`` rounds. Figure 3 plots,
under the assumption that an event is disseminated at random exactly
``c * n * log2(n)`` times:

* **Figure 3a** — the probability that a *fixed* process ``p`` misses
  event ``e``: every one of the ``B = c * n * log2 n`` balls lands
  elsewhere, i.e. ``(1 - 1/n) ** B``;
* **Figure 3b** — the probability that *some* process misses ``e``:
  the union bound ``n * (1 - 1/n) ** B`` (capped at 1).

These are computed in log-space so the ``1e-18``-scale values of the
figure don't underflow prematurely, and both the probability and its
``log10`` are exposed (the figure's y-axis is logarithmic).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from ..core.errors import ConfigurationError


def balls_thrown(n: int, c: float) -> float:
    """Number of balls Theorem 2 guarantees: ``c * n * log2(n)``."""
    if n < 2:
        raise ConfigurationError(f"system size must be >= 2, got {n}")
    if c <= 0:
        raise ConfigurationError(f"c must be > 0, got {c}")
    return c * n * math.log2(n)


def log10_p_hole_fixed_process(n: int, c: float) -> float:
    """``log10`` of the Figure 3a bound (exact, no underflow)."""
    balls = balls_thrown(n, c)
    # log10((1 - 1/n)^balls) = balls * log10(1 - 1/n)
    return balls * math.log10(1.0 - 1.0 / n)


def p_hole_fixed_process(n: int, c: float) -> float:
    """Figure 3a: P[a fixed process has a hole for event e].

    ``(1 - 1/n) ** (c * n * log2 n)`` — may underflow to 0.0 for large
    ``n``/``c``; use :func:`log10_p_hole_fixed_process` for plotting.
    """
    return 10.0 ** log10_p_hole_fixed_process(n, c)


def log10_p_hole_any_process(n: int, c: float) -> float:
    """``log10`` of the Figure 3b union bound, capped at ``log10(1)=0``."""
    value = math.log10(n) + log10_p_hole_fixed_process(n, c)
    return min(0.0, value)


def p_hole_any_process(n: int, c: float) -> float:
    """Figure 3b: P[event e has a hole for at least one process]."""
    return 10.0 ** log10_p_hole_any_process(n, c)


def hole_bound_series(
    c: float, sizes: Sequence[int]
) -> List[Tuple[int, float, float]]:
    """One Figure 3 curve: ``(n, log10 P_fixed, log10 P_any)`` rows."""
    return [
        (n, log10_p_hole_fixed_process(n, c), log10_p_hole_any_process(n, c))
        for n in sizes
    ]


def smallest_c_for_target(n: int, target_p_hole: float) -> float:
    """Invert Figure 3b: the smallest ``c`` driving the bound under target.

    Answers the deployment question the paper poses in §1.1 ("the
    probability of having holes ... can be made orders of magnitude
    smaller than the probability of a catastrophic hardware failure"):
    given ``n`` and an acceptable per-event hole probability, how large
    must ``c`` (and hence the TTL) be?
    """
    if not 0.0 < target_p_hole < 1.0:
        raise ConfigurationError(
            f"target probability must be in (0, 1), got {target_p_hole}"
        )
    # log10 P_any = log10 n + c * n * log2 n * log10(1 - 1/n) <= log10(target);
    # the bracketed factor is the (negative) slope per unit of c.
    per_c = n * math.log2(n) * math.log10(1.0 - 1.0 / n)
    needed = (math.log10(target_p_hole) - math.log10(n)) / per_c
    return max(needed, 0.0)
