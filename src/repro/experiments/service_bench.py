"""Wire-cost benchmark of the multi-topic broadcast service.

The point of :mod:`repro.service` (docs/SERVICE.md) is that T topics on
one host should not cost T sockets, T round timers and T datagrams per
peer per round. This experiment measures that claim on the real
loopback wire path, at equal payload volume:

* **multiplexed** — one :class:`~repro.service.ServiceCluster`: every
  host runs all T topics over one UDP socket and one round timer; each
  round the balls of all topics to the same peer coalesce into one
  ``TopicEnvelope`` datagram via the cross-topic batcher.
* **separate** — T independent single-topic clusters, each with its own
  :class:`~repro.runtime.udp.UdpNetwork` (T sockets and T timers per
  host), run concurrently: the deployment you would operate without the
  service layer.

Both sides publish the same events on the same topology and are driven
to full delivery with per-topic total-order verification
(:func:`~repro.faults.verify.check_survivors`). The headline ``speedup``
is the ratio of datagrams on the wire for the identical workload; it is
committed in ``BENCH_core.json`` and gated ≥ 1.0 by
``benchmarks/perf/check_regression.py`` (CI passes
``--require scenarios.service_bench``).

CLI::

    epto-experiment service-bench

Delivery and ordering gate the exit code; timing never does.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import List, Optional

from ..core.config import EpToConfig
from ..runtime.udp import UdpNetwork
from ..service import ServiceCluster
from .scale import ScalePreset, get_scale


def _service_config(n: int) -> EpToConfig:
    """Miniature-but-honest EpTO parameters for a loopback service."""
    return EpToConfig.for_system_size(n, round_interval=20)


@dataclass(slots=True)
class ServiceSideRun:
    """One side of the comparison, driven to delivery completion."""

    label: str
    clusters: int
    sockets: int
    events: int
    delivered: bool
    ordered: bool
    seconds: float
    rounds: float
    datagrams: int
    bytes_sent: int
    syscalls_send: int
    frames: int
    envelopes: int

    @property
    def datagrams_per_node_round(self) -> float:
        """Datagrams per host per round interval — the multiplexing
        headline: T topics cost ~1 envelope per peer batched, ~T
        datagrams separate."""
        node_rounds = self.rounds * self._hosts if self.rounds else 0.0
        return self.datagrams / node_rounds if node_rounds else 0.0

    @property
    def frames_per_datagram(self) -> float:
        """Topic frames packed per datagram (1.0 = no cross-topic
        sharing)."""
        return self.frames / self.datagrams if self.datagrams else 0.0

    # Set by the driver (same physical host count on both sides).
    _hosts: int = 0

    def as_dict(self) -> dict:
        return {
            "clusters": self.clusters,
            "sockets": self.sockets,
            "events": self.events,
            "delivered": self.delivered,
            "ordered": self.ordered,
            "seconds": round(self.seconds, 4),
            "rounds": round(self.rounds, 1),
            "datagrams": self.datagrams,
            "bytes_sent": self.bytes_sent,
            "syscalls_send": self.syscalls_send,
            "frames": self.frames,
            "envelopes": self.envelopes,
            "datagrams_per_node_round": round(self.datagrams_per_node_round, 2),
            "frames_per_datagram": round(self.frames_per_datagram, 2),
        }


@dataclass(slots=True)
class ServiceBenchResult:
    """Everything ``epto-experiment service-bench`` reports."""

    n: int
    topics: int
    events_per_topic: int
    multiplexed: ServiceSideRun
    separate: ServiceSideRun

    @property
    def speedup(self) -> float:
        """Datagrams on the wire, separate over multiplexed, for the
        identical payload volume."""
        if not self.multiplexed.datagrams:
            return 0.0
        return self.separate.datagrams / self.multiplexed.datagrams

    @property
    def syscall_ratio(self) -> float:
        """Send syscalls, separate over multiplexed."""
        if not self.multiplexed.syscalls_send:
            return 0.0
        return self.separate.syscalls_send / self.multiplexed.syscalls_send

    @property
    def exit_ok(self) -> bool:
        """Delivery and ordering must hold on both sides."""
        return (
            self.multiplexed.delivered
            and self.multiplexed.ordered
            and self.separate.delivered
            and self.separate.ordered
        )

    def as_dict(self) -> dict:
        return {
            "n": self.n,
            "topics": self.topics,
            "events_per_topic": self.events_per_topic,
            "multiplexed": self.multiplexed.as_dict(),
            "separate": self.separate.as_dict(),
            "speedup": round(self.speedup, 2),
            "syscall_ratio": round(self.syscall_ratio, 2),
        }

    def render(self) -> str:
        lines = [
            f"{self.n} hosts x {self.topics} topics x "
            f"{self.events_per_topic} events/topic"
        ]
        for side in (self.multiplexed, self.separate):
            lines.append(
                f"{side.label}: {side.clusters} cluster(s), "
                f"{side.sockets} sockets, "
                f"delivered={'yes' if side.delivered else 'NO'} "
                f"ordered={'yes' if side.ordered else 'NO'} "
                f"in {side.seconds:.2f}s"
            )
            lines.append(
                f"  wire: {side.datagrams} datagrams "
                f"({side.datagrams_per_node_round:.2f}/node-round), "
                f"{side.bytes_sent} B, {side.syscalls_send} send syscalls, "
                f"{side.frames_per_datagram:.2f} frames/datagram"
            )
        lines.append(
            f"datagram speedup: {self.speedup:.2f}x   "
            f"syscall ratio: {self.syscall_ratio:.2f}x"
        )
        lines.append(f"verdict: {'OK' if self.exit_ok else 'FAILED'}")
        return "\n".join(lines)


async def _drive_cluster(
    cluster: ServiceCluster,
    topics: List[int],
    events_per_topic: int,
    n: int,
    timeout: float,
) -> bool:
    """Publish the workload and wait for full delivery on every topic."""
    interval_s = cluster.config.round_interval / 1000.0
    for i in range(events_per_topic):
        for topic in topics:
            await cluster.publish(
                topic, (i + topic) % n, f"svc-bench-t{topic}-{i}"
            )
        # Spread the workload over rounds like a real broadcast source.
        await asyncio.sleep(interval_s / 2)
    results = [
        await cluster.wait_for_topic(topic, events_per_topic, timeout=timeout)
        for topic in topics
    ]
    return all(results)


async def _multiplexed_side(
    n: int, topics: int, events_per_topic: int, seed: int, timeout: float
) -> ServiceSideRun:
    network = UdpNetwork(seed=seed)
    cluster = ServiceCluster(
        _service_config(n), network=network, expected_size=n, seed=seed
    )
    topic_ids = list(range(1, topics + 1))
    for topic in topic_ids:
        cluster.open_topic(topic)
    cluster.add_hosts(n)
    await cluster.open_all()
    cluster.start_all()
    start = time.perf_counter()
    delivered = await _drive_cluster(
        cluster, topic_ids, events_per_topic, n, timeout
    )
    seconds = time.perf_counter() - start
    ordered = all(cluster.check_topic(topic).ok for topic in topic_ids)
    frames = sum(s.demux.stats.frames_sent for s in cluster.hosts.values())
    envelopes = sum(
        s.demux.stats.envelopes_sent for s in cluster.hosts.values()
    )
    stats = network.stats
    run = ServiceSideRun(
        label="multiplexed",
        clusters=1,
        sockets=n,
        events=topics * events_per_topic,
        delivered=delivered,
        ordered=ordered,
        seconds=seconds,
        rounds=seconds / (cluster.config.round_interval / 1000.0),
        datagrams=stats.sent,
        bytes_sent=stats.bytes_sent,
        syscalls_send=stats.syscalls_send,
        frames=frames,
        envelopes=envelopes,
    )
    run._hosts = n
    await cluster.close_all()
    return run


async def _separate_side(
    n: int, topics: int, events_per_topic: int, seed: int, timeout: float
) -> ServiceSideRun:
    networks: List[UdpNetwork] = []
    clusters: List[ServiceCluster] = []
    topic_ids = list(range(1, topics + 1))
    for topic in topic_ids:
        network = UdpNetwork(seed=seed + 1000 + topic)
        cluster = ServiceCluster(
            _service_config(n),
            network=network,
            expected_size=n,
            seed=seed + topic,
        )
        cluster.open_topic(topic)
        cluster.add_hosts(n)
        await cluster.open_all()
        networks.append(network)
        clusters.append(cluster)
    for cluster in clusters:
        cluster.start_all()
    start = time.perf_counter()
    # All T clusters run concurrently — the deployment being replaced.
    results = await asyncio.gather(
        *(
            _drive_cluster(cluster, [topic], events_per_topic, n, timeout)
            for topic, cluster in zip(topic_ids, clusters)
        )
    )
    seconds = time.perf_counter() - start
    ordered = all(
        cluster.check_topic(topic).ok
        for topic, cluster in zip(topic_ids, clusters)
    )
    frames = envelopes = datagrams = bytes_sent = syscalls = 0
    for network, cluster in zip(networks, clusters):
        frames += sum(
            s.demux.stats.frames_sent for s in cluster.hosts.values()
        )
        envelopes += sum(
            s.demux.stats.envelopes_sent for s in cluster.hosts.values()
        )
        datagrams += network.stats.sent
        bytes_sent += network.stats.bytes_sent
        syscalls += network.stats.syscalls_send
    config = clusters[0].config
    run = ServiceSideRun(
        label="separate",
        clusters=topics,
        sockets=topics * n,
        events=topics * events_per_topic,
        delivered=all(results),
        ordered=ordered,
        seconds=seconds,
        rounds=seconds / (config.round_interval / 1000.0),
        datagrams=datagrams,
        bytes_sent=bytes_sent,
        syscalls_send=syscalls,
        frames=frames,
        envelopes=envelopes,
    )
    run._hosts = n
    for cluster in clusters:
        await cluster.close_all()
    return run


def run_service_bench(
    scale: ScalePreset | str | None = None,
    seed: int = 29,
    n: Optional[int] = None,
    topics: Optional[int] = None,
    events: Optional[int] = None,
    timeout: float = 30.0,
) -> ServiceBenchResult:
    """Run the ``service_bench`` comparison end to end.

    Args:
        scale: Size preset; governs host count, topic count, and
            workload volume.
        seed: Base seed for fabrics and per-topic peer sampling.
        n / topics / events: Override the preset's host count, topic
            count and events per topic.
        timeout: Delivery wait per topic, seconds.
    """
    preset = get_scale(scale) if not isinstance(scale, ScalePreset) else scale
    n = int(n if n is not None else preset.service_bench_n)
    topics = int(topics if topics is not None else preset.service_bench_topics)
    events = int(events if events is not None else preset.service_bench_events)

    async def go() -> ServiceBenchResult:
        multiplexed = await _multiplexed_side(n, topics, events, seed, timeout)
        separate = await _separate_side(n, topics, events, seed, timeout)
        return ServiceBenchResult(
            n=n,
            topics=topics,
            events_per_topic=events,
            multiplexed=multiplexed,
            separate=separate,
        )

    return asyncio.run(go())
