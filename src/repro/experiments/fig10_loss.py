"""Figure 10 reproduction: delivery delay under message loss.

Every message (balls and, with Cyclon, shuffle traffic) is dropped
independently with probability ``loss_rate``. Expected shape: "the
impact on the delivery delay is limited even at a high loss rate of
10%", with zero holes — EpTO's redundancy absorbs the loss without
acknowledgments or retransmissions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..metrics.report import format_cdf_series, format_table
from .common import ExperimentResult, ExperimentSpec, run_experiment
from .scale import ScalePreset, get_scale


@dataclass(frozen=True, slots=True)
class Fig10Result:
    """Loss sweep results keyed by loss rate."""

    results: Dict[float, ExperimentResult]

    def table(self) -> str:
        rows = []
        for rate, result in sorted(self.results.items()):
            summary = result.summary
            rows.append(
                (
                    f"{rate:g}",
                    result.messages_sent,
                    result.messages_dropped,
                    "-" if summary is None else round(summary.p50, 0),
                    "-" if summary is None else round(summary.p95, 0),
                    result.holes,
                )
            )
        return format_table(
            ["loss", "msgs sent", "msgs dropped", "p50 delay", "p95 delay", "holes"],
            rows,
        )

    def cdf_series(self) -> Dict[str, List[Tuple[float, float]]]:
        return {
            f"{rate:g} msg loss": result.cdf
            for rate, result in sorted(self.results.items())
        }

    def render(self) -> str:
        return self.table() + "\n\n" + format_cdf_series(self.cdf_series())


def run_fig10(
    scale: ScalePreset | str | None = None,
    rates: Sequence[float] | None = None,
    seed: int = 10,
) -> Fig10Result:
    """Figure 10: message-loss sweep with a global clock, 5% broadcasts."""
    preset = scale if isinstance(scale, ScalePreset) else get_scale(scale)
    if rates is None:
        rates = preset.sweep_rates
    results: Dict[float, ExperimentResult] = {}
    for rate in rates:
        spec = ExperimentSpec(
            name=f"fig10-loss-{rate:g}",
            n=preset.sweep_n,
            seed=seed,
            clock="global",
            broadcast_rate=0.05,
            broadcast_rounds=preset.sweep_broadcast_rounds,
            loss_rate=rate,
        )
        results[rate] = run_experiment(spec)
    return Fig10Result(results=results)
