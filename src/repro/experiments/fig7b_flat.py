"""Figure 7b at paper scale, rerun on the flat simulation engine.

The object-engine ``fig7b`` driver (:mod:`.fig7_scalability`) tops out
around a few hundred processes in tolerable wall time, so the ``paper``
preset's 5,000- and 10,000-process points were previously out of reach.
This driver reruns the same system-size sweep on
:class:`repro.sim.flat.FlatCluster` — the batch-stepped flat-array
engine proven bit-identical to the object engine by
``tests/sim/test_flat_equivalence.py`` — using the O(1)-per-delivery
``"stats"`` recording mode so memory stays flat at n = 10k.

Two deliberate deviations from the object driver, both required to make
paper scale tractable and both reported in the output:

* the probabilistic per-node workload is replaced by a deterministic
  per-round event budget (``min(round(0.05 * n), max_events_per_round)``
  events per broadcast round) — at n = 10,000 the paper's 5% rate would
  inject 500 events per round and the ball payloads, not the engine,
  would dominate the run;
* agreement is checked with per-node (count, rolling-hash) pairs rather
  than full sequence comparison (the ``"stats"`` mode contract:
  identical pairs iff identical delivered sequences).

The paper's qualitative claim survives the transform: two orders of
magnitude more processes should less than double the median delivery
delay (:meth:`Fig7bFlatResult.median_growth_factor`).
"""

from __future__ import annotations

import time as _wallclock
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core.config import EpToConfig
from ..core.params import min_fanout, min_ttl
from ..metrics.cdf import DelaySummary, cdf_points
from ..metrics.report import format_cdf_series, format_table
from ..sim.cluster import ClusterConfig
from ..sim.drift import NoDrift, UniformDrift
from ..sim.flat import FlatCluster, FlatEngine, FlatNetwork
from ..sim.latency import make_latency_model
from .scale import ScalePreset, get_scale

#: Paper's round interval (delta = 125 ticks), as in ExperimentSpec.
ROUND_INTERVAL = 125

#: Default ceiling on events injected per broadcast round. The paper's
#: 5% rate is kept exactly up to the n where it crosses this budget.
DEFAULT_EVENT_BUDGET = 4


@dataclass(frozen=True, slots=True)
class Fig7bFlatRow:
    """Headline numbers for one (n, clock) point of the sweep."""

    n: int
    clock: str
    fanout: int
    ttl: int
    events: int
    deliveries: int
    expected_deliveries: int
    agreement_groups: int  # distinct (count, hash) pairs; 1 == agreement
    summary: DelaySummary
    cdf: List[Tuple[float, float]]
    rounds: int
    wall_seconds: float

    @property
    def agreement_ok(self) -> bool:
        """Every node delivered the same totally-ordered sequence."""
        return self.agreement_groups == 1

    @property
    def complete(self) -> bool:
        """Every broadcast event reached every node."""
        return self.deliveries == self.expected_deliveries

    @property
    def rounds_per_sec(self) -> float:
        return self.rounds / self.wall_seconds if self.wall_seconds else 0.0


@dataclass(slots=True)
class Fig7bFlatResult:
    """System-size sweep on the flat engine (Figure 7b, paper scale)."""

    rows: Dict[Tuple[int, str], Fig7bFlatRow]

    @property
    def exit_ok(self) -> bool:
        """CI gate: total order must hold at every size."""
        return all(r.agreement_ok and r.complete for r in self.rows.values())

    def table(self) -> str:
        out = []
        for (n, clock), r in sorted(self.rows.items()):
            out.append(
                [
                    n,
                    clock,
                    r.fanout,
                    r.ttl,
                    r.events,
                    round(r.summary.p50, 1),
                    round(r.summary.p95, 1),
                    "OK" if r.agreement_ok and r.complete else "VIOLATED",
                    round(r.rounds_per_sec, 2),
                ]
            )
        return format_table(
            [
                "n",
                "clock",
                "K",
                "TTL",
                "events",
                "p50 delay",
                "p95 delay",
                "order",
                "rounds/s",
            ],
            out,
        )

    def cdf_series(self) -> Dict[str, List[Tuple[float, float]]]:
        return {
            f"{n}proc {clock}": row.cdf
            for (n, clock), row in sorted(self.rows.items())
        }

    def median_growth_factor(self, clock: str = "global") -> float:
        """Median delay at the largest size over the smallest size.

        The paper's shape check: two orders of magnitude more processes
        should *less than double* the delivery delay.
        """
        sized = sorted(
            (n, row) for (n, c), row in self.rows.items() if c == clock
        )
        if not sized:
            return float("nan")
        return sized[-1][1].summary.p50 / sized[0][1].summary.p50

    def render(self) -> str:
        return self.table() + "\n\n" + format_cdf_series(self.cdf_series())


def _events_per_round(n: int, budget: int) -> int:
    """The paper's 5% per-round injection, capped at *budget* events."""
    return max(1, min(round(0.05 * n), budget))


def run_fig7b_flat_point(
    n: int,
    clock: str,
    seed: int,
    broadcast_rounds: int,
    max_events_per_round: int = DEFAULT_EVENT_BUDGET,
    drift_fraction: float = 0.01,
    latency: str = "planetlab",
) -> Fig7bFlatRow:
    """Run one (n, clock) configuration on the flat engine."""
    started = _wallclock.perf_counter()
    fanout = min_fanout(n)
    ttl = min_ttl(n, clock=clock, latency_bounded_by_round=True)
    config = ClusterConfig(
        epto=EpToConfig(
            fanout=fanout, ttl=ttl, round_interval=ROUND_INTERVAL, clock=clock
        ),
        drift=UniformDrift(drift_fraction) if drift_fraction > 0 else NoDrift(),
        expected_size=n,
    )
    sim = FlatEngine(seed=seed)
    net = FlatNetwork(sim, latency=make_latency_model(latency))
    cluster = FlatCluster(sim, net, config, record="stats")
    cluster.add_nodes(n)

    # Deterministic workload: a budgeted number of events per broadcast
    # round, sources drawn from the engine's own forked stream so the
    # run is reproducible from (seed, n, clock) alone.
    workload_rng = sim.fork_rng("workload")
    per_round = _events_per_round(n, max_events_per_round)
    for r in range(1, broadcast_rounds + 1):
        for _ in range(per_round):
            node = workload_rng.randrange(n)
            sim.schedule_at(
                r * ROUND_INTERVAL + 1,
                lambda nd=node: cluster.broadcast_from(nd),
            )
    # Same drain as the object harness: TTL + 16 silent rounds absorbs
    # aging, the PlanetLab latency tail, and drift.
    drain_rounds = ttl + 16
    total_rounds = broadcast_rounds + drain_rounds + 1
    sim.run(until=total_rounds * ROUND_INTERVAL)

    counts = cluster.delivery_counts()
    hashes = cluster.sequence_hashes()
    groups = {(counts[node], hashes.get(node, 0)) for node in counts}
    delays = cluster.delivery_delays()
    events = cluster.broadcast_count()
    return Fig7bFlatRow(
        n=n,
        clock=clock,
        fanout=fanout,
        ttl=ttl,
        events=events,
        deliveries=cluster.delivered_total,
        expected_deliveries=events * n,
        agreement_groups=len(groups) if groups else 0,
        summary=DelaySummary.from_samples(delays),
        cdf=cdf_points(delays),
        rounds=total_rounds,
        wall_seconds=_wallclock.perf_counter() - started,
    )


def run_fig7b_flat(
    scale: ScalePreset | str | None = None,
    clocks: Sequence[str] = ("global", "logical"),
    seed: int = 73,
    max_events_per_round: int = DEFAULT_EVENT_BUDGET,
) -> Fig7bFlatResult:
    """Sweep the system size on the flat engine (paper-scale fig7b)."""
    preset = scale if isinstance(scale, ScalePreset) else get_scale(scale)
    rows: Dict[Tuple[int, str], Fig7bFlatRow] = {}
    for clock in clocks:
        for n in preset.fig7b_sizes:
            rows[(n, clock)] = run_fig7b_flat_point(
                n,
                clock,
                seed=seed,
                broadcast_rounds=preset.fig7b_broadcast_rounds,
                max_events_per_round=max_events_per_round,
            )
    return Fig7bFlatResult(rows=rows)
