"""Multi-topic fault drill: per-topic faults on one shared transport.

The single-topic drill (:mod:`repro.experiments.drill`) asks whether
Table 1 holds for one EpTO instance under a fault schedule. This drill
asks the multi-topic question the broadcast service exists to answer
(docs/SERVICE.md): when faults hit *one topic* — partition topic A's
heavy publisher, burst-drop topic A's frames — do the other topics on
the very same sockets keep their guarantees untouched, and do
host-level faults (a crash takes every topic down at once) recover
per-topic from per-topic journals?

Scenario shape (``scenarios/multi_topic_drill.json``)::

    {"topics": {"<topic-id>": {"publisher": 0, "actions": [...]}}}

Each topic's ``actions`` list is parsed by
:meth:`repro.faults.schedule.FaultSchedule.from_dict` — the same
declarative vocabulary as every other scenario file, with times in
rounds. Interpretation against a :class:`~repro.service.ServiceCluster`:

* ``partition`` / ``heal`` / ``loss_burst`` are **topic-level**: they
  hit that topic's frames only, via the per-topic channel fault
  surface (:meth:`ServiceCluster.set_topic_partition` and friends).
* ``crash`` is **host-level**: a crash takes the host's shared socket
  down, so every topic on it stops at once; with ``recover_after`` the
  host respawns and each topic recovers from its own journal and
  catches up over anti-entropy.
* The optional ``publisher`` pins that topic's traffic to one host
  (the "heavy publisher" the canned scenario partitions away);
  topics without it publish round-robin.

Events published on a topic while that topic is partitioned (or inside
a ≥0.99-rate loss burst) are recorded as *at risk*: a fully cut
publisher's events can die with their TTL, which is the partition's
cost, not a protocol bug. The verdict therefore requires every live
host to deliver every not-at-risk event, and runs
:func:`~repro.faults.verify.check_survivors` per topic over the hosts
that were never partition-isolated on it (respawned hosts are checked
on their post-restart suffix, as everywhere else).

CLI::

    epto-experiment service-drill

Exit code gates on the per-topic verdicts, never on timing.
"""

from __future__ import annotations

import asyncio
import json
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from ..core.config import EpToConfig
from ..core.errors import FaultInjectionError
from ..faults.schedule import (
    CrashNodes,
    FaultSchedule,
    HealPartition,
    LossBurst,
    PartitionNetwork,
)
from ..faults.verify import SurvivorReport, check_survivors
from ..runtime.udp import UdpNetwork
from ..service import ServiceCluster
from ..sync.config import SyncConfig

#: Repo-root default scenario.
DEFAULT_SCENARIO = (
    Path(__file__).resolve().parents[3] / "scenarios" / "multi_topic_drill.json"
)

#: Rounds the workload keeps publishing after the last scheduled action
#: (post-fault traffic must flow and converge).
TAIL_ROUNDS = 12


@dataclass(slots=True)
class TopicSchedule:
    """One topic's parsed slice of the scenario."""

    topic: int
    schedule: FaultSchedule
    publisher: Optional[int] = None


def load_scenario(source: Union[str, Path, Dict[str, Any]]) -> List[TopicSchedule]:
    """Parse a multi-topic scenario (path, JSON text, or mapping)."""
    if isinstance(source, dict):
        data = source
    else:
        path = Path(source)
        text = (
            path.read_text(encoding="utf-8") if path.exists() else str(source)
        )
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise FaultInjectionError(
                f"scenario is not valid JSON: {exc}"
            ) from exc
    topics = data.get("topics")
    if not isinstance(topics, dict) or not topics:
        raise FaultInjectionError(
            "multi-topic scenario must have a non-empty 'topics' mapping "
            '({"topics": {"<id>": {"actions": [...]}}})'
        )
    parsed: List[TopicSchedule] = []
    for raw_topic, spec in topics.items():
        try:
            topic = int(raw_topic)
        except (TypeError, ValueError):
            raise FaultInjectionError(
                f"topic id {raw_topic!r} is not an integer"
            ) from None
        schedule = FaultSchedule.from_dict(spec)
        for action in schedule:
            if not isinstance(
                action, (CrashNodes, PartitionNetwork, HealPartition, LossBurst)
            ):
                raise FaultInjectionError(
                    f"topic {topic}: action kind {action.kind!r} is not "
                    "supported by the service drill "
                    "(crash/partition/heal/loss_burst only)"
                )
            if isinstance(action, CrashNodes) and action.nodes is None:
                raise FaultInjectionError(
                    f"topic {topic}: service-drill crashes need explicit "
                    "nodes= (host-level faults name their victims)"
                )
        publisher = spec.get("publisher")
        parsed.append(
            TopicSchedule(
                topic=topic,
                schedule=schedule,
                publisher=int(publisher) if publisher is not None else None,
            )
        )
    return parsed


@dataclass(slots=True)
class TopicVerdict:
    """Per-topic outcome of the drill."""

    topic: int
    published: int
    at_risk: int
    delivered_converged: bool
    isolated_hosts: Tuple[int, ...]
    recovered_hosts: Tuple[int, ...]
    report: SurvivorReport

    @property
    def ok(self) -> bool:
        return self.delivered_converged and self.report.ok


@dataclass(slots=True)
class ServiceDrillResult:
    """Everything ``epto-experiment service-drill`` reports."""

    n: int
    rounds: int
    scenario: str
    fault_log: List[Tuple[float, str]] = field(default_factory=list)
    verdicts: List[TopicVerdict] = field(default_factory=list)

    @property
    def exit_ok(self) -> bool:
        return bool(self.verdicts) and all(v.ok for v in self.verdicts)

    def render(self) -> str:
        lines = [
            f"{self.n} hosts x {len(self.verdicts)} topics, "
            f"{self.rounds} rounds [{self.scenario}]"
        ]
        for at, description in self.fault_log:
            lines.append(f"  round {at:5.1f}: {description}")
        for v in self.verdicts:
            lines.append(
                f"topic {v.topic}: published={v.published} "
                f"at_risk={v.at_risk} "
                f"converged={'yes' if v.delivered_converged else 'NO'} "
                f"isolated={list(v.isolated_hosts)} "
                f"recovered={list(v.recovered_hosts)}"
            )
            lines.append(f"  {v.report.summary()}")
        lines.append(f"verdict: {'OK' if self.exit_ok else 'FAILED'}")
        return "\n".join(lines)


def _timeline(
    plans: List[TopicSchedule],
) -> List[Tuple[float, int, str, Any]]:
    """Flatten the per-topic schedules into (round, topic, op, action)."""
    steps: List[Tuple[float, int, str, Any]] = []
    for plan in plans:
        for action in plan.schedule:
            steps.append((action.at_round, plan.topic, action.kind, action))
            if isinstance(action, PartitionNetwork) and action.heal_after:
                steps.append(
                    (action.at_round + action.heal_after, plan.topic, "heal", None)
                )
            if isinstance(action, CrashNodes) and action.recover_after:
                steps.append(
                    (
                        action.at_round + action.recover_after,
                        plan.topic,
                        "respawn",
                        action,
                    )
                )
    steps.sort(key=lambda step: step[0])
    return steps


async def _drive(
    cluster: ServiceCluster,
    plans: List[TopicSchedule],
    timeout: float,
) -> ServiceDrillResult:
    n = len(cluster.hosts)
    interval_s = cluster.config.round_interval / 1000.0
    steps = _timeline(plans)
    last_round = max((step[0] for step in steps), default=0.0)
    total_rounds = int(last_round) + TAIL_ROUNDS

    fault_log: List[Tuple[float, str]] = []
    partition_active: Dict[int, bool] = {p.topic: False for p in plans}
    isolated_ever: Dict[int, Set[int]] = {p.topic: set() for p in plans}
    heavy_burst_until: Dict[int, float] = {p.topic: -1.0 for p in plans}
    at_risk: Dict[int, Set[Any]] = {p.topic: set() for p in plans}
    published: Dict[int, Set[Any]] = {p.topic: set() for p in plans}
    #: topic -> event id -> round it was published (outage scoping).
    publish_round: Dict[int, Dict[Any, int]] = {p.topic: {} for p in plans}
    down_hosts: Set[int] = set()
    #: host -> [(crash_round, blind_until_round)] — a recovering host is
    #: not required to deliver events whose epidemic window overlapped
    #: its outage or its catch-up: the suffix-only anti-entropy
    #: protocol cannot back-fill below an advanced watermark
    #: (docs/SYNC.md), and check_survivors exempts recovered nodes from
    #: agreement on exactly that window.
    outages: Dict[int, List[List[float]]] = {}

    async def apply(step: Tuple[float, int, str, Any]) -> None:
        at, topic, op, action = step
        if op == "partition":
            groups = {int(k): v for k, v in (action.groups or {}).items()}
            cluster.set_topic_partition(topic, groups)
            partition_active[topic] = True
            isolated_ever[topic].update(groups)
            fault_log.append((at, f"partition topic {topic}: groups={groups}"))
        elif op == "heal":
            cluster.heal_topic_partition(topic)
            partition_active[topic] = False
            fault_log.append((at, f"heal topic {topic}"))
        elif op == "loss_burst":
            cluster.set_topic_loss(topic, action.rate, action.duration * interval_s)
            if action.rate >= 0.99:
                heavy_burst_until[topic] = at + action.duration
            fault_log.append(
                (at, f"loss burst topic {topic}: rate={action.rate} "
                     f"for {action.duration} rounds")
            )
        elif op == "crash":
            for host_id in action.nodes:
                cluster.crash_host(host_id)
                down_hosts.add(host_id)
                outages.setdefault(host_id, []).append([at, float("inf")])
            fault_log.append((at, f"crash hosts {list(action.nodes)}"))
        elif op == "respawn":
            for host_id in action.nodes:
                await cluster.respawn_host(host_id)
                down_hosts.discard(host_id)
                outages[host_id][-1][1] = at + cluster.config.ttl
            fault_log.append((at, f"respawn hosts {list(action.nodes)}"))

    # Workload + timeline, one round at a time.
    step_index = 0
    for round_no in range(total_rounds):
        while step_index < len(steps) and steps[step_index][0] <= round_no:
            await apply(steps[step_index])
            step_index += 1
        for i, plan in enumerate(plans):
            topic = plan.topic
            publisher = (
                plan.publisher
                if plan.publisher is not None
                else (round_no + i) % n
            )
            if publisher in down_hosts:
                continue
            event = await cluster.publish(
                topic, publisher, f"drill-t{topic}-r{round_no}"
            )
            published[topic].add(event.id)
            publish_round[topic][event.id] = round_no
            if partition_active[topic] or round_no < heavy_burst_until[topic]:
                at_risk[topic].add(event.id)
        await asyncio.sleep(interval_s)
    while step_index < len(steps):  # trailing heals/respawns, if any
        await apply(steps[step_index])
        step_index += 1

    # Quiesce: everything not at risk must land on every live host —
    # except that a recovered host is not held to events whose
    # epidemic window overlapped its outage/catch-up (see `outages`).
    def blind(host_id: int, round_no: int) -> bool:
        return any(
            start <= round_no <= until
            for start, until in outages.get(host_id, ())
        )

    verdicts: List[TopicVerdict] = []
    for plan in plans:
        topic = plan.topic
        required = published[topic] - at_risk[topic]
        rounds_of = publish_round[topic]

        def settled(topic=topic, required=required, rounds_of=rounds_of) -> bool:
            return all(
                {
                    event_id
                    for event_id in required
                    if not blind(host_id, rounds_of[event_id])
                }
                <= {e.id for e in service.deliveries(topic)}
                for host_id, service in cluster.hosts.items()
                if not service.crashed
            )

        converged = await cluster.wait_until(settled, timeout=timeout)
        isolated = isolated_ever[topic]
        # At-risk events (published into a partition or a total loss
        # burst) have degraded guarantees by construction: they may die
        # with their TTL, and the suffix-only anti-entropy protocol
        # repairs them on some hosts but not others (docs/SYNC.md).
        # The Table 1 verdict therefore runs on every journal *minus*
        # the at-risk ids — on the events that had fair connectivity,
        # every host (including the once-isolated one) must agree.
        risky = at_risk[topic]
        checked = {
            hid: [e for e in events if e.id not in risky]
            for hid, events in cluster.deliveries(topic).items()
        }
        recovered = {
            hid
            for hid, service in cluster.hosts.items()
            if not service.crashed and service.topics[topic].restart_indices
        }

        def filtered_indices(hid: int) -> List[int]:
            journal = cluster.hosts[hid].topics[topic].deliveries
            return [
                sum(1 for e in journal[:index] if e.id not in risky)
                for index in cluster.hosts[hid].topics[topic].restart_indices
            ]

        report = check_survivors(
            deliveries=checked,
            survivors=set(cluster.live_ids()) - recovered,
            recovered=recovered,
            restart_indices={hid: filtered_indices(hid) for hid in recovered},
            broadcasts=cluster.broadcasts.get(topic),
        )
        verdicts.append(
            TopicVerdict(
                topic=topic,
                published=len(published[topic]),
                at_risk=len(at_risk[topic]),
                delivered_converged=converged,
                isolated_hosts=tuple(sorted(isolated)),
                recovered_hosts=tuple(sorted(recovered)),
                report=report,
            )
        )
    return ServiceDrillResult(
        n=n,
        rounds=total_rounds,
        scenario="",
        fault_log=fault_log,
        verdicts=verdicts,
    )


def run_service_drill(
    seed: int = 31,
    n: int = 8,
    scenario: Union[str, Path, Dict[str, Any], None] = None,
    round_interval: int = 25,
    timeout: float = 20.0,
) -> ServiceDrillResult:
    """Run the multi-topic drill end to end over real loopback UDP.

    Args:
        seed: Fabric + per-topic peer-sampling seed.
        n: Hosts (each runs every scenario topic over one socket).
        scenario: Path / JSON text / mapping; defaults to
            ``scenarios/multi_topic_drill.json``.
        round_interval: EpTO round interval, milliseconds.
        timeout: Post-workload convergence wait per topic, seconds.
    """
    source = scenario if scenario is not None else DEFAULT_SCENARIO
    plans = load_scenario(source)
    label = str(source) if isinstance(source, (str, Path)) else "<inline>"

    async def go(storage: Path) -> ServiceDrillResult:
        network = UdpNetwork(seed=seed)
        cluster = ServiceCluster(
            EpToConfig.for_system_size(n, round_interval=round_interval),
            network=network,
            storage_dir=storage,
            sync=SyncConfig(),
            expected_size=n,
            seed=seed,
        )
        for plan in plans:
            cluster.open_topic(plan.topic)
        cluster.add_hosts(n)
        await cluster.open_all()
        cluster.start_all()
        try:
            result = await _drive(cluster, plans, timeout)
        finally:
            await cluster.close_all()
        result.scenario = Path(label).name if label != "<inline>" else label
        return result

    storage = Path(tempfile.mkdtemp(prefix="epto-service-drill-"))
    try:
        return asyncio.run(go(storage))
    finally:
        shutil.rmtree(storage, ignore_errors=True)
