"""Fault-drill experiment: a scenario file driven end to end.

Runs a declarative :class:`~repro.faults.schedule.FaultSchedule`
(default: the standard drill; any JSON scenario file via the CLI's
``--fault-scenario``) against a journaled simulated cluster with
same-identity recovery: crashed nodes come back through
:func:`repro.storage.recovery.recover` — snapshot-free log replay,
broadcast sequence resumed from the durable record, re-deliveries
deduplicated — and the run is judged on the paper's Table 1 properties
over the continuous survivors.

With ``--sync`` the cluster additionally runs the anti-entropy
catch-up protocol (:mod:`repro.sync`, docs/SYNC.md): recovered nodes
pull the delivery-log suffix they missed from a peer, so the drill can
hold them to a much stronger bar — their full delivery sequence must
be **bit-identical** to the continuous survivors', even when the
outage outlived the TTL window. Without sync the same long-outage
scenario shows permanent divergence (``recovered_missing`` > 0), which
is exactly the regression the paired scenarios in ``scenarios/``
document.

Hostile scenarios (``ByzantineNodes`` / ``ScrambleState`` actions, see
docs/SECURITY.md) turn on content fingerprinting and an authenticity
scan: forged or equivocated deliveries among correct nodes fail the
verdict. With ``--auth`` every ball entry travels under an HMAC
(:mod:`repro.auth`), so the same hostile schedule must produce *zero*
forged/equivocated deliveries — the paired scenarios in ``scenarios/``
document both outcomes.

This is the CLI face of the robustness layer::

    epto-experiment drill
    epto-experiment drill --fault-scenario scenarios/long_outage.json --sync
    epto-experiment drill --fault-scenario scenarios/byzantine_drill.json --auth

The CLI exits nonzero when the drill's verdict fails (safety or
agreement violations among survivors, forged/equivocated deliveries in
a hostile run, or — sync runs only — a recovered node that failed to
converge), so CI can gate on it.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple, Union

from ..auth import HmacAuthenticator, KeyRing
from ..faults.schedule import ByzantineNodes, FaultSchedule, ScrambleState
from ..faults.sim_injector import FaultStats, SimFaultInjector
from ..metrics.checker import AuthenticityReport, SpecReport, check_authenticity, check_run
from ..metrics.collector import DeliveryCollector
from ..metrics.trace import load_delivery_log
from ..sim.cluster import ClusterConfig, SimCluster
from ..sim.drift import UniformDrift
from ..sim.engine import Simulator
from ..sim.latency import FixedLatency
from ..sim.network import SimNetwork
from ..sync.config import SyncConfig
from ..workloads.broadcast import ProbabilisticWorkload
from .common import ExperimentSpec
from .scale import ScalePreset, get_scale


@dataclass(slots=True)
class DrillResult:
    """Outcome of one fault drill."""

    n: int
    schedule_len: int
    fault_stats: FaultStats
    fault_log: List[Tuple[int, str]]
    report: SpecReport
    survivors: int
    events_broadcast: int
    recoveries: int
    recovered_records: int
    recovery_dedups: int
    journal_dedups: int
    #: Whether the anti-entropy catch-up protocol ran.
    sync_enabled: bool = False
    #: Events all survivors delivered that some recovered node never
    #: did — permanent divergence when > 0 after the drain.
    recovered_missing: int = 0
    #: Whether every recovered node's full delivery sequence is
    #: bit-identical (same order keys, same order) to a continuous
    #: survivor's; ``None`` when nothing crashed or nobody survived.
    sequences_match: Optional[bool] = None
    #: Aggregated anti-entropy traffic (sum over every manager).
    sync_rounds: int = 0
    sync_sessions: int = 0
    sync_chunks: int = 0
    sync_repaired: int = 0
    sync_bytes_fetched: int = 0
    #: Whether ball entries travelled under HMAC (``--auth``).
    auth_enabled: bool = False
    #: Hostile node count (``ByzantineNodes`` actions in the schedule).
    byzantine_nodes: int = 0
    #: State-scrambled node count (``ScrambleState`` actions).
    scrambled: int = 0
    #: Authenticity scan over the correct nodes (hostile runs only).
    authenticity: Optional[AuthenticityReport] = None
    #: Ball entries the fabric rejected at admission (auth runs only).
    dropped_bad_signature: int = 0
    dropped_unknown_key: int = 0
    dropped_unsigned: int = 0
    #: Whether every scrambled node's *durable* delivered set converged
    #: to the reference survivor's (order is then implied by total
    #: order); ``None`` when nothing was scrambled.
    scrambled_converged: Optional[bool] = None

    @property
    def ok(self) -> bool:
        """Safety held on the continuous survivors."""
        return self.report.safety_ok

    @property
    def exit_ok(self) -> bool:
        """The verdict the CLI exit code reflects.

        Safety must hold on the continuous survivors always. Hostile
        runs (fingerprinting on) additionally require zero forged and
        zero equivocated deliveries among correct nodes — with
        ``--auth`` that is the guarantee under test; without it the
        same schedule fails, which is the documented contrast. When the
        anti-entropy protocol ran, recovered nodes are additionally
        held to full convergence: no permanently missing events,
        sequences bit-identical to the survivors', and scrambled nodes'
        durable journals converged. (Without sync, recovered divergence
        after a TTL-outliving outage is the documented, inherent
        behaviour — reported, not failed.)
        """
        if not self.report.safety_ok:
            return False
        if self.authenticity is not None and not self.authenticity.ok:
            return False
        if self.sync_enabled:
            if self.recovered_missing > 0:
                return False
            if self.sequences_match is False:
                return False
            if self.scrambled_converged is False:
                return False
        return True

    def render(self) -> str:
        lines = [
            f"n={self.n} actions={self.schedule_len} "
            f"survivors={self.survivors} events={self.events_broadcast}",
            f"faults: crashes={self.fault_stats.crashes} "
            f"recoveries={self.fault_stats.recoveries} "
            f"partitions={self.fault_stats.partitions} "
            f"loss_bursts={self.fault_stats.loss_bursts}",
            f"recovery: respawns={self.recoveries} "
            f"log_records_replayed={self.recovered_records} "
            f"replay_dedups={self.recovery_dedups} "
            f"live_dedups={self.journal_dedups}",
        ]
        if self.byzantine_nodes or self.scrambled or self.auth_enabled:
            lines.append(
                f"hostile: byzantine={self.byzantine_nodes} "
                f"scrambled={self.scrambled} "
                f"auth={'on' if self.auth_enabled else 'off'}"
            )
        if self.auth_enabled:
            lines.append(
                f"auth drops: bad_signature={self.dropped_bad_signature} "
                f"unknown_key={self.dropped_unknown_key} "
                f"unsigned={self.dropped_unsigned}"
            )
        if self.authenticity is not None:
            lines.append(self.authenticity.summary())
        if self.sync_enabled:
            lines.append(
                f"sync: rounds={self.sync_rounds} "
                f"sessions={self.sync_sessions} chunks={self.sync_chunks} "
                f"repaired={self.sync_repaired} "
                f"bytes={self.sync_bytes_fetched}"
            )
        if self.scrambled:
            verdict = (
                "n/a"
                if self.scrambled_converged is None
                else ("CONVERGED" if self.scrambled_converged else "DIVERGED")
            )
            lines.append(f"scrambled journals: {verdict}")
        if self.recoveries:
            verdict = (
                "n/a"
                if self.sequences_match is None
                else ("IDENTICAL" if self.sequences_match else "DIVERGED")
            )
            lines.append(
                f"recovered convergence: missing={self.recovered_missing} "
                f"sequences={verdict}"
            )
        lines += [
            f"safety: {'OK' if self.ok else 'VIOLATED'} "
            f"(order={len(self.report.order_violations)} "
            f"holes={len(self.report.holes)})",
            f"verdict: {'OK' if self.exit_ok else 'FAILED'}",
            "timeline:",
        ]
        lines += [f"  t={tick:>6} {message}" for tick, message in self.fault_log]
        return "\n".join(lines)


def run_drill(
    scale: ScalePreset | str | None = None,
    seed: int = 17,
    schedule: Optional[FaultSchedule] = None,
    storage_dir: Union[str, Path, None] = None,
    sync: bool = False,
    sync_config: Optional[SyncConfig] = None,
    auth: bool = False,
) -> DrillResult:
    """Run one fault scenario against a journaled simulated cluster.

    Args:
        scale: Size preset (drives the population).
        seed: Deterministic run seed.
        schedule: The scenario; :meth:`FaultSchedule.standard_drill`
            when omitted.
        storage_dir: Journal root; a temporary directory (removed after
            the run) when omitted.
        sync: Enable the anti-entropy catch-up protocol
            (:mod:`repro.sync`); recovered nodes are then required to
            converge bit-identically to the survivors (see
            :attr:`DrillResult.exit_ok`).
        sync_config: Override the drill's default sync parameters
            (implies ``sync=True`` when given).
        auth: Authenticate every ball entry with per-node HMAC keys
            (:mod:`repro.auth`, docs/SECURITY.md); hostile schedules
            must then produce zero forged/equivocated deliveries.
    """
    preset = scale if isinstance(scale, ScalePreset) else get_scale(scale)
    n = max(16, preset.sweep_n // 4)
    schedule = schedule if schedule is not None else FaultSchedule.standard_drill()
    spec = ExperimentSpec(name="drill", n=n, seed=seed, latency="fixed")
    config = spec.epto_config()
    if sync_config is not None:
        sync = True
    elif sync:
        # Probe fast relative to the drill's horizon so one recovery
        # converges well inside the drain window.
        sync_config = SyncConfig(interval_rounds=2.0)

    hostile_schedule = any(
        isinstance(action, (ByzantineNodes, ScrambleState)) for action in schedule
    )
    fingerprints = auth or hostile_schedule

    temp_root: Optional[str] = None
    if storage_dir is None:
        temp_root = tempfile.mkdtemp(prefix="epto-drill-")
        storage_dir = temp_root
    try:
        sim = Simulator(seed=seed)
        authenticator = (
            HmacAuthenticator(KeyRing(f"drill:{seed}")) if auth else None
        )
        network = SimNetwork(
            sim, latency=FixedLatency(ticks=2), authenticator=authenticator
        )
        collector = DeliveryCollector(fingerprints=fingerprints)
        cluster = SimCluster(
            sim,
            network,
            ClusterConfig(
                epto=config,
                drift=UniformDrift(spec.drift_fraction),
                expected_size=n,
            ),
            collector=collector,
            storage_dir=storage_dir,
            sync=sync_config if sync else None,
        )
        cluster.add_nodes(n)
        injector = SimFaultInjector(sim, cluster, schedule, recovery="same_id")
        injector.install()

        delta = config.round_interval
        active_rounds = int(schedule.horizon_rounds) + 4
        ProbabilisticWorkload(
            sim, cluster, rate=0.05, rounds=active_rounds, start=1
        )
        drain = spec.resolved_drain_rounds()
        sim.run(until=(active_rounds + drain) * delta)

        # Same-id respawns rejoin the alive set, but a recovered node is
        # not a *continuous* survivor — agreement is only promised to
        # processes that never went down; hostile nodes never qualify.
        byzantine_ids = set(injector.byzantine_ids)
        scrambled_ids = set(injector.scrambled_ids)
        survivors = (
            injector.continuous_survivors() - injector.crashed_ids - byzantine_ids
        )
        report = check_run(
            collector, correct_nodes=survivors, exclude_nodes=scrambled_ids
        )
        authenticity: Optional[AuthenticityReport] = None
        if fingerprints:
            correct = set(collector.sequences()) - byzantine_ids
            authenticity = check_authenticity(collector, correct_nodes=correct)
        recoveries = [
            state for states in cluster.recoveries.values() for state in states
        ]
        recovered_missing, sequences_match = _recovered_convergence(
            collector, survivors, sorted(set(cluster.recoveries) - scrambled_ids)
        )
        scrambled_converged = _scrambled_convergence(
            cluster, survivors, sorted(scrambled_ids)
        )
        managers = list(cluster.sync_managers.values())
        return DrillResult(
            n=n,
            schedule_len=len(schedule),
            fault_stats=injector.stats,
            fault_log=list(injector.log),
            report=report,
            survivors=len(survivors),
            events_broadcast=collector.broadcast_count,
            recoveries=len(recoveries),
            recovered_records=sum(state.replayed for state in recoveries),
            recovery_dedups=sum(state.deduplicated for state in recoveries),
            journal_dedups=sum(
                journal.stats.deduplicated for journal in cluster.journals.values()
            ),
            sync_enabled=sync,
            recovered_missing=recovered_missing,
            sequences_match=sequences_match,
            sync_rounds=sum(m.stats.rounds for m in managers),
            sync_sessions=sum(m.stats.sessions_completed for m in managers),
            sync_chunks=sum(m.stats.chunks_received for m in managers),
            sync_repaired=sum(m.stats.events_repaired for m in managers),
            sync_bytes_fetched=sum(m.stats.bytes_fetched for m in managers),
            auth_enabled=auth,
            byzantine_nodes=len(byzantine_ids),
            scrambled=len(scrambled_ids),
            authenticity=authenticity,
            dropped_bad_signature=network.stats.dropped_bad_signature,
            dropped_unknown_key=network.stats.dropped_unknown_key,
            dropped_unsigned=network.stats.dropped_unsigned,
            scrambled_converged=scrambled_converged,
        )
    finally:
        if temp_root is not None:
            shutil.rmtree(temp_root, ignore_errors=True)


def _recovered_convergence(
    collector: DeliveryCollector,
    survivors: set,
    recovered_ids: List[int],
) -> Tuple[int, Optional[bool]]:
    """Compare recovered nodes' delivery sequences to the survivors'.

    Returns ``(missing, identical)``: the number of events every
    survivor delivered that some recovered node never did, and whether
    every recovered node's full order-key sequence is bit-identical to
    the reference survivor's. ``(0, None)`` when there is nothing to
    compare.
    """
    if not recovered_ids or not survivors:
        return 0, None
    sequences: Dict[int, tuple] = {
        node_id: tuple(keys) for node_id, keys in collector.sequences().items()
    }
    reference = sequences.get(min(survivors), ())
    reference_set = set(reference)
    missing = 0
    identical = True
    for node_id in recovered_ids:
        keys = sequences.get(node_id, ())
        missing += len(reference_set - set(keys))
        if keys != reference:
            identical = False
    return missing, identical


def _scrambled_convergence(
    cluster: SimCluster,
    survivors: Set[int],
    scrambled_ids: List[int],
) -> Optional[bool]:
    """Compare scrambled nodes' *durable* journals to a survivor's.

    A scrambled node's in-memory trace legitimately re-covers recovered
    ground (the journal rewind resets its dedupe watermark), so
    convergence is judged on the durable log instead: after recovery
    and anti-entropy repair, its delivered order-key set must equal the
    reference survivor's — which, under total order, makes the sorted
    delivered sequences bit-identical. ``None`` when there is nothing
    to compare.
    """
    if not scrambled_ids or not survivors:
        return None
    reference_id = min(survivors)
    reference = sorted(
        set(
            load_delivery_log(
                cluster.node_storage_dir(reference_id), node_id=reference_id
            ).sequence_of(reference_id)
        )
    )
    for node_id in scrambled_ids:
        keys = sorted(
            set(
                load_delivery_log(
                    cluster.node_storage_dir(node_id), node_id=node_id
                ).sequence_of(node_id)
            )
        )
        if keys != reference:
            return False
    return True
