"""Fault-drill experiment: a scenario file driven end to end.

Runs a declarative :class:`~repro.faults.schedule.FaultSchedule`
(default: the standard drill; any JSON scenario file via the CLI's
``--fault-scenario``) against a journaled simulated cluster with
same-identity recovery: crashed nodes come back through
:func:`repro.storage.recovery.recover` — snapshot-free log replay,
broadcast sequence resumed from the durable record, re-deliveries
deduplicated — and the run is judged on the paper's Table 1 properties
over the continuous survivors.

With ``--sync`` the cluster additionally runs the anti-entropy
catch-up protocol (:mod:`repro.sync`, docs/SYNC.md): recovered nodes
pull the delivery-log suffix they missed from a peer, so the drill can
hold them to a much stronger bar — their full delivery sequence must
be **bit-identical** to the continuous survivors', even when the
outage outlived the TTL window. Without sync the same long-outage
scenario shows permanent divergence (``recovered_missing`` > 0), which
is exactly the regression the paired scenarios in ``scenarios/``
document.

This is the CLI face of the robustness layer::

    epto-experiment drill
    epto-experiment drill --fault-scenario scenarios/long_outage.json --sync

The CLI exits nonzero when the drill's verdict fails (safety or
agreement violations among survivors, or — sync runs only — a
recovered node that failed to converge), so CI can gate on it.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..faults.schedule import FaultSchedule
from ..faults.sim_injector import FaultStats, SimFaultInjector
from ..metrics.checker import SpecReport, check_run
from ..metrics.collector import DeliveryCollector
from ..sim.cluster import ClusterConfig, SimCluster
from ..sim.drift import UniformDrift
from ..sim.engine import Simulator
from ..sim.latency import FixedLatency
from ..sim.network import SimNetwork
from ..sync.config import SyncConfig
from ..workloads.broadcast import ProbabilisticWorkload
from .common import ExperimentSpec
from .scale import ScalePreset, get_scale


@dataclass(slots=True)
class DrillResult:
    """Outcome of one fault drill."""

    n: int
    schedule_len: int
    fault_stats: FaultStats
    fault_log: List[Tuple[int, str]]
    report: SpecReport
    survivors: int
    events_broadcast: int
    recoveries: int
    recovered_records: int
    recovery_dedups: int
    journal_dedups: int
    #: Whether the anti-entropy catch-up protocol ran.
    sync_enabled: bool = False
    #: Events all survivors delivered that some recovered node never
    #: did — permanent divergence when > 0 after the drain.
    recovered_missing: int = 0
    #: Whether every recovered node's full delivery sequence is
    #: bit-identical (same order keys, same order) to a continuous
    #: survivor's; ``None`` when nothing crashed or nobody survived.
    sequences_match: Optional[bool] = None
    #: Aggregated anti-entropy traffic (sum over every manager).
    sync_rounds: int = 0
    sync_sessions: int = 0
    sync_chunks: int = 0
    sync_repaired: int = 0
    sync_bytes_fetched: int = 0

    @property
    def ok(self) -> bool:
        """Safety held on the continuous survivors."""
        return self.report.safety_ok

    @property
    def exit_ok(self) -> bool:
        """The verdict the CLI exit code reflects.

        Safety must hold on the continuous survivors always. When the
        anti-entropy protocol ran, recovered nodes are additionally
        held to full convergence: no permanently missing events and
        sequences bit-identical to the survivors'. (Without sync,
        recovered divergence after a TTL-outliving outage is the
        documented, inherent behaviour — reported, not failed.)
        """
        if not self.report.safety_ok:
            return False
        if self.sync_enabled:
            if self.recovered_missing > 0:
                return False
            if self.sequences_match is False:
                return False
        return True

    def render(self) -> str:
        lines = [
            f"n={self.n} actions={self.schedule_len} "
            f"survivors={self.survivors} events={self.events_broadcast}",
            f"faults: crashes={self.fault_stats.crashes} "
            f"recoveries={self.fault_stats.recoveries} "
            f"partitions={self.fault_stats.partitions} "
            f"loss_bursts={self.fault_stats.loss_bursts}",
            f"recovery: respawns={self.recoveries} "
            f"log_records_replayed={self.recovered_records} "
            f"replay_dedups={self.recovery_dedups} "
            f"live_dedups={self.journal_dedups}",
        ]
        if self.sync_enabled:
            lines.append(
                f"sync: rounds={self.sync_rounds} "
                f"sessions={self.sync_sessions} chunks={self.sync_chunks} "
                f"repaired={self.sync_repaired} "
                f"bytes={self.sync_bytes_fetched}"
            )
        if self.recoveries:
            verdict = (
                "n/a"
                if self.sequences_match is None
                else ("IDENTICAL" if self.sequences_match else "DIVERGED")
            )
            lines.append(
                f"recovered convergence: missing={self.recovered_missing} "
                f"sequences={verdict}"
            )
        lines += [
            f"safety: {'OK' if self.ok else 'VIOLATED'} "
            f"(order={len(self.report.order_violations)} "
            f"holes={len(self.report.holes)})",
            f"verdict: {'OK' if self.exit_ok else 'FAILED'}",
            "timeline:",
        ]
        lines += [f"  t={tick:>6} {message}" for tick, message in self.fault_log]
        return "\n".join(lines)


def run_drill(
    scale: ScalePreset | str | None = None,
    seed: int = 17,
    schedule: Optional[FaultSchedule] = None,
    storage_dir: Union[str, Path, None] = None,
    sync: bool = False,
    sync_config: Optional[SyncConfig] = None,
) -> DrillResult:
    """Run one fault scenario against a journaled simulated cluster.

    Args:
        scale: Size preset (drives the population).
        seed: Deterministic run seed.
        schedule: The scenario; :meth:`FaultSchedule.standard_drill`
            when omitted.
        storage_dir: Journal root; a temporary directory (removed after
            the run) when omitted.
        sync: Enable the anti-entropy catch-up protocol
            (:mod:`repro.sync`); recovered nodes are then required to
            converge bit-identically to the survivors (see
            :attr:`DrillResult.exit_ok`).
        sync_config: Override the drill's default sync parameters
            (implies ``sync=True`` when given).
    """
    preset = scale if isinstance(scale, ScalePreset) else get_scale(scale)
    n = max(16, preset.sweep_n // 4)
    schedule = schedule if schedule is not None else FaultSchedule.standard_drill()
    spec = ExperimentSpec(name="drill", n=n, seed=seed, latency="fixed")
    config = spec.epto_config()
    if sync_config is not None:
        sync = True
    elif sync:
        # Probe fast relative to the drill's horizon so one recovery
        # converges well inside the drain window.
        sync_config = SyncConfig(interval_rounds=2.0)

    temp_root: Optional[str] = None
    if storage_dir is None:
        temp_root = tempfile.mkdtemp(prefix="epto-drill-")
        storage_dir = temp_root
    try:
        sim = Simulator(seed=seed)
        network = SimNetwork(sim, latency=FixedLatency(ticks=2))
        collector = DeliveryCollector()
        cluster = SimCluster(
            sim,
            network,
            ClusterConfig(
                epto=config,
                drift=UniformDrift(spec.drift_fraction),
                expected_size=n,
            ),
            collector=collector,
            storage_dir=storage_dir,
            sync=sync_config if sync else None,
        )
        cluster.add_nodes(n)
        injector = SimFaultInjector(sim, cluster, schedule, recovery="same_id")
        injector.install()

        delta = config.round_interval
        active_rounds = int(schedule.horizon_rounds) + 4
        ProbabilisticWorkload(
            sim, cluster, rate=0.05, rounds=active_rounds, start=1
        )
        drain = spec.resolved_drain_rounds()
        sim.run(until=(active_rounds + drain) * delta)

        # Same-id respawns rejoin the alive set, but a recovered node is
        # not a *continuous* survivor — agreement is only promised to
        # processes that never went down.
        survivors = injector.continuous_survivors() - injector.crashed_ids
        report = check_run(collector, correct_nodes=survivors)
        recoveries = [
            state for states in cluster.recoveries.values() for state in states
        ]
        recovered_missing, sequences_match = _recovered_convergence(
            collector, survivors, sorted(cluster.recoveries)
        )
        managers = list(cluster.sync_managers.values())
        return DrillResult(
            n=n,
            schedule_len=len(schedule),
            fault_stats=injector.stats,
            fault_log=list(injector.log),
            report=report,
            survivors=len(survivors),
            events_broadcast=collector.broadcast_count,
            recoveries=len(recoveries),
            recovered_records=sum(state.replayed for state in recoveries),
            recovery_dedups=sum(state.deduplicated for state in recoveries),
            journal_dedups=sum(
                journal.stats.deduplicated for journal in cluster.journals.values()
            ),
            sync_enabled=sync,
            recovered_missing=recovered_missing,
            sequences_match=sequences_match,
            sync_rounds=sum(m.stats.rounds for m in managers),
            sync_sessions=sum(m.stats.sessions_completed for m in managers),
            sync_chunks=sum(m.stats.chunks_received for m in managers),
            sync_repaired=sum(m.stats.events_repaired for m in managers),
            sync_bytes_fetched=sum(m.stats.bytes_fetched for m in managers),
        )
    finally:
        if temp_root is not None:
            shutil.rmtree(temp_root, ignore_errors=True)


def _recovered_convergence(
    collector: DeliveryCollector,
    survivors: set,
    recovered_ids: List[int],
) -> Tuple[int, Optional[bool]]:
    """Compare recovered nodes' delivery sequences to the survivors'.

    Returns ``(missing, identical)``: the number of events every
    survivor delivered that some recovered node never did, and whether
    every recovered node's full order-key sequence is bit-identical to
    the reference survivor's. ``(0, None)`` when there is nothing to
    compare.
    """
    if not recovered_ids or not survivors:
        return 0, None
    sequences: Dict[int, tuple] = {
        node_id: tuple(keys) for node_id, keys in collector.sequences().items()
    }
    reference = sequences.get(min(survivors), ())
    reference_set = set(reference)
    missing = 0
    identical = True
    for node_id in recovered_ids:
        keys = sequences.get(node_id, ())
        missing += len(reference_set - set(keys))
        if keys != reference:
            identical = False
    return missing, identical
