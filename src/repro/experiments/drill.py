"""Fault-drill experiment: a scenario file driven end to end.

Runs a declarative :class:`~repro.faults.schedule.FaultSchedule`
(default: the standard drill; any JSON scenario file via the CLI's
``--fault-scenario``) against a journaled simulated cluster with
same-identity recovery: crashed nodes come back through
:func:`repro.storage.recovery.recover` — snapshot-free log replay,
broadcast sequence resumed from the durable record, re-deliveries
deduplicated — and the run is judged on the paper's Table 1 properties
over the continuous survivors.

This is the CLI face of the robustness layer::

    epto-experiment drill
    epto-experiment drill --fault-scenario scenarios/partition.json
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..faults.schedule import FaultSchedule
from ..faults.sim_injector import FaultStats, SimFaultInjector
from ..metrics.checker import SpecReport, check_run
from ..metrics.collector import DeliveryCollector
from ..sim.cluster import ClusterConfig, SimCluster
from ..sim.drift import UniformDrift
from ..sim.engine import Simulator
from ..sim.latency import FixedLatency
from ..sim.network import SimNetwork
from ..workloads.broadcast import ProbabilisticWorkload
from .common import ExperimentSpec
from .scale import ScalePreset, get_scale


@dataclass(slots=True)
class DrillResult:
    """Outcome of one fault drill."""

    n: int
    schedule_len: int
    fault_stats: FaultStats
    fault_log: List[Tuple[int, str]]
    report: SpecReport
    survivors: int
    events_broadcast: int
    recoveries: int
    recovered_records: int
    recovery_dedups: int
    journal_dedups: int

    @property
    def ok(self) -> bool:
        """Safety held on the continuous survivors."""
        return self.report.safety_ok

    def render(self) -> str:
        lines = [
            f"n={self.n} actions={self.schedule_len} "
            f"survivors={self.survivors} events={self.events_broadcast}",
            f"faults: crashes={self.fault_stats.crashes} "
            f"recoveries={self.fault_stats.recoveries} "
            f"partitions={self.fault_stats.partitions} "
            f"loss_bursts={self.fault_stats.loss_bursts}",
            f"recovery: respawns={self.recoveries} "
            f"log_records_replayed={self.recovered_records} "
            f"replay_dedups={self.recovery_dedups} "
            f"live_dedups={self.journal_dedups}",
            f"safety: {'OK' if self.ok else 'VIOLATED'} "
            f"(order={len(self.report.order_violations)} "
            f"holes={len(self.report.holes)})",
            "timeline:",
        ]
        lines += [f"  t={tick:>6} {message}" for tick, message in self.fault_log]
        return "\n".join(lines)


def run_drill(
    scale: ScalePreset | str | None = None,
    seed: int = 17,
    schedule: Optional[FaultSchedule] = None,
    storage_dir: Union[str, Path, None] = None,
) -> DrillResult:
    """Run one fault scenario against a journaled simulated cluster.

    Args:
        scale: Size preset (drives the population).
        seed: Deterministic run seed.
        schedule: The scenario; :meth:`FaultSchedule.standard_drill`
            when omitted.
        storage_dir: Journal root; a temporary directory (removed after
            the run) when omitted.
    """
    preset = scale if isinstance(scale, ScalePreset) else get_scale(scale)
    n = max(16, preset.sweep_n // 4)
    schedule = schedule if schedule is not None else FaultSchedule.standard_drill()
    spec = ExperimentSpec(name="drill", n=n, seed=seed, latency="fixed")
    config = spec.epto_config()

    temp_root: Optional[str] = None
    if storage_dir is None:
        temp_root = tempfile.mkdtemp(prefix="epto-drill-")
        storage_dir = temp_root
    try:
        sim = Simulator(seed=seed)
        network = SimNetwork(sim, latency=FixedLatency(ticks=2))
        collector = DeliveryCollector()
        cluster = SimCluster(
            sim,
            network,
            ClusterConfig(
                epto=config,
                drift=UniformDrift(spec.drift_fraction),
                expected_size=n,
            ),
            collector=collector,
            storage_dir=storage_dir,
        )
        cluster.add_nodes(n)
        injector = SimFaultInjector(sim, cluster, schedule, recovery="same_id")
        injector.install()

        delta = config.round_interval
        active_rounds = int(schedule.horizon_rounds) + 4
        ProbabilisticWorkload(
            sim, cluster, rate=0.05, rounds=active_rounds, start=1
        )
        drain = spec.resolved_drain_rounds()
        sim.run(until=(active_rounds + drain) * delta)

        # Same-id respawns rejoin the alive set, but a recovered node is
        # not a *continuous* survivor — agreement is only promised to
        # processes that never went down.
        survivors = injector.continuous_survivors() - injector.crashed_ids
        report = check_run(collector, correct_nodes=survivors)
        recoveries = [
            state for states in cluster.recoveries.values() for state in states
        ]
        return DrillResult(
            n=n,
            schedule_len=len(schedule),
            fault_stats=injector.stats,
            fault_log=list(injector.log),
            report=report,
            survivors=len(survivors),
            events_broadcast=collector.broadcast_count,
            recoveries=len(recoveries),
            recovered_records=sum(state.replayed for state in recoveries),
            recovery_dedups=sum(state.deduplicated for state in recoveries),
            journal_dedups=sum(
                journal.stats.deduplicated for journal in cluster.journals.values()
            ),
        )
    finally:
        if temp_root is not None:
            shutil.rmtree(temp_root, ignore_errors=True)
