"""Eager-vs-lazy dissemination ablation (docs/OVERLAY.md).

EpTO's balls carry full events, so every payload crosses the wire
``K * (TTL+1)`` times per infected node while only one copy per node is
ever *used*. The lazy-push subsystem (:mod:`repro.lazy`) ships id-only
balls instead and pulls each payload at most once per node, trading a
bounded delivery-delay penalty (one pull round trip before the ordering
gate releases) for a large payload bytes-on-wire reduction.

This experiment runs the *identical* seeded workload — same simulator
seed, same broadcast coin flips, same payload sizes — once in
``mode="eager"`` and once in ``mode="lazy"`` and compares:

* ``payload bytes-on-wire`` — serialized payload bytes shipped, summed
  over all nodes (eager: inside every relayed ball copy; lazy: inside
  ``PayloadResponse`` messages only). The headline ``speedup`` is
  eager over lazy and is committed in ``BENCH_core.json``, gated by
  ``check_regression.py --require scenarios.lazy_bench``.
* ``delivery delay`` — p50/p95 in simulation ticks, charting the
  delay-vs-bytes trade the paper's total-order guarantee must survive.

Delivery (every stable node delivers every event) and agreement (zero
holes, total order verified) gate the exit code on *both* sides; a
byte win that loses events does not count.

CLI::

    epto-experiment lazy-bench
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .common import ExperimentResult, ExperimentSpec, run_experiment
from .scale import ScalePreset, get_scale

#: The committed acceptance floor: lazy must at least halve the payload
#: bytes on the wire at the preset scale (n >= 64, K >= 8).
SPEEDUP_FLOOR = 2.0


@dataclass(slots=True)
class LazySideRun:
    """One mode's run, reduced to the numbers the comparison needs."""

    label: str
    events: int
    deliveries: int
    stable_nodes: int
    holes: int
    safety_ok: bool
    messages_sent: int
    metadata_bytes: int
    payload_bytes: int
    delay_p50: float
    delay_p95: float
    wall_seconds: float

    @property
    def delivered(self) -> bool:
        """Every stable node delivered every broadcast event."""
        return (
            self.events > 0
            and self.deliveries == self.events * self.stable_nodes
        )

    @property
    def total_bytes(self) -> int:
        return self.metadata_bytes + self.payload_bytes

    def as_dict(self) -> dict:
        return {
            "events": self.events,
            "deliveries": self.deliveries,
            "stable_nodes": self.stable_nodes,
            "delivered": self.delivered,
            "holes": self.holes,
            "safety_ok": self.safety_ok,
            "messages_sent": self.messages_sent,
            "metadata_bytes": self.metadata_bytes,
            "payload_bytes": self.payload_bytes,
            "total_bytes": self.total_bytes,
            "delay_p50": round(self.delay_p50, 1),
            "delay_p95": round(self.delay_p95, 1),
            "seconds": round(self.wall_seconds, 3),
        }


def _side(result: ExperimentResult, label: str) -> LazySideRun:
    summary = result.summary
    return LazySideRun(
        label=label,
        events=result.events_broadcast,
        deliveries=result.deliveries,
        stable_nodes=result.stable_nodes,
        holes=result.holes,
        safety_ok=result.report.safety_ok,
        messages_sent=result.messages_sent,
        metadata_bytes=result.metadata_bytes,
        payload_bytes=result.payload_bytes,
        delay_p50=summary.p50 if summary else 0.0,
        delay_p95=summary.p95 if summary else 0.0,
        wall_seconds=result.wall_seconds,
    )


@dataclass(slots=True)
class LazyBenchResult:
    """Everything ``epto-experiment lazy-bench`` reports."""

    n: int
    fanout: int
    ttl: int
    payload_size: int
    broadcast_rounds: int
    eager: LazySideRun
    lazy: LazySideRun

    @property
    def speedup(self) -> float:
        """Payload bytes-on-wire, eager over lazy, identical workload."""
        if not self.lazy.payload_bytes:
            return 0.0
        return self.eager.payload_bytes / self.lazy.payload_bytes

    @property
    def total_bytes_ratio(self) -> float:
        """All estimated wire bytes (metadata + payload), eager/lazy."""
        if not self.lazy.total_bytes:
            return 0.0
        return self.eager.total_bytes / self.lazy.total_bytes

    @property
    def delay_penalty(self) -> float:
        """p95 delivery delay, lazy over eager (the price of pulling)."""
        if not self.eager.delay_p95:
            return 0.0
        return self.lazy.delay_p95 / self.eager.delay_p95

    @property
    def exit_ok(self) -> bool:
        """Delivery + agreement on both sides, and the byte win holds."""
        return (
            self.eager.delivered
            and self.lazy.delivered
            and self.eager.safety_ok
            and self.lazy.safety_ok
            and self.eager.holes == 0
            and self.lazy.holes == 0
            and self.eager.events == self.lazy.events
            and self.speedup >= SPEEDUP_FLOOR
        )

    def as_dict(self) -> dict:
        return {
            "n": self.n,
            "fanout": self.fanout,
            "ttl": self.ttl,
            "payload_size": self.payload_size,
            "broadcast_rounds": self.broadcast_rounds,
            "eager": self.eager.as_dict(),
            "lazy": self.lazy.as_dict(),
            "speedup": round(self.speedup, 2),
            "total_bytes_ratio": round(self.total_bytes_ratio, 2),
            "delay_penalty": round(self.delay_penalty, 2),
        }

    def render(self) -> str:
        lines = [
            f"{self.n} nodes, K={self.fanout}, TTL={self.ttl}, "
            f"{self.payload_size} B payloads, "
            f"{self.eager.events} events"
        ]
        lines.append("  delivery-delay vs bytes-on-wire:")
        for side in (self.eager, self.lazy):
            lines.append(
                f"  {side.label:5s}: payload {side.payload_bytes:>12,} B  "
                f"metadata {side.metadata_bytes:>12,} B  "
                f"p50 {side.delay_p50:7.1f}  p95 {side.delay_p95:7.1f}  "
                f"delivered={'yes' if side.delivered else 'NO'} "
                f"holes={side.holes}"
            )
        lines.append(
            f"payload speedup: {self.speedup:.2f}x   "
            f"total bytes ratio: {self.total_bytes_ratio:.2f}x   "
            f"p95 delay penalty: {self.delay_penalty:.2f}x"
        )
        lines.append(f"verdict: {'OK' if self.exit_ok else 'FAILED'}")
        return "\n".join(lines)


def run_lazy_bench(
    scale: ScalePreset | str | None = None,
    seed: int = 23,
    n: Optional[int] = None,
    fanout: Optional[int] = None,
    rounds: Optional[int] = None,
    payload_size: Optional[int] = None,
    pss: str = "uniform",
) -> LazyBenchResult:
    """Run the eager-vs-lazy comparison end to end.

    Args:
        scale: Size preset; governs n, fanout, workload volume and
            payload size (acceptance point: n >= 64 at K >= 8).
        seed: Simulator seed shared by both sides (identical workload).
        n / fanout / rounds / payload_size: Preset overrides.
        pss: Peer-sampling service for both sides (``uniform`` keeps
            the delivery gate exact; realistic overlays are exercised
            by the differential tests in ``tests/lazy``).
    """
    preset = get_scale(scale) if not isinstance(scale, ScalePreset) else scale
    n = int(n if n is not None else preset.lazy_bench_n)
    fanout = int(fanout if fanout is not None else preset.lazy_bench_fanout)
    rounds = int(
        rounds if rounds is not None else preset.lazy_bench_broadcast_rounds
    )
    payload_size = int(
        payload_size
        if payload_size is not None
        else preset.lazy_bench_payload_bytes
    )

    base = ExperimentSpec(
        name="lazy_bench",
        n=n,
        seed=seed,
        fanout=fanout,
        pss=pss,
        payload_size=payload_size,
        broadcast_rounds=rounds,
    )
    results: Dict[str, ExperimentResult] = {
        mode: run_experiment(base.with_overrides(name=f"lazy_bench[{mode}]", mode=mode))
        for mode in ("eager", "lazy")
    }
    return LazyBenchResult(
        n=n,
        fanout=fanout,
        ttl=base.resolved_ttl(),
        payload_size=payload_size,
        broadcast_rounds=rounds,
        eager=_side(results["eager"], "eager"),
        lazy=_side(results["lazy"], "lazy"),
    )
