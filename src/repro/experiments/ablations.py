"""Ablation drivers: design-choice experiments beyond the paper's figures.

Each driver mirrors the per-figure modules: a ``run_*`` function
returning a result object with ``table()`` / ``render()``. The
benchmark suite asserts shapes on these results, and the
``epto-experiment`` CLI exposes them alongside the figures.

Covered ablations (DESIGN.md §3, rows A1–A5):

* **TTL sensitivity** — the §6 observation that the theoretical TTL is
  conservative (15 → 5 at n = 100 with zero holes);
* **fanout starvation** — the K-vs-rounds trade behind Lemma 7;
* **round phase** — paper-style synchronized round starts vs staggered
  phases (safety identical, staggered delivers earlier under low
  latency);
* **ordering guards** — EpTO's Algorithm 2 guards vs Pbcast-style
  stability-only delivery under asynchrony (§7);
* **empirical bounds** — Monte-Carlo miss probabilities vs the
  Figure 3 analytic bound (§8.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..analysis.empirical import HoleEstimate, smallest_reliable_ttl, ttl_sweep
from ..core.params import DEFAULT_C, min_fanout, min_ttl
from ..metrics.report import format_table
from ..sim.latency import FixedLatency
from .common import ExperimentResult, ExperimentSpec, run_experiment
from .scale import ScalePreset, get_scale


# ----------------------------------------------------------------------
# A1: TTL sensitivity
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class TtlAblationResult:
    """Per-TTL results plus the theoretical reference value."""

    n: int
    theory_ttl: int
    results: Dict[int, ExperimentResult]

    def table(self) -> str:
        rows = []
        for ttl, res in sorted(self.results.items()):
            undelivered = res.events_broadcast * self.n - res.deliveries
            rows.append(
                (
                    ttl,
                    "-" if res.summary is None else round(res.summary.p50, 0),
                    res.holes,
                    undelivered,
                    "OK" if not res.report.order_violations else "VIOLATED",
                )
            )
        return format_table(
            ["TTL", "p50 delay", "holes", "undelivered", "order"], rows
        )

    def render(self) -> str:
        return (
            f"n={self.n}, theory TTL={self.theory_ttl}\n" + self.table()
        )


def run_ablation_ttl(
    scale: ScalePreset | str | None = None, seed: int = 60
) -> TtlAblationResult:
    """A1: sweep the TTL from starved to theoretical."""
    preset = scale if isinstance(scale, ScalePreset) else get_scale(scale)
    n = preset.fig6_n
    theory = ExperimentSpec(name="theory", n=n).resolved_ttl()
    ttls = sorted({2, 3, 5, max(5, theory // 2), theory})
    results = {}
    for ttl in ttls:
        spec = ExperimentSpec(
            name=f"ablation-ttl-{ttl}",
            n=n,
            seed=seed,
            ttl=ttl,
            broadcast_rate=0.05,
            broadcast_rounds=preset.fig6_broadcast_rounds,
        )
        results[ttl] = run_experiment(spec)
    return TtlAblationResult(n=n, theory_ttl=theory, results=results)


# ----------------------------------------------------------------------
# A2: fanout starvation
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class FanoutAblationResult:
    """Per-fanout results at a deliberately starved TTL."""

    n: int
    theory_fanout: int
    starved_ttl: int
    results: Dict[int, ExperimentResult]

    def coverage(self, fanout: int) -> float:
        res = self.results[fanout]
        possible = res.events_broadcast * self.n
        return res.deliveries / possible if possible else 1.0

    def table(self) -> str:
        rows = []
        for fanout, res in sorted(self.results.items()):
            rows.append(
                (
                    fanout,
                    res.events_broadcast,
                    f"{self.coverage(fanout):.1%}",
                    res.holes,
                    "OK" if not res.report.order_violations else "VIOLATED",
                )
            )
        return format_table(
            ["K", "events", "delivery coverage", "holes", "order"], rows
        )

    def render(self) -> str:
        return (
            f"n={self.n}, starved TTL={self.starved_ttl}, "
            f"theory K={self.theory_fanout}\n" + self.table()
        )


def run_ablation_fanout(
    scale: ScalePreset | str | None = None, seed: int = 61
) -> FanoutAblationResult:
    """A2: sweep the fanout at a starved TTL (Lemma 7's trade)."""
    preset = scale if isinstance(scale, ScalePreset) else get_scale(scale)
    n = preset.sweep_n
    theory_k = min_fanout(n)
    starved_ttl = 4
    fanouts = sorted({1, 2, max(3, theory_k // 4), theory_k})
    results = {}
    for k in fanouts:
        spec = ExperimentSpec(
            name=f"ablation-k-{k}",
            n=n,
            seed=seed,
            fanout=k,
            ttl=starved_ttl,
            broadcast_rate=0.05,
            broadcast_rounds=3,
        )
        results[k] = run_experiment(spec)
    return FanoutAblationResult(
        n=n, theory_fanout=theory_k, starved_ttl=starved_ttl, results=results
    )


# ----------------------------------------------------------------------
# A3: round phase
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class PhaseAblationResult:
    """Synchronized vs staggered round starts."""

    results: Dict[str, ExperimentResult]

    def table(self) -> str:
        rows = [
            (
                phase,
                round(res.summary.p50, 0) if res.summary else "-",
                round(res.summary.p95, 0) if res.summary else "-",
                res.holes,
                "OK" if res.report.safety_ok else "VIOLATED",
            )
            for phase, res in self.results.items()
        ]
        return format_table(
            ["phase", "p50 delay", "p95 delay", "holes", "safety"], rows
        )

    def render(self) -> str:
        return self.table()

    def speedup(self) -> float:
        """Staggered median over synchronized median (< 1 = faster)."""
        sync = self.results["synchronized"].summary
        stag = self.results["staggered"].summary
        if sync is None or stag is None:
            return float("nan")
        return stag.p50 / sync.p50


def run_ablation_phase(
    scale: ScalePreset | str | None = None, seed: int = 62
) -> PhaseAblationResult:
    """A3: compare paper-style synchronized starts with staggered ones."""
    preset = scale if isinstance(scale, ScalePreset) else get_scale(scale)
    n = preset.sweep_n
    results = {}
    for phase in ("synchronized", "staggered"):
        spec = ExperimentSpec(
            name=f"ablation-phase-{phase}",
            n=n,
            seed=seed,
            latency=FixedLatency(5),
            round_phase=phase,
            broadcast_rate=0.05,
            broadcast_rounds=3,
        )
        results[phase] = run_experiment(spec)
    return PhaseAblationResult(results=results)


# ----------------------------------------------------------------------
# A4: ordering guards vs stability-only delivery
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class GuardAblationResult:
    """Multi-seed order-violation tallies per protocol."""

    n: int
    seeds: Tuple[int, ...]
    results: Dict[str, List[ExperimentResult]]

    def violations(self, kind: str) -> int:
        return sum(len(r.report.order_violations) for r in self.results[kind])

    def table(self) -> str:
        rows = []
        for kind, runs in self.results.items():
            medians = [r.summary.p50 for r in runs if r.summary]
            rows.append(
                (
                    kind,
                    len(runs),
                    self.violations(kind),
                    round(sum(medians) / len(medians), 0) if medians else "-",
                )
            )
        return format_table(
            ["protocol", "runs", "order violations", "mean p50"], rows
        )

    def render(self) -> str:
        return f"n={self.n}, tight TTL=4, seeds={list(self.seeds)}\n" + self.table()


def run_ablation_guards(
    scale: ScalePreset | str | None = None,
    seeds: Sequence[int] = (40, 41, 42, 43, 44),
) -> GuardAblationResult:
    """A4: EpTO vs Pbcast-style delivery under identical asynchrony."""
    preset = scale if isinstance(scale, ScalePreset) else get_scale(scale)
    n = preset.sweep_n // 2 or 24
    results: Dict[str, List[ExperimentResult]] = {}
    for kind in ("epto", "pbcast"):
        runs = []
        for seed in seeds:
            spec = ExperimentSpec(
                name=f"guard-{kind}-{seed}",
                n=n,
                seed=seed,
                process_kind=kind,
                ttl=4,
                broadcast_rate=0.1,
                broadcast_rounds=4,
            )
            runs.append(run_experiment(spec))
        results[kind] = runs
    return GuardAblationResult(n=n, seeds=tuple(seeds), results=results)


# ----------------------------------------------------------------------
# A5: empirical bound looseness
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class EmpiricalBoundsResult:
    """Miss-rate sweep plus the smallest hole-free TTL."""

    n: int
    fanout: int
    theory_ttl: int
    sweep: List[HoleEstimate]
    smallest_reliable: int

    def table(self) -> str:
        rows = [
            (
                e.rounds,
                e.misses,
                f"{e.miss_rate:.2e}",
                f"{e.wilson_upper():.1e}",
            )
            for e in self.sweep
        ]
        return format_table(["TTL", "misses", "miss rate", "99% Wilson upper"], rows)

    def render(self) -> str:
        return (
            f"n={self.n}, K={self.fanout}, theory TTL={self.theory_ttl}, "
            f"smallest hole-free TTL observed={self.smallest_reliable}\n"
            + self.table()
        )


def run_empirical_bounds(
    n: int = 100, trials: int = 300, seed: int = 3
) -> EmpiricalBoundsResult:
    """A5: Monte-Carlo the §8.1 bound-looseness measurement."""
    fanout = min_fanout(n)
    theory_ttl = min_ttl(n, c=DEFAULT_C)
    ttls = sorted({2, 3, 4, 5, 7, 10, theory_ttl})
    sweep = ttl_sweep(n, fanout, ttls=ttls, trials=trials, seed=seed)
    reliable = smallest_reliable_ttl(n, fanout, max_ttl=theory_ttl, trials=trials)
    return EmpiricalBoundsResult(
        n=n,
        fanout=fanout,
        theory_ttl=theory_ttl,
        sweep=sweep,
        smallest_reliable=reliable,
    )
