"""Figure 9 reproduction: churn with Cyclon [28] as the PSS.

Identical to the Figure 8 sweep except the idealized uniform view is
replaced by a real Cyclon implementation: views are maintained by
periodic shuffles over the same lossy network, so they transiently
reference churned-out processes (balls sent to them are lost) and take
time to learn about joiners. Expected shape: "there is a performance
degradation due to the above factors" relative to Figure 8, while
deliveries still complete and order is preserved.
"""

from __future__ import annotations

from .fig8_churn import ChurnSweepResult, run_churn_sweep
from .scale import ScalePreset


def run_fig9(
    scale: ScalePreset | str | None = None, seed: int = 9
) -> ChurnSweepResult:
    """Figure 9: churn sweep with Cyclon maintaining the views."""
    return run_churn_sweep("cyclon", scale=scale, seed=seed)
