"""Figure 6 reproduction: ordering cost over the reliable baseline.

Compares, at 100 processes and a 5% broadcast probability:

* the unordered balls-and-bins baseline (Algorithm 1 alone, delivery
  on first sight) — the infection time of an event;
* EpTO with a global clock at the theoretical TTL (15 for n = 100) —
  the paper reports total order costs "about three to five times that
  of reliable delivery";
* EpTO with a logical clock at the doubled Lemma 4 TTL;
* EpTO with the aggressively reduced TTL = 5 the paper found to still
  deliver everything in order — "a substantial improvement of the
  delivery delay" showing the theoretical analysis is conservative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.params import min_ttl
from ..metrics.report import format_cdf_series, format_table
from .common import ExperimentResult, ExperimentSpec, run_experiment
from .scale import ScalePreset, get_scale

#: The paper's reduced-TTL point ("with a TTL as small as 5").
REDUCED_TTL = 5


@dataclass(frozen=True, slots=True)
class Fig6Result:
    """All four curves of the comparison."""

    results: Dict[str, ExperimentResult]

    def cdf_series(self) -> Dict[str, List[Tuple[float, float]]]:
        """Label -> delivery-delay CDF points."""
        return {label: result.cdf for label, result in self.results.items()}

    def ordering_cost_factor(self) -> float:
        """Median EpTO (theory TTL) delay over median baseline delay.

        The paper's headline: "the cost of obtaining a totally ordered
        delivery of events is about three to five times that of
        reliable delivery".
        """
        baseline = self.results["baseline (no order)"].summary
        epto = self.results["global clock"].summary
        if baseline is None or epto is None:
            return float("nan")
        return epto.p50 / baseline.p50

    def table(self) -> str:
        """Headline rows per curve."""
        rows = []
        for label, result in self.results.items():
            summary = result.summary
            rows.append(
                (
                    label,
                    result.spec.resolved_ttl(),
                    result.events_broadcast,
                    "-" if summary is None else round(summary.p50, 0),
                    "-" if summary is None else round(summary.p95, 0),
                    result.holes,
                )
            )
        return format_table(
            ["config", "TTL", "events", "p50 delay", "p95 delay", "holes"], rows
        )

    def render(self) -> str:
        """Full text report (table + CDF percentile series)."""
        return self.table() + "\n\n" + format_cdf_series(self.cdf_series())


def run_fig6(scale: ScalePreset | str | None = None, seed: int = 6) -> Fig6Result:
    """Run the four Figure 6 configurations."""
    preset = scale if isinstance(scale, ScalePreset) else get_scale(scale)
    n = preset.fig6_n
    base = ExperimentSpec(
        name="fig6",
        n=n,
        seed=seed,
        broadcast_rate=0.05,
        broadcast_rounds=preset.fig6_broadcast_rounds,
    )
    specs = {
        "baseline (no order)": base.with_overrides(
            name="fig6-baseline", process_kind="ballsbins"
        ),
        "global clock": base.with_overrides(name="fig6-global", clock="global"),
        "logical clock": base.with_overrides(name="fig6-logical", clock="logical"),
        f"global clock TTL={REDUCED_TTL}": base.with_overrides(
            name="fig6-reduced-ttl", clock="global", ttl=REDUCED_TTL
        ),
    }
    return Fig6Result(
        results={label: run_experiment(spec) for label, spec in specs.items()}
    )
