"""Experiment scale presets.

The paper's simulator is compiled and its headline configurations
(Figure 7b sweeps to 10,000 processes) are heavy for a pure-Python
reproduction, so every figure driver accepts a *scale*:

* ``"small"`` (default) — CI-friendly sizes that finish in seconds per
  configuration while preserving every qualitative shape the paper
  reports (see DESIGN.md §3);
* ``"paper"`` — the exact sizes from §6; expect minutes to hours.

Select globally with the ``REPRO_SCALE`` environment variable or per
call via the drivers' ``scale`` argument.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Sequence

from ..core.errors import ConfigurationError

#: Environment variable that selects the default scale.
SCALE_ENV_VAR = "REPRO_SCALE"


@dataclass(frozen=True, slots=True)
class ScalePreset:
    """Concrete sizes for one scale level."""

    name: str
    fig6_n: int
    fig6_broadcast_rounds: int
    fig7a_n: int
    fig7a_rates: Sequence[float]
    fig7a_broadcast_rounds: int
    fig7b_sizes: Sequence[int]
    fig7b_broadcast_rounds: int
    sweep_n: int  # figures 8, 9, 10
    sweep_rates: Sequence[float]  # churn / loss levels
    sweep_broadcast_rounds: int
    cyclon_warmup_rounds: int
    #: Loopback-UDP cluster sizes for the end-to-end network benchmark.
    net_bench_sizes: Sequence[int] = (8, 16)
    #: Broadcasts driven to completion per net-bench cluster run.
    net_bench_events: int = 6
    #: Hosts / topics / events-per-topic for the multi-topic service
    #: benchmark (multiplexed vs separate single-topic clusters).
    service_bench_n: int = 6
    service_bench_topics: int = 4
    service_bench_events: int = 6
    #: System size / fanout for the eager-vs-lazy dissemination
    #: ablation (``epto-experiment lazy-bench``); the acceptance point
    #: is n >= 64 at K >= 8.
    lazy_bench_n: int = 64
    lazy_bench_fanout: int = 8
    lazy_bench_broadcast_rounds: int = 6
    #: Serialized payload size per event (bytes of string payload).
    lazy_bench_payload_bytes: int = 256


SMALL = ScalePreset(
    name="small",
    fig6_n=80,
    fig6_broadcast_rounds=6,
    fig7a_n=128,
    fig7a_rates=(0.01, 0.05, 0.10),
    fig7a_broadcast_rounds=5,
    fig7b_sizes=(32, 64, 128, 256),
    fig7b_broadcast_rounds=5,
    sweep_n=128,
    sweep_rates=(0.0, 0.01, 0.05, 0.10),
    sweep_broadcast_rounds=5,
    cyclon_warmup_rounds=10,
)

PAPER = ScalePreset(
    name="paper",
    fig6_n=100,
    fig6_broadcast_rounds=10,
    fig7a_n=500,
    fig7a_rates=(0.01, 0.05, 0.10),
    fig7a_broadcast_rounds=10,
    fig7b_sizes=(100, 500, 1000, 5000, 10000),
    fig7b_broadcast_rounds=10,
    sweep_n=500,
    sweep_rates=(0.0, 0.01, 0.05, 0.10),
    sweep_broadcast_rounds=10,
    cyclon_warmup_rounds=20,
    net_bench_sizes=(16, 32),
    net_bench_events=12,
    service_bench_n=12,
    service_bench_topics=6,
    service_bench_events=10,
    lazy_bench_n=128,
    lazy_bench_fanout=10,
    lazy_bench_broadcast_rounds=8,
    lazy_bench_payload_bytes=512,
)

_PRESETS = {"small": SMALL, "paper": PAPER}


def get_scale(name: str | None = None) -> ScalePreset:
    """Resolve a scale preset by name, argument > env var > small."""
    if name is None:
        name = os.environ.get(SCALE_ENV_VAR, "small")
    try:
        return _PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scale {name!r}; choose from {sorted(_PRESETS)}"
        ) from None
