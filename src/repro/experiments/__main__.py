"""``python -m repro.experiments`` — the epto-experiment CLI."""

import sys

from .cli import main

sys.exit(main())
