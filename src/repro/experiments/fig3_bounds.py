"""Figure 3 reproduction: probabilistic agreement upper bounds.

Figure 3a plots the probability that a fixed process has a hole for an
event, and Figure 3b the probability that an event has a hole for at
least one process, both as a function of the system size ``n`` for
three values of the safety constant ``c``, assuming the event is
disseminated exactly ``c * n * log2 n`` times. Pure analysis — no
simulation — so the reproduction is exact, not approximate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..analysis.bounds import (
    log10_p_hole_any_process,
    log10_p_hole_fixed_process,
)
from ..metrics.report import format_table

#: The figure's curves (the plot labels read c = 2, 3, 4).
DEFAULT_CS: Sequence[float] = (2.0, 3.0, 4.0)

#: The figure's x axis: 0 to 1000 processes (we start at 10 — the bound
#: is vacuous for degenerate sizes).
DEFAULT_SIZES: Sequence[int] = tuple(range(10, 1001, 10))


@dataclass(frozen=True, slots=True)
class Fig3Result:
    """Both panels: ``curves[c] = [(n, log10 P), ...]``."""

    fixed_process: Dict[float, List[Tuple[int, float]]]
    any_process: Dict[float, List[Tuple[int, float]]]

    def table(self, sizes: Sequence[int] = (100, 500, 1000)) -> str:
        """Headline rows at a few sizes, matching the figure's scale."""
        headers = ["n"] + [
            f"c={c:g} {panel}"
            for c in sorted(self.fixed_process)
            for panel in ("fixed", "any")
        ]
        rows = []
        for n in sizes:
            row: List[object] = [n]
            for c in sorted(self.fixed_process):
                fixed = dict(self.fixed_process[c]).get(n)
                any_ = dict(self.any_process[c]).get(n)
                row.append("-" if fixed is None else f"1e{fixed:.1f}")
                row.append("-" if any_ is None else f"1e{any_:.1f}")
            rows.append(row)
        return format_table(headers, rows)


def run_fig3(
    cs: Sequence[float] = DEFAULT_CS,
    sizes: Sequence[int] = DEFAULT_SIZES,
) -> Fig3Result:
    """Compute both Figure 3 panels for the given ``c`` values/sizes."""
    fixed: Dict[float, List[Tuple[int, float]]] = {}
    any_: Dict[float, List[Tuple[int, float]]] = {}
    for c in cs:
        fixed[c] = [(n, log10_p_hole_fixed_process(n, c)) for n in sizes]
        any_[c] = [(n, log10_p_hole_any_process(n, c)) for n in sizes]
    return Fig3Result(fixed_process=fixed, any_process=any_)
