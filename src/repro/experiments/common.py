"""Shared experiment harness for the §6 evaluation reproductions.

Builds a complete simulated deployment from a declarative
:class:`ExperimentSpec` — engine, network (latency/loss), cluster
(EpTO / baseline processes, uniform or Cyclon PSS), churn, workload —
runs it to quiescence, and returns an :class:`ExperimentResult` with
the delay samples, CDF, Table 1 specification report and network
statistics. Every figure driver in this package is a thin sweep over
this harness.
"""

from __future__ import annotations

import time as _wallclock
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..broadcast.balls_bins import BallsBinsProcess
from ..broadcast.fifo import FifoProcess
from ..broadcast.pbcast import StabilityOrderedProcess
from ..core.config import EpToConfig
from ..core.errors import ConfigurationError
from ..core.params import DEFAULT_C, min_fanout, min_ttl
from ..metrics.cdf import DelaySummary, cdf_points
from ..metrics.checker import SpecReport, check_run
from ..metrics.collector import DeliveryCollector
from ..sim.churn import ChurnDriver
from ..sim.cluster import ClusterConfig, SimCluster
from ..sim.drift import NoDrift, UniformDrift
from ..sim.engine import Simulator
from ..sim.latency import (
    FixedLatency,
    LatencyModel,
    PlanetLabLatency,
    make_latency_model,
)
from ..sim.network import SimNetwork
from ..workloads.broadcast import ProbabilisticWorkload


@dataclass(frozen=True, slots=True)
class ExperimentSpec:
    """Declarative description of one simulation run.

    The defaults reproduce the paper's common setting: ``delta = 125``
    ticks, 1% uniform drift, PlanetLab-like latency, idealized PSS,
    global clock, and the theoretical ``K``/``TTL`` for the system
    size (overridable — Figure 6's "TTL as small as 5" point uses the
    override).
    """

    name: str
    n: int
    seed: int = 1
    clock: str = "global"
    c: float = DEFAULT_C
    fanout: Optional[int] = None
    ttl: Optional[int] = None
    round_interval: int = 125
    latency: str | LatencyModel = "planetlab"
    loss_rate: float = 0.0
    churn_rate: float = 0.0
    pss: str = "uniform"
    drift_fraction: float = 0.01
    broadcast_rate: float = 0.05
    broadcast_rounds: int = 8
    warmup_rounds: int = 0
    drain_rounds: Optional[int] = None
    process_kind: str = "epto"
    round_phase: str = "synchronized"
    #: ``"eager"`` ships payloads inside every ball; ``"lazy"`` ships
    #: id-only balls and pulls payloads on demand (docs/OVERLAY.md).
    mode: str = "eager"
    #: When > 0, each workload event carries a string payload of this
    #: many characters (the lazy-bench byte-volume knob); 0 keeps the
    #: default tiny integer payload.
    payload_size: int = 0

    def resolved_fanout(self) -> int:
        """Configured fanout, or the Theorem 2 / Lemma 7 bound."""
        if self.fanout is not None:
            return self.fanout
        return min_fanout(self.n, churn_rate=self.churn_rate, loss_rate=self.loss_rate)

    def resolved_ttl(self) -> int:
        """Configured TTL, or the Lemma 3–6 bound for the clock type."""
        if self.ttl is not None:
            return self.ttl
        return min_ttl(self.n, c=self.c, clock=self.clock, latency_bounded_by_round=True)

    def resolved_drain_rounds(self) -> int:
        """Silent rounds appended so every event can stabilize.

        An event broadcast in the last workload round still needs
        ``TTL + 1`` rounds of aging plus slack for network latency (up
        to ~6 round durations in the PlanetLab tail) and drift.
        """
        if self.drain_rounds is not None:
            return self.drain_rounds
        return self.resolved_ttl() + 16

    def epto_config(self) -> EpToConfig:
        """Materialize the :class:`~repro.core.config.EpToConfig`."""
        return EpToConfig(
            fanout=self.resolved_fanout(),
            ttl=self.resolved_ttl(),
            round_interval=self.round_interval,
            clock=self.clock,
            mode=self.mode,
        )

    def with_overrides(self, **changes: object) -> "ExperimentSpec":
        """Copy with fields replaced (sweep helper)."""
        return replace(self, **changes)  # type: ignore[arg-type]


@dataclass(slots=True)
class ExperimentResult:
    """Everything a finished run produced."""

    spec: ExperimentSpec
    delays: List[int]
    summary: Optional[DelaySummary]
    cdf: List[Tuple[float, float]]
    report: SpecReport
    events_broadcast: int
    deliveries: int
    stable_nodes: int
    messages_sent: int
    messages_dropped: int
    sim_ticks: int
    wall_seconds: float
    #: Estimated wire bytes, split by what they carry (summed over the
    #: nodes alive at the end of the run; codec-layout estimates, the
    #: same accounting :class:`~repro.core.dissemination.DisseminationStats`
    #: and the lazy process use).
    metadata_bytes: int = 0
    payload_bytes: int = 0

    @property
    def holes(self) -> int:
        """Agreement holes among stable nodes (paper: always zero)."""
        return len(self.report.holes)

    def as_row(self) -> Dict[str, object]:
        """Flatten headline numbers for report tables."""
        row: Dict[str, object] = {
            "name": self.spec.name,
            "n": self.spec.n,
            "events": self.events_broadcast,
            "deliveries": self.deliveries,
            "holes": self.holes,
            "safety": "OK" if self.report.safety_ok else "VIOLATED",
        }
        if self.summary is not None:
            row.update(
                {
                    "mean": round(self.summary.mean, 1),
                    "p50": round(self.summary.p50, 1),
                    "p95": round(self.summary.p95, 1),
                }
            )
        return row


def _build_latency(spec: ExperimentSpec) -> LatencyModel:
    if isinstance(spec.latency, str):
        return make_latency_model(spec.latency)
    return spec.latency


def _build_process_factory(spec: ExperimentSpec, config: EpToConfig):
    """Process factory for baseline kinds; ``None`` selects EpTO."""
    if spec.process_kind == "epto":
        return None
    if spec.process_kind == "ballsbins":
        cls = BallsBinsProcess
    elif spec.process_kind == "fifo":
        cls = FifoProcess
    elif spec.process_kind == "pbcast":
        cls = StabilityOrderedProcess
    else:
        raise ConfigurationError(f"unknown process kind {spec.process_kind!r}")

    def factory(*, node_id, pss, transport, on_deliver, time_source, rng):
        return cls(
            node_id=node_id,
            config=config,
            peer_sampler=pss,
            transport=transport,
            on_deliver=on_deliver,
            time_source=time_source,
            rng=rng,
        )

    return factory


def run_experiment(spec: ExperimentSpec) -> ExperimentResult:
    """Run one experiment to quiescence and collect all metrics.

    Timeline (in round intervals ``delta``):

    1. ``warmup_rounds`` — processes gossip with no workload (lets a
       Cyclon PSS mix its views before events start flowing);
    2. ``broadcast_rounds`` — the probabilistic workload fires; churn,
       if configured, is active during this window;
    3. ``drain_rounds`` — silence; churn stops, every in-flight event
       ages to stability and is delivered.

    The specification report is evaluated over the nodes that were
    alive from the start of the broadcast window to the end of the run
    (the paper's "processes that remained in the system long enough").
    """
    started = _wallclock.perf_counter()
    sim = Simulator(seed=spec.seed)
    network = SimNetwork(sim, latency=_build_latency(spec), loss_rate=spec.loss_rate)
    config = spec.epto_config()
    drift = UniformDrift(spec.drift_fraction) if spec.drift_fraction > 0 else NoDrift()
    cluster_config = ClusterConfig(
        epto=config,
        pss=spec.pss,
        drift=drift,
        expected_size=spec.n,
        round_phase=spec.round_phase,
    )
    collector = DeliveryCollector()
    cluster = SimCluster(
        sim,
        network,
        cluster_config,
        collector=collector,
        process_factory=_build_process_factory(spec, config),
    )
    cluster.add_nodes(spec.n)

    delta = spec.round_interval
    warmup_end = spec.warmup_rounds * delta
    broadcast_end = warmup_end + spec.broadcast_rounds * delta
    run_end = broadcast_end + spec.resolved_drain_rounds() * delta

    workload_kwargs = {}
    if spec.payload_size > 0:
        size = spec.payload_size
        workload_kwargs["payload_factory"] = lambda index: (
            f"p{index:07d}".ljust(size, "x")
        )
    ProbabilisticWorkload(
        sim,
        cluster,
        rate=spec.broadcast_rate,
        rounds=spec.broadcast_rounds,
        start=warmup_end + 1,
        **workload_kwargs,
    )
    if spec.churn_rate > 0.0:
        ChurnDriver(
            sim,
            cluster,
            rate=spec.churn_rate,
            start=warmup_end + 1,
            stop_after=broadcast_end,
        )

    sim.run(until=run_end)

    stable = collector.stable_nodes(since=warmup_end, until=run_end)
    report = check_run(collector, correct_nodes=stable)
    delays = collector.delivery_delays()
    summary = DelaySummary.from_samples(delays) if delays else None

    metadata_bytes = payload_bytes = 0
    for node_id in cluster.alive_ids():
        process = cluster.node(node_id)
        snapshot = getattr(process, "stats_snapshot", None)
        if snapshot is not None:  # lazy process: its own wire accounting
            stats = snapshot()
            metadata_bytes += stats.get("metadata_bytes", 0)
            payload_bytes += stats.get("payload_bytes", 0)
            continue
        dissemination = getattr(process, "dissemination", None)
        if dissemination is not None:
            metadata_bytes += dissemination.stats.metadata_bytes
            payload_bytes += dissemination.stats.payload_bytes

    return ExperimentResult(
        spec=spec,
        delays=delays,
        summary=summary,
        cdf=cdf_points(delays),
        report=report,
        events_broadcast=collector.broadcast_count,
        deliveries=collector.delivery_count,
        stable_nodes=len(stable),
        messages_sent=network.stats.sent,
        messages_dropped=network.stats.dropped,
        sim_ticks=sim.now(),
        wall_seconds=_wallclock.perf_counter() - started,
        metadata_bytes=metadata_bytes,
        payload_bytes=payload_bytes,
    )


def run_sweep(specs: Sequence[ExperimentSpec]) -> List[ExperimentResult]:
    """Run several specs sequentially (one figure's family of curves)."""
    return [run_experiment(spec) for spec in specs]
