"""Figure 7 reproduction: scalability in events and processes.

* **Figure 7a** — delivery-delay CDFs while the per-process broadcast
  probability grows from 1% to 10% (500 processes in the paper). The
  expected shape: "the broadcast rate has little impact on delivery
  delay when using either global or logical clocks".
* **Figure 7b** — delivery-delay CDFs while the system grows from 100
  to 10,000 processes (5% broadcast rate). Expected shape: "the
  delivery delay increases logarithmically with the number of
  processes" — growing the system by two orders of magnitude less than
  doubles the delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..metrics.report import format_cdf_series, format_table
from .common import ExperimentResult, ExperimentSpec, run_experiment
from .scale import ScalePreset, get_scale


@dataclass(frozen=True, slots=True)
class Fig7aResult:
    """Broadcast-rate sweep results, keyed by ``(rate, clock)``."""

    results: Dict[Tuple[float, str], ExperimentResult]

    def table(self) -> str:
        rows = []
        for (rate, clock), result in sorted(self.results.items()):
            summary = result.summary
            rows.append(
                (
                    f"{rate:.0%}",
                    clock,
                    result.events_broadcast,
                    "-" if summary is None else round(summary.p50, 0),
                    "-" if summary is None else round(summary.p95, 0),
                    result.holes,
                )
            )
        return format_table(
            ["bcast rate", "clock", "events", "p50 delay", "p95 delay", "holes"],
            rows,
        )

    def cdf_series(self) -> Dict[str, List[Tuple[float, float]]]:
        return {
            f"{rate:.0%} bcast {clock}": result.cdf
            for (rate, clock), result in sorted(self.results.items())
        }

    def render(self) -> str:
        return self.table() + "\n\n" + format_cdf_series(self.cdf_series())


@dataclass(frozen=True, slots=True)
class Fig7bResult:
    """System-size sweep results, keyed by ``(n, clock)``."""

    results: Dict[Tuple[int, str], ExperimentResult]

    def table(self) -> str:
        rows = []
        for (n, clock), result in sorted(self.results.items()):
            summary = result.summary
            rows.append(
                (
                    n,
                    clock,
                    result.spec.resolved_ttl(),
                    result.events_broadcast,
                    "-" if summary is None else round(summary.p50, 0),
                    "-" if summary is None else round(summary.p95, 0),
                    result.holes,
                )
            )
        return format_table(
            ["n", "clock", "TTL", "events", "p50 delay", "p95 delay", "holes"],
            rows,
        )

    def cdf_series(self) -> Dict[str, List[Tuple[float, float]]]:
        return {
            f"{n}proc {clock}": result.cdf
            for (n, clock), result in sorted(self.results.items())
        }

    def median_growth_factor(self, clock: str = "global") -> float:
        """Median delay at the largest size over the smallest size.

        The paper's shape check: two orders of magnitude more processes
        should *less than double* the delivery delay.
        """
        sized = sorted(
            (n, result) for (n, c), result in self.results.items() if c == clock
        )
        first, last = sized[0][1].summary, sized[-1][1].summary
        if first is None or last is None:
            return float("nan")
        return last.p50 / first.p50

    def render(self) -> str:
        return self.table() + "\n\n" + format_cdf_series(self.cdf_series())


def run_fig7a(
    scale: ScalePreset | str | None = None,
    clocks: Sequence[str] = ("global", "logical"),
    seed: int = 70,
) -> Fig7aResult:
    """Sweep the broadcast rate at a fixed system size."""
    preset = scale if isinstance(scale, ScalePreset) else get_scale(scale)
    results: Dict[Tuple[float, str], ExperimentResult] = {}
    for clock in clocks:
        for rate in preset.fig7a_rates:
            spec = ExperimentSpec(
                name=f"fig7a-{rate:.0%}-{clock}",
                n=preset.fig7a_n,
                seed=seed,
                clock=clock,
                broadcast_rate=rate,
                broadcast_rounds=preset.fig7a_broadcast_rounds,
            )
            results[(rate, clock)] = run_experiment(spec)
    return Fig7aResult(results=results)


def run_fig7b(
    scale: ScalePreset | str | None = None,
    clocks: Sequence[str] = ("global", "logical"),
    seed: int = 71,
) -> Fig7bResult:
    """Sweep the system size at a fixed broadcast rate."""
    preset = scale if isinstance(scale, ScalePreset) else get_scale(scale)
    results: Dict[Tuple[int, str], ExperimentResult] = {}
    for clock in clocks:
        for n in preset.fig7b_sizes:
            spec = ExperimentSpec(
                name=f"fig7b-{n}-{clock}",
                n=n,
                seed=seed,
                clock=clock,
                broadcast_rate=0.05,
                broadcast_rounds=preset.fig7b_broadcast_rounds,
            )
            results[(n, clock)] = run_experiment(spec)
    return Fig7bResult(results=results)
