"""End-to-end UDP network benchmark (ROADMAP: wire-speed hot path).

Everything else in ``benchmarks/perf`` measures the ordering logic or
serialization in isolation; this experiment measures the actual wire
path — real loopback datagrams, real event-loop wakeups, the batched
syscall layer of :mod:`repro.runtime.batchio` — in two parts:

1. **Fan-out throughput**: node 0 blasts encode-once ``send_many``
   rounds at K peers, batched (best platform tier, one ``sendmmsg``
   per round) vs. unbatched (forced ``sendto``, K syscalls per round).
   The ratio is the direct payoff of syscall batching on the EpTO
   dissemination pattern; on a ``sendmmsg`` platform it must clear
   1.5x (pinned by the committed BENCH_core.json and the CI
   regression check).
2. **Cluster scenarios**: full EpTO clusters over
   :class:`~repro.runtime.udp.UdpNetwork` at several sizes drive a
   broadcast workload to delivery completion — once clean and once
   under a :class:`~repro.faults.schedule.FaultSchedule` (the CLI's
   ``--fault-scenario``, e.g. ``scenarios/standard_drill.json``) —
   recording throughput, syscalls per round, bytes on wire, and the
   paper-style delivery-delay CDF (Figures 5–8 are exactly such CDFs,
   there under PlanetLab latency, here under loopback + injected
   faults).

CLI::

    epto-experiment net-bench
    epto-experiment net-bench --fault-scenario scenarios/standard_drill.json

The delivery verdict (every event delivered everywhere, total order
intact) gates the exit code; timing numbers never do — wall-clock
assertions belong in the committed benchmark JSON, not in CI.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import EpToConfig
from ..faults.schedule import FaultSchedule
from ..metrics.cdf import DelaySummary, cdf_points
from ..runtime import batchio
from ..runtime.cluster import AsyncCluster
from ..runtime.fastloop import ensure_uvloop
from ..runtime.udp import UdpNetwork
from .scale import ScalePreset, get_scale

#: Event payloads per fan-out blast datagram are tiny; what matters is
#: the syscall count, so the blast uses a single-entry ball per round.
_BLAST_FANOUT = 16


@dataclass(slots=True)
class FanoutThroughput:
    """Batched vs unbatched ``send_many`` blast, same bytes, same peers."""

    datagrams: int
    batched_tier: str
    batched_seconds: float
    batched_syscalls: int
    unbatched_seconds: float
    unbatched_syscalls: int
    bytes_per_datagram: int

    @property
    def batched_rate(self) -> float:
        """Datagrams per second through the batched send path."""
        return self.datagrams / self.batched_seconds

    @property
    def unbatched_rate(self) -> float:
        """Datagrams per second through the forced-``sendto`` path."""
        return self.datagrams / self.unbatched_seconds

    @property
    def speedup(self) -> float:
        """Batched over unbatched throughput."""
        return self.unbatched_seconds / self.batched_seconds


@dataclass(slots=True)
class ClusterRun:
    """One EpTO cluster driven to delivery completion over real UDP."""

    n: int
    scenario: str
    events: int
    delivered: bool
    ordered: bool
    seconds: float
    rounds: float
    datagrams_sent: int
    datagrams_delivered: int
    syscalls_send: int
    syscalls_recv: int
    bytes_sent: int
    bytes_received: int
    delays_ms: List[float] = field(repr=False)

    @property
    def events_per_second(self) -> float:
        return self.events / self.seconds if self.seconds > 0 else 0.0

    @property
    def syscalls_per_round(self) -> float:
        """Send syscalls per node-round — the batching headline: K
        datagrams per round cost ~1 syscall batched, K unbatched."""
        node_rounds = self.rounds * self.n
        return self.syscalls_send / node_rounds if node_rounds else 0.0

    @property
    def delay_summary(self) -> Optional[DelaySummary]:
        if not self.delays_ms:
            return None
        return DelaySummary.from_samples(self.delays_ms)

    def delay_cdf(self) -> List[Tuple[float, float]]:
        """Delivery-delay CDF (ms, cumulative %) — the Figures 5–8 curve."""
        return cdf_points(self.delays_ms)


@dataclass(slots=True)
class NetBenchResult:
    """Everything ``epto-experiment net-bench`` reports."""

    fanout: FanoutThroughput
    runs: List[ClusterRun]
    uvloop_active: bool

    @property
    def exit_ok(self) -> bool:
        """Delivery and ordering must hold; timing never gates."""
        return all(run.delivered and run.ordered for run in self.runs)

    def render(self) -> str:
        f = self.fanout
        lines = [
            f"fan-out blast: {f.datagrams} datagrams x "
            f"{f.bytes_per_datagram} B to {_BLAST_FANOUT} peers",
            f"  batched ({f.batched_tier}): "
            f"{f.batched_rate:,.0f} dgram/s, {f.batched_syscalls} syscalls",
            f"  unbatched (asyncio): "
            f"{f.unbatched_rate:,.0f} dgram/s, {f.unbatched_syscalls} syscalls",
            f"  speedup: {f.speedup:.2f}x   uvloop: "
            f"{'on' if self.uvloop_active else 'off'}",
        ]
        for run in self.runs:
            lines.append(
                f"n={run.n} [{run.scenario}] events={run.events} "
                f"delivered={'yes' if run.delivered else 'NO'} "
                f"ordered={'yes' if run.ordered else 'NO'} "
                f"{run.seconds:.2f}s ({run.events_per_second:.1f} ev/s)"
            )
            lines.append(
                f"  wire: {run.datagrams_sent} dgrams out, "
                f"{run.bytes_sent} B sent / {run.bytes_received} B recv, "
                f"{run.syscalls_send} send + {run.syscalls_recv} recv "
                f"syscalls ({run.syscalls_per_round:.2f} send "
                f"syscalls/node-round)"
            )
            summary = run.delay_summary
            if summary is not None:
                lines.append(
                    f"  delay ms: p50={summary.p50:.1f} "
                    f"p95={summary.p95:.1f} p99={summary.p99:.1f} "
                    f"max={summary.maximum:.1f} ({summary.count} samples)"
                )
        verdict = "OK" if self.exit_ok else "FAILED"
        lines.append(f"verdict: {verdict}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Part 1: fan-out throughput
# ----------------------------------------------------------------------


async def _open_blast_net(batch, seed: int):
    """One fabric with node 0 and :data:`_BLAST_FANOUT` warm peers."""
    from repro.core.event import BallEntry, Event, make_ball

    network = UdpNetwork(seed=seed, batch=batch)
    peers = list(range(1, _BLAST_FANOUT + 1))
    for nid in [0] + peers:
        network.register(nid, lambda src, msg: None)
    await network.open_all()
    ball = make_ball(
        [BallEntry(Event(id=(0, 0), ts=1, source_id=0, payload="blast-x"), 4)]
    )
    # Warm up codec buffers and sockaddr caches outside the clock.
    network.send_many(0, peers, ball)
    return network, peers, ball


#: Rounds per timing chunk in the fan-out blast. The two transports
#: alternate in chunks this small so host noise lands on both sides
#: equally -- on a shared box, back-to-back single-shot timings of each
#: side can differ 20% on machine noise alone.
_BLAST_CHUNK = 25

#: Paired passes per blast; each side keeps its best pass. A pass is a
#: full alternating sweep of the round budget, so "best" still compares
#: like with like -- it discards whole noisy sweeps, not lucky chunks.
_BLAST_PASSES = 3


async def _fanout_throughput(rounds: int, seed: int) -> FanoutThroughput:
    """Batched transport vs. the pre-change asyncio-endpoint transport
    (``batch=False``) -- the speedup this layer actually delivers.

    Both fabrics run live at once and the timed send loops alternate in
    :data:`_BLAST_CHUNK`-round chunks (a paired measurement): a load
    spike on the host slows both sides, not whichever happened to be on
    the clock. The whole sweep repeats :data:`_BLAST_PASSES` times with
    a receive-queue drain between passes (a saturated loopback receive
    buffer puts the *sender* in the kernel's drop path, which is ~5x
    slower) and each side reports its best pass. Receive completion is
    otherwise irrelevant here -- the sender is the side on the clock.
    """
    batched_tier = batchio.best_send_tier()
    b_net, b_peers, b_ball = await _open_blast_net("auto", seed)
    u_net, u_peers, u_ball = await _open_blast_net(False, seed)
    reps = max(1, rounds // _BLAST_CHUNK)
    b_elapsed = u_elapsed = float("inf")
    b_syscalls = u_syscalls = dgram_bytes = 0
    datagrams = reps * _BLAST_CHUNK * _BLAST_FANOUT
    for _ in range(_BLAST_PASSES):
        b_sys0 = b_net.stats.syscalls_send
        u_sys0 = u_net.stats.syscalls_send
        b_bytes0 = b_net.stats.bytes_sent
        b_pass = u_pass = 0.0
        for _ in range(reps):
            start = time.perf_counter()
            for _ in range(_BLAST_CHUNK):
                b_net.send_many(0, b_peers, b_ball)
            b_pass += time.perf_counter() - start
            start = time.perf_counter()
            for _ in range(_BLAST_CHUNK):
                u_net.send_many(0, u_peers, u_ball)
            u_pass += time.perf_counter() - start
        b_elapsed = min(b_elapsed, b_pass)
        u_elapsed = min(u_elapsed, u_pass)
        # Per-pass counts are deterministic; record one pass's worth so
        # the reported syscalls line up with the reported datagrams.
        b_syscalls = b_net.stats.syscalls_send - b_sys0
        u_syscalls = u_net.stats.syscalls_send - u_sys0
        dgram_bytes = (b_net.stats.bytes_sent - b_bytes0) // max(1, datagrams)
        # Drain both fabrics' receive queues before the next pass.
        for _ in range(30):
            await asyncio.sleep(0.004)
    await b_net.close()
    await u_net.close()
    return FanoutThroughput(
        datagrams=datagrams,
        batched_tier=batched_tier,
        batched_seconds=b_elapsed,
        batched_syscalls=b_syscalls,
        unbatched_seconds=u_elapsed,
        unbatched_syscalls=u_syscalls,
        bytes_per_datagram=dgram_bytes,
    )


# ----------------------------------------------------------------------
# Part 2: cluster scenarios
# ----------------------------------------------------------------------


def _cluster_config(n: int) -> EpToConfig:
    """Miniature-but-honest EpTO parameters for a loopback cluster."""
    fanout = max(3, min(6, n // 3))
    return EpToConfig(
        fanout=fanout, ttl=2 * fanout, round_interval=20, clock="logical"
    )


async def _cluster_run(
    n: int,
    events: int,
    seed: int,
    schedule: Optional[FaultSchedule],
    scenario: str,
    timeout: float = 30.0,
) -> ClusterRun:
    config = _cluster_config(n)
    network = UdpNetwork(seed=seed)
    cluster = AsyncCluster(config, network=network, seed=seed)
    loop = asyncio.get_running_loop()
    broadcast_at: Dict[object, float] = {}
    delays_ms: List[float] = []

    def on_deliver(event) -> None:
        origin = broadcast_at.get(event.payload)
        if origin is not None:
            delays_ms.append((loop.time() - origin) * 1000.0)

    for _ in range(n):
        cluster.add_node(on_deliver=on_deliver)
    await network.open_all()
    cluster.start_all()

    injector_task = None
    if schedule is not None:
        from ..faults.runtime_injector import AsyncFaultInjector

        injector = AsyncFaultInjector(cluster, schedule, seed=seed)
        injector_task = asyncio.create_task(injector.run())

    start = time.perf_counter()
    interval_s = config.round_interval / 1000.0
    for i in range(events):
        payload = f"net-bench-{i}"
        broadcast_at[payload] = loop.time()
        cluster.nodes[i % n].broadcast(payload)
        # Spread the workload over rounds like a real broadcast source.
        await asyncio.sleep(interval_s / 2)
    delivered = await cluster.wait_for_deliveries(events, timeout=timeout)
    seconds = time.perf_counter() - start
    if injector_task is not None:
        await injector_task
    # Let in-flight timers and the last balls settle before teardown.
    await asyncio.sleep(2 * interval_s)
    sequences = cluster.delivery_payload_sequences()
    await cluster.stop_all()
    await network.close()

    live_orders = {
        tuple(seq) for node_id, seq in sequences.items() if len(seq) >= events
    }
    stats = network.stats
    return ClusterRun(
        n=n,
        scenario=scenario,
        events=events,
        delivered=delivered,
        ordered=len(live_orders) == 1,
        seconds=seconds,
        rounds=seconds / interval_s,
        datagrams_sent=stats.sent,
        datagrams_delivered=stats.delivered,
        syscalls_send=stats.syscalls_send,
        syscalls_recv=stats.syscalls_recv,
        bytes_sent=stats.bytes_sent,
        bytes_received=stats.bytes_received,
        delays_ms=delays_ms,
    )


def run_net_bench(
    scale: ScalePreset | str | None = None,
    seed: int = 23,
    schedule: Optional[FaultSchedule] = None,
    sizes: Optional[Sequence[int]] = None,
    events: Optional[int] = None,
    blast_rounds: int = 400,
) -> NetBenchResult:
    """Run the ``udp_e2e`` benchmark family end to end.

    Args:
        scale: Size preset; governs cluster sizes and workload volume.
        seed: Base seed for fabric faults and node randomness.
        schedule: Optional fault scenario driven against **every**
            cluster size *in addition to* the clean runs (the CLI's
            ``--fault-scenario``).
        sizes: Override the preset's cluster sizes.
        events: Override the preset's broadcasts per run.
        blast_rounds: Fan-out rounds in the throughput blast.
    """
    preset = get_scale(scale) if not isinstance(scale, ScalePreset) else scale
    sizes = tuple(sizes if sizes is not None else preset.net_bench_sizes)
    events = int(events if events is not None else preset.net_bench_events)
    uvloop_active = ensure_uvloop()

    async def go() -> NetBenchResult:
        fanout = await _fanout_throughput(blast_rounds, seed)
        runs: List[ClusterRun] = []
        for n in sizes:
            runs.append(
                await _cluster_run(n, events, seed, None, scenario="clean")
            )
            if schedule is not None:
                runs.append(
                    await _cluster_run(n, events, seed, schedule, scenario="faults")
                )
        return NetBenchResult(fanout=fanout, runs=runs, uvloop_active=uvloop_active)

    return asyncio.run(go())
