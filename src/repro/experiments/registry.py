"""Experiment registry: one entry per paper table/figure (DESIGN.md §3)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from .ablations import (
    run_ablation_fanout,
    run_ablation_guards,
    run_ablation_phase,
    run_ablation_ttl,
    run_empirical_bounds,
)
from .drill import run_drill
from .fig3_bounds import run_fig3
from .fig5_latency import run_fig5
from .fig6_baseline import run_fig6
from .fig7_scalability import run_fig7a, run_fig7b
from .fig7b_flat import run_fig7b_flat
from .fig8_churn import run_fig8
from .fig9_cyclon import run_fig9
from .fig10_loss import run_fig10
from .lazy_bench import run_lazy_bench
from .net_bench import run_net_bench
from .service_bench import run_service_bench
from .service_drill import run_service_drill


@dataclass(frozen=True, slots=True)
class ExperimentEntry:
    """One reproducible paper artifact or ablation."""

    id: str
    description: str
    runner: Callable[..., object]
    takes_scale: bool = True
    #: Accepts a ``schedule=`` FaultSchedule (CLI ``--fault-scenario``).
    takes_faults: bool = False
    #: Accepts a ``sync=`` bool enabling anti-entropy (CLI ``--sync``).
    takes_sync: bool = False
    #: Accepts an ``auth=`` bool enabling HMAC event authentication
    #: (CLI ``--auth``).
    takes_auth: bool = False


_ENTRIES = [
    ExperimentEntry(
        id="fig3",
        description="Figure 3a/3b — analytic hole-probability upper bounds",
        runner=run_fig3,
        takes_scale=False,
    ),
    ExperimentEntry(
        id="fig5",
        description="Figure 5 — PlanetLab latency distribution (synthetic fit)",
        runner=run_fig5,
        takes_scale=False,
    ),
    ExperimentEntry(
        id="fig6",
        description="Figure 6 — ordering cost vs unordered baseline",
        runner=run_fig6,
    ),
    ExperimentEntry(
        id="fig7a",
        description="Figure 7a — broadcast-rate sweep",
        runner=run_fig7a,
    ),
    ExperimentEntry(
        id="fig7b",
        description="Figure 7b — system-size sweep",
        runner=run_fig7b,
    ),
    ExperimentEntry(
        id="fig7b-flat",
        description=(
            "Figure 7b — system-size sweep on the flat engine "
            "(paper-scale n; stats recording; budgeted workload)"
        ),
        runner=run_fig7b_flat,
    ),
    ExperimentEntry(
        id="fig8",
        description="Figure 8 — churn sweep (idealized PSS)",
        runner=run_fig8,
    ),
    ExperimentEntry(
        id="fig9",
        description="Figure 9 — churn sweep (Cyclon PSS)",
        runner=run_fig9,
    ),
    ExperimentEntry(
        id="fig10",
        description="Figure 10 — message-loss sweep",
        runner=run_fig10,
    ),
    ExperimentEntry(
        id="ablation-ttl",
        description="A1 — TTL sensitivity (§6's conservative bound)",
        runner=run_ablation_ttl,
    ),
    ExperimentEntry(
        id="ablation-fanout",
        description="A2 — fanout starvation (Lemma 7's K-vs-rounds trade)",
        runner=run_ablation_fanout,
    ),
    ExperimentEntry(
        id="ablation-phase",
        description="A3 — synchronized vs staggered round phases",
        runner=run_ablation_phase,
    ),
    ExperimentEntry(
        id="ablation-guards",
        description="A4 — ordering guards vs Pbcast-style delivery (§7)",
        runner=run_ablation_guards,
    ),
    ExperimentEntry(
        id="ablation-empirical",
        description="A5 — empirical hole probability vs the Figure 3 bound (§8.1)",
        runner=run_empirical_bounds,
        takes_scale=False,
    ),
    ExperimentEntry(
        id="drill",
        description=(
            "Fault drill — scenario file vs journaled cluster with "
            "durable same-id recovery"
        ),
        runner=run_drill,
        takes_faults=True,
        takes_sync=True,
        takes_auth=True,
    ),
    ExperimentEntry(
        id="net-bench",
        description=(
            "udp_e2e — loopback UDP clusters end to end: batched "
            "fan-out throughput, syscalls/round, delivery-delay CDFs"
        ),
        runner=run_net_bench,
        takes_faults=True,
    ),
    ExperimentEntry(
        id="service-bench",
        description=(
            "service_bench — T topics multiplexed over one socket/timer "
            "per host vs T independent single-topic clusters "
            "(cross-topic envelope batching, docs/SERVICE.md)"
        ),
        runner=run_service_bench,
    ),
    ExperimentEntry(
        id="lazy-bench",
        description=(
            "lazy_bench — eager vs lazy-push dissemination at equal "
            "workload: payload bytes-on-wire speedup vs delivery-delay "
            "penalty (docs/OVERLAY.md)"
        ),
        runner=run_lazy_bench,
    ),
    ExperimentEntry(
        id="service-drill",
        description=(
            "Multi-topic fault drill — per-topic partitions/loss and "
            "host-level crash/respawn over shared sockets "
            "(scenarios/multi_topic_drill.json)"
        ),
        runner=run_service_drill,
        takes_scale=False,
    ),
]

#: Experiment id -> entry.
REGISTRY: Dict[str, ExperimentEntry] = {entry.id: entry for entry in _ENTRIES}


def get_experiment(experiment_id: str) -> ExperimentEntry:
    """Look up an experiment by its DESIGN.md id (e.g. ``"fig6"``)."""
    try:
        return REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(REGISTRY)}"
        ) from None
