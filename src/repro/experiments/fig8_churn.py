"""Figure 8 reproduction: delivery delay under churn (idealized PSS).

Subjects the system to churn by removing and adding ``churnRate``
percent of the nodes every ``delta`` ticks during the broadcast window,
with the idealized uniform-view PSS (failed nodes disappear from views
immediately). Expected shapes: "the impact of churn on the delivery
delay is small for most processes" with a heavier tail, and — crucially
— zero holes among the processes that remained in the system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..metrics.report import format_cdf_series, format_table
from .common import ExperimentResult, ExperimentSpec, run_experiment
from .scale import ScalePreset, get_scale


@dataclass(frozen=True, slots=True)
class ChurnSweepResult:
    """Churn sweep results keyed by churn rate (shared with Figure 9)."""

    results: Dict[float, ExperimentResult]
    pss: str

    def table(self) -> str:
        rows = []
        for rate, result in sorted(self.results.items()):
            summary = result.summary
            rows.append(
                (
                    f"{rate:g}",
                    result.stable_nodes,
                    result.events_broadcast,
                    "-" if summary is None else round(summary.p50, 0),
                    "-" if summary is None else round(summary.p95, 0),
                    result.holes,
                )
            )
        return format_table(
            ["churn", "stable nodes", "events", "p50 delay", "p95 delay", "holes"],
            rows,
        )

    def cdf_series(self) -> Dict[str, List[Tuple[float, float]]]:
        return {
            f"{rate:g} churn": result.cdf
            for rate, result in sorted(self.results.items())
        }

    def render(self) -> str:
        return (
            f"PSS: {self.pss}\n"
            + self.table()
            + "\n\n"
            + format_cdf_series(self.cdf_series())
        )


def run_churn_sweep(
    pss: str,
    scale: ScalePreset | str | None = None,
    rates: Sequence[float] | None = None,
    seed: int = 8,
) -> ChurnSweepResult:
    """Shared driver for Figures 8 (uniform PSS) and 9 (Cyclon)."""
    preset = scale if isinstance(scale, ScalePreset) else get_scale(scale)
    if rates is None:
        rates = preset.sweep_rates
    warmup = preset.cyclon_warmup_rounds if pss == "cyclon" else 0
    results: Dict[float, ExperimentResult] = {}
    for rate in rates:
        spec = ExperimentSpec(
            name=f"fig-churn-{pss}-{rate:g}",
            n=preset.sweep_n,
            seed=seed,
            clock="global",
            broadcast_rate=0.05,
            broadcast_rounds=preset.sweep_broadcast_rounds,
            churn_rate=rate,
            pss=pss,
            warmup_rounds=warmup,
        )
        results[rate] = run_experiment(spec)
    return ChurnSweepResult(results=results, pss=pss)


def run_fig8(
    scale: ScalePreset | str | None = None, seed: int = 8
) -> ChurnSweepResult:
    """Figure 8: churn sweep with the idealized uniform-view PSS."""
    return run_churn_sweep("uniform", scale=scale, seed=seed)
