"""Figure 5 reproduction: the end-to-end latency distribution.

The paper's experiments draw latencies from a PlanetLab sample with
mean ≈ 157, standard deviation ≈ 119 and 5th/50th/95th percentiles of
15, 125 and 366 simulator ticks. We validate that our synthetic
:class:`~repro.sim.latency.PlanetLabLatency` model reproduces those
summary statistics (the only information the paper publishes about the
trace) and emit its CDF for visual comparison with the figure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from ..metrics.cdf import DelaySummary, cdf_points
from ..metrics.report import format_table
from ..sim.latency import PlanetLabLatency

#: The paper's published statistics for the trace.
PAPER_MEAN = 157.0
PAPER_STD = 119.0
PAPER_P5 = 15.0
PAPER_P50 = 125.0
PAPER_P95 = 366.0


@dataclass(frozen=True, slots=True)
class Fig5Result:
    """Synthetic-trace statistics and CDF."""

    summary: DelaySummary
    cdf: List[Tuple[float, float]]

    def table(self) -> str:
        """Paper-vs-measured comparison of the published statistics."""
        rows = [
            ("mean", PAPER_MEAN, round(self.summary.mean, 1)),
            ("std", PAPER_STD, round(self.summary.std, 1)),
            ("p5", PAPER_P5, round(self.summary.p5, 1)),
            ("p50", PAPER_P50, round(self.summary.p50, 1)),
            ("p95", PAPER_P95, round(self.summary.p95, 1)),
        ]
        return format_table(["statistic", "paper", "synthetic"], rows)


def run_fig5(draws: int = 50000, seed: int = 5) -> Fig5Result:
    """Sample the synthetic PlanetLab model and summarize it."""
    model = PlanetLabLatency()
    rng = random.Random(seed)
    samples = [model.sample(rng, 0, 1) for _ in range(draws)]
    return Fig5Result(
        summary=DelaySummary.from_samples(samples),
        cdf=cdf_points(samples),
    )
