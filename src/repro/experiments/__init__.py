"""Per-figure experiment drivers reproducing the paper's evaluation."""

from .ablations import (
    EmpiricalBoundsResult,
    FanoutAblationResult,
    GuardAblationResult,
    PhaseAblationResult,
    TtlAblationResult,
    run_ablation_fanout,
    run_ablation_guards,
    run_ablation_phase,
    run_ablation_ttl,
    run_empirical_bounds,
)
from .common import ExperimentResult, ExperimentSpec, run_experiment, run_sweep
from .fig3_bounds import Fig3Result, run_fig3
from .fig5_latency import Fig5Result, run_fig5
from .fig6_baseline import Fig6Result, run_fig6
from .fig7_scalability import Fig7aResult, Fig7bResult, run_fig7a, run_fig7b
from .fig7b_flat import Fig7bFlatResult, Fig7bFlatRow, run_fig7b_flat
from .fig8_churn import ChurnSweepResult, run_churn_sweep, run_fig8
from .fig9_cyclon import run_fig9
from .fig10_loss import Fig10Result, run_fig10
from .registry import REGISTRY, ExperimentEntry, get_experiment
from .scale import PAPER, SMALL, ScalePreset, get_scale

__all__ = [
    "ChurnSweepResult",
    "EmpiricalBoundsResult",
    "ExperimentEntry",
    "ExperimentResult",
    "ExperimentSpec",
    "FanoutAblationResult",
    "GuardAblationResult",
    "PhaseAblationResult",
    "TtlAblationResult",
    "Fig10Result",
    "Fig3Result",
    "Fig5Result",
    "Fig6Result",
    "Fig7aResult",
    "Fig7bFlatResult",
    "Fig7bFlatRow",
    "Fig7bResult",
    "PAPER",
    "REGISTRY",
    "SMALL",
    "ScalePreset",
    "get_experiment",
    "get_scale",
    "run_ablation_fanout",
    "run_ablation_guards",
    "run_ablation_phase",
    "run_ablation_ttl",
    "run_churn_sweep",
    "run_empirical_bounds",
    "run_experiment",
    "run_fig10",
    "run_fig3",
    "run_fig5",
    "run_fig6",
    "run_fig7a",
    "run_fig7b",
    "run_fig7b_flat",
    "run_fig8",
    "run_fig9",
    "run_sweep",
]
