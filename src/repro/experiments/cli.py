"""Command-line entry point: ``epto-experiment <figure-id>``.

Runs one paper artifact and prints the same rows/series the paper
plots. Example::

    epto-experiment fig6 --scale small
    epto-experiment fig3
    REPRO_SCALE=paper epto-experiment fig7b
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .registry import REGISTRY, get_experiment
from .scale import get_scale


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="epto-experiment",
        description="Reproduce one EpTO paper figure/table.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(REGISTRY),
        help="experiment id from DESIGN.md (e.g. fig6)",
    )
    parser.add_argument(
        "--scale",
        choices=("small", "paper"),
        default=None,
        help="size preset (default: $REPRO_SCALE or 'small')",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the experiment's default seed",
    )
    parser.add_argument(
        "--fault-scenario",
        metavar="PATH",
        default=None,
        help=(
            "JSON FaultSchedule scenario file (fault-aware experiments "
            "like 'drill' only)"
        ),
    )
    parser.add_argument(
        "--sync",
        action="store_true",
        help=(
            "enable the anti-entropy catch-up protocol (sync-aware "
            "experiments like 'drill' only; see docs/SYNC.md)"
        ),
    )
    parser.add_argument(
        "--auth",
        action="store_true",
        help=(
            "authenticate ball entries with per-node HMAC keys "
            "(auth-aware experiments like 'drill' only; see "
            "docs/SECURITY.md)"
        ),
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    entry = get_experiment(args.experiment)
    print(f"# {entry.id}: {entry.description}")

    kwargs: dict[str, object] = {}
    if entry.takes_scale:
        kwargs["scale"] = get_scale(args.scale)
    if args.seed is not None and entry.id != "ablation-guards":
        kwargs["seed"] = args.seed
    if args.fault_scenario is not None:
        if not entry.takes_faults:
            parser_error = (
                f"experiment {entry.id!r} does not take --fault-scenario"
            )
            print(parser_error, file=sys.stderr)
            return 2
        from pathlib import Path

        from ..faults.schedule import FaultSchedule

        kwargs["schedule"] = FaultSchedule.from_json(
            Path(args.fault_scenario).read_text(encoding="utf-8")
        )
    if args.sync:
        if not entry.takes_sync:
            print(
                f"experiment {entry.id!r} does not take --sync",
                file=sys.stderr,
            )
            return 2
        kwargs["sync"] = True
    if args.auth:
        if not entry.takes_auth:
            print(
                f"experiment {entry.id!r} does not take --auth",
                file=sys.stderr,
            )
            return 2
        kwargs["auth"] = True

    result = entry.runner(**kwargs)
    if hasattr(result, "render"):
        print(result.render())
    elif hasattr(result, "table"):
        print(result.table())
    else:  # pragma: no cover - all current results render
        print(result)
    # Results that carry a verdict (e.g. the drill's safety/convergence
    # checks) gate the exit code so CI can fail on violations.
    return 0 if getattr(result, "exit_ok", True) else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
