"""Seed (pre-optimization) ordering component, preserved verbatim.

This module freezes the original O(|received|)-per-round implementation
of Algorithm 2 exactly as it shipped before the hot-path rework in
:mod:`repro.core.ordering`: every round it re-ages every pending record
and rescans the whole ``received`` map for deliverability and for the
minimum queued order key.

It exists for two reasons:

* the randomized **equivalence suite** proves the optimized component
  delivers bit-identical sequences (including §8.2 tagged deliveries)
  to this reference across adversarial ball schedules;
* the **perf harness** (``benchmarks/perf``) times both components on
  the same workload so every PR records the speedup trajectory in
  ``BENCH_core.json``.

Do not "fix" or optimize this file — its value is being the unchanged
seed semantics. Behavioural bugs found here should be fixed in
:mod:`repro.core.ordering` and surfaced by the equivalence suite.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Iterable, List, Optional

from .clock import StabilityOracle
from .errors import OrderingInvariantError
from .event import Ball, BallEntry, Event, EventId, OrderKey
from .ordering import OrderingStats

#: Signature of the application delivery callback.
DeliverCallback = Callable[[Event], None]

#: Order key strictly below every real key (real timestamps are >= 0).
_MINUS_INFINITY_KEY: OrderKey = (-1, -1, -1)


@dataclass(slots=True)
class _EagerRecord:
    """The seed's mutable record: TTL aged in place every round."""

    event: Event
    ttl: int

    def age(self) -> None:
        self.ttl += 1

    def merge_ttl(self, other_ttl: int) -> None:
        if other_ttl > self.ttl:
            self.ttl = other_ttl

    def to_entry(self) -> BallEntry:
        return BallEntry(self.event, self.ttl)


class BaselineOrderingComponent:
    """Per-process ordering state machine — the seed implementation.

    Same constructor surface and observable behaviour as
    :class:`repro.core.ordering.OrderingComponent`; kept only as the
    reference/benchmark twin (see module docstring).
    """

    def __init__(
        self,
        oracle: StabilityOracle,
        deliver: DeliverCallback,
        deliver_out_of_order: DeliverCallback | None = None,
    ) -> None:
        self.oracle = oracle
        self.deliver = deliver
        self.deliver_out_of_order = deliver_out_of_order
        self.stats = OrderingStats()
        # received: known but not yet delivered events.
        self._received: dict[EventId, _EagerRecord] = {}
        # Recently delivered ids; entries expire once no further copy
        # of the event can arrive.
        self._delivered_ids: set[EventId] = set()
        self._delivered_expiry: Deque[tuple[int, EventId]] = deque()
        self._last_delivered_key: OrderKey = _MINUS_INFINITY_KEY
        # Tagged-delivery dedup (§8.2).
        self._tagged_ids: set[EventId] = set()
        self._tagged_expiry: Deque[tuple[int, EventId]] = deque()

    @property
    def received_count(self) -> int:
        """Number of known-but-undelivered events."""
        return len(self._received)

    @property
    def last_delivered_key(self) -> OrderKey:
        """Order key of the most recently delivered event."""
        return self._last_delivered_key

    def pending_records(self) -> Iterable[_EagerRecord]:
        """Snapshot of the received-but-undelivered records."""
        return list(self._received.values())

    def is_delivered(self, event_id: EventId) -> bool:
        """Whether *event_id* was delivered within the retention window."""
        return event_id in self._delivered_ids

    def order_events(self, ball: Ball) -> None:
        """Run one ordering round over *ball* (Algorithm 2, seed form)."""
        self.stats.rounds += 1
        received = self._received
        self._expire_tagged()
        self._prune_delivered()

        # Lines 6-7: age every previously received event.
        for record in received.values():
            record.age()

        # Lines 8-14: merge the ball into `received`.
        for entry in ball:
            event = entry.event
            if event.id in self._delivered_ids:
                self.stats.discarded_duplicates += 1
                continue
            if event.order_key <= self._last_delivered_key:
                # Delivering now would violate total order (line 9).
                self._handle_late_event(event)
                continue
            record = received.get(event.id)
            if record is not None:
                record.merge_ttl(entry.ttl)
            else:
                received[event.id] = _EagerRecord(event, entry.ttl)

        if not received:
            return

        # Lines 15-21: split received into deliverable / queued and find
        # the smallest order key among the non-deliverable ones.
        is_deliverable = self.oracle.is_deliverable
        deliverable: list[_EagerRecord] = []
        min_queued_key: Optional[OrderKey] = None
        for record in received.values():
            if is_deliverable(record):
                deliverable.append(record)
            else:
                key = record.event.order_key
                if min_queued_key is None or key < min_queued_key:
                    min_queued_key = key

        if not deliverable:
            return

        # Lines 22-26: an event ordered after any still-queued event
        # cannot be delivered yet.
        if min_queued_key is not None:
            deliverable = [
                record
                for record in deliverable
                if record.event.order_key < min_queued_key
            ]

        # Lines 27-30: deliver in total order.
        deliverable.sort(key=lambda record: record.event.order_key)
        for record in deliverable:
            event = record.event
            del received[event.id]
            self._mark_delivered(event)
            self.deliver(event)
            self.stats.delivered += 1

    def _handle_late_event(self, event: Event) -> None:
        self.stats.discarded_late += 1
        if self.deliver_out_of_order is not None and event.id not in self._tagged_ids:
            self._tagged_ids.add(event.id)
            self._tagged_expiry.append((self.stats.rounds, event.id))
            self.stats.tagged_out_of_order += 1
            self.deliver_out_of_order(event)

    def _expire_tagged(self) -> None:
        horizon = self.stats.rounds - (2 * self.oracle.ttl + 2)
        expiry = self._tagged_expiry
        while expiry and expiry[0][0] < horizon:
            _, event_id = expiry.popleft()
            self._tagged_ids.discard(event_id)

    def _mark_delivered(self, event: Event) -> None:
        key = event.order_key
        if key <= self._last_delivered_key:
            raise OrderingInvariantError(
                f"delivery of {event!r} (key {key}) would not advance the "
                f"last delivered key {self._last_delivered_key}"
            )
        self._last_delivered_key = key
        self._delivered_ids.add(event.id)
        self._delivered_expiry.append((self.stats.rounds, event.id))

    def _prune_delivered(self) -> None:
        horizon = self.stats.rounds - (2 * self.oracle.ttl + 2)
        expiry = self._delivered_expiry
        while expiry and expiry[0][0] < horizon:
            _, event_id = expiry.popleft()
            self._delivered_ids.discard(event_id)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BaselineOrderingComponent(received={len(self._received)}, "
            f"delivered={self.stats.delivered}, "
            f"last_key={self._last_delivered_key})"
        )
