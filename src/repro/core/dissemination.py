"""EpTO dissemination component (paper Algorithm 1).

Relays events epidemically using the balls-and-bins scheme of
Koldehofe [19]: every round, the set of events heard during the round
(``nextBall``) is shipped to ``K`` uniformly random peers, and incoming
events keep being relayed until their TTL reaches the configured bound.

The component is driven by three entry points, mirroring the paper's
three atomic procedures:

* :meth:`DisseminationComponent.broadcast` — ``EpTO-broadcast(event)``,
* :meth:`DisseminationComponent.receive_ball` — ``upon receive BALL``,
* :meth:`DisseminationComponent.round_tick` — the periodic task
  executed every ``delta`` time units.

One deliberate refinement relative to the pseudocode: Algorithm 1
guards the *whole* round body — including the ``orderEvents`` call —
behind ``nextBall != empty``. Read literally, a process that stops
hearing traffic would never age its received events and would never
deliver them, violating validity in an otherwise quiet network. Known
EpTO implementations invoke the ordering component every round; we do
the same and only guard the *network send* on a non-empty ball (the
aging in Algorithm 2 lines 6–7 must tick every round). See DESIGN.md.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Callable

from .clock import StabilityOracle
from .config import EpToConfig
from .event import (
    Ball,
    BallEntry,
    Event,
    EventId,
    EventIdGenerator,
    EventRecord,
    make_ball,
)
from .interfaces import PeerSampler, Transport


#: Estimated wire bytes of one ball entry's metadata — the codec's
#: fixed per-entry layout (ts i64 + source i64 + seq i64 + ttl i32 +
#: payload_len u32; :data:`repro.runtime.codec._BALL_ENTRY`). The
#: simulator has no real wire, so byte accounting uses the codec's
#: sizes: what the UDP fabric *would* have shipped.
ENTRY_METADATA_BYTES = 32


def payload_nbytes(payload: Any) -> int:
    """Estimated wire bytes of one event payload (JSON, as the codec
    ships it); non-JSON payloads fall back to their ``repr`` length so
    simulation-only object payloads still account as *something*."""
    try:
        return len(json.dumps(payload).encode())
    except (TypeError, ValueError):
        return len(repr(payload).encode())


@dataclass(slots=True)
class DisseminationStats:
    """Counters exposed for instrumentation and experiments.

    ``metadata_bytes`` / ``payload_bytes`` split the estimated
    bytes-on-wire of every ball this component shipped into the fixed
    per-entry metadata layout and the serialized payloads — the split
    the eager-vs-lazy ablation (``epto-experiment lazy-bench``)
    compares across modes. In lazy mode the component ships metadata
    balls, so its own payload estimate stays near zero and the pull
    traffic is accounted by :class:`repro.lazy.LazyStats` instead.
    """

    events_broadcast: int = 0
    balls_sent: int = 0
    balls_received: int = 0
    entries_received: int = 0
    entries_relayed: int = 0
    entries_expired: int = 0
    rounds: int = 0
    #: Estimated fixed-layout bytes shipped (per entry, per receiver).
    metadata_bytes: int = 0
    #: Estimated serialized-payload bytes shipped (per entry, per receiver).
    payload_bytes: int = 0


class DisseminationComponent:
    """Per-process dissemination state machine (Algorithm 1).

    Args:
        node_id: Identifier of the owning process.
        config: Shared deployment configuration (fanout, TTL, ...).
        oracle: Stability oracle supplying ``get_clock`` /
            ``update_clock`` (Algorithm 3 or 4).
        peer_sampler: Source of uniformly random peer ids (the PSS).
        transport: Outgoing message channel.
        order_events: Callback into the ordering component, invoked
            once per round with the round's ball
            (:meth:`repro.core.ordering.OrderingComponent.order_events`).
        rng: Randomness source for peer selection; defaults to a fresh
            unseeded generator (simulations pass a seeded one).
    """

    def __init__(
        self,
        node_id: int,
        config: EpToConfig,
        oracle: StabilityOracle,
        peer_sampler: PeerSampler,
        transport: Transport,
        order_events: Callable[[Ball], None],
        rng: random.Random | None = None,
    ) -> None:
        self.node_id = node_id
        self.config = config
        self.oracle = oracle
        self.peer_sampler = peer_sampler
        self.transport = transport
        self.order_events = order_events
        self.rng = rng if rng is not None else random.Random()
        self.stats = DisseminationStats()
        self._id_generator = EventIdGenerator(node_id)
        # nextBall: events to relay next round, keyed by event id.
        self._next_ball: dict[EventId, EventRecord] = {}
        # Only logical clocks react to update_clock; skip the per-entry
        # call entirely for global clocks (hot path at scale).
        self._clock_needs_updates = config.clock == "logical"
        # Fan-out path: transports offering send_many ship one ball to
        # all K peers in a single call (encode-once on wire fabrics);
        # plain transports get K individual send calls.
        self._send_many = getattr(transport, "send_many", None)

    @property
    def next_ball_size(self) -> int:
        """Number of events queued for relay next round."""
        return len(self._next_ball)

    def broadcast(self, payload: Any = None) -> Event:
        """EpTO-broadcast a new event (Algorithm 1 lines 6–10).

        Stamps the event with the local clock, gives it TTL 0 and
        queues it in ``nextBall`` for relay at the next round tick.

        Returns:
            The freshly created :class:`~repro.core.event.Event`, so
            callers can track its id / order key.
        """
        event = Event(
            id=self._id_generator.next_id(),
            ts=self.oracle.get_clock(),
            source_id=self.node_id,
            payload=payload,
        )
        self._next_ball[event.id] = EventRecord(event, ttl=0)
        self.stats.events_broadcast += 1
        return event

    def receive_ball(self, ball: Ball) -> None:
        """Handle an incoming ball (Algorithm 1 lines 11–19).

        Events still within their TTL are merged into ``nextBall`` for
        further relaying, keeping the largest TTL when the event is
        already queued (avoiding excessive retransmission). Events at
        or past the TTL are *not* relayed — by then they have been in
        the system long enough to have reached everyone w.h.p.

        Note the expired events are dropped entirely: they do not reach
        the ordering component either, exactly as in the pseudocode
        where ``orderEvents`` only ever sees ``nextBall``.
        """
        self.stats.balls_received += 1
        ttl_bound = self.config.ttl
        next_ball = self._next_ball
        for entry in ball:
            self.stats.entries_received += 1
            if entry.ttl >= ttl_bound:
                self.stats.entries_expired += 1
            else:
                record = next_ball.get(entry.event.id)
                if record is not None:
                    record.merge_ttl(entry.ttl)
                else:
                    next_ball[entry.event.id] = EventRecord(entry.event, entry.ttl)
            if self._clock_needs_updates:
                self.oracle.update_clock(entry.event.ts)

    def round_tick(self) -> None:
        """Execute one relay round (Algorithm 1 lines 20–28).

        Ages every queued event, ships the resulting ball to ``K``
        random peers, feeds it to the ordering component, and resets
        ``nextBall``. The ball object is immutable, so a single
        instance is shared among all ``K`` receivers.
        """
        self.stats.rounds += 1
        next_ball = self._next_ball
        if next_ball:
            # Age + snapshot fused: a nextBall record lives exactly one
            # round, so ``ttl + 1`` lands directly in the shipped entry
            # instead of mutating records that are discarded below.
            ball = make_ball(
                BallEntry(record.event, record.ttl + 1)
                for record in next_ball.values()
            )
            peers = self.peer_sampler.sample(self.config.fanout)
            if self._send_many is not None:
                self._send_many(self.node_id, peers, ball)
            else:
                for peer in peers:
                    self.transport.send(self.node_id, peer, ball)
            self.stats.balls_sent += len(peers)
            self.stats.entries_relayed += len(ball) * len(peers)
            fan = len(peers)
            self.stats.metadata_bytes += ENTRY_METADATA_BYTES * len(ball) * fan
            self.stats.payload_bytes += fan * sum(
                payload_nbytes(entry.event.payload) for entry in ball
            )
        else:
            ball = ()
        # Refinement: order/age every round, not only on non-empty
        # balls (see module docstring).
        self.order_events(ball)
        self._next_ball = {}

    def resume_sequence(self, next_seq: int) -> None:
        """Fast-forward the event-id sequence (same-identity restart)."""
        self._id_generator.resume(next_seq)

    @property
    def issued_sequence(self) -> int:
        """Event ids issued so far (restart handover point)."""
        return self._id_generator.issued

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DisseminationComponent(node={self.node_id}, "
            f"queued={len(self._next_ball)}, rounds={self.stats.rounds})"
        )
