"""Stability oracles: global clock (Algorithm 3) and logical clock (Algorithm 4).

The stability oracle answers three questions for the EpTO components:

* ``get_clock()`` — timestamp to stamp on a freshly broadcast event;
* ``update_clock(ts)`` — observe the timestamp of a received event
  (a no-op for the global clock, a Lamport merge for the logical one);
* ``is_deliverable(record)`` — has this event been relayed long enough
  (``ttl > TTL``) that, with high probability, every correct process
  has received it?

The paper first presents the algorithm with a *global clock* (e.g. GPS
or atomic clocks as used by Spanner) purely for didactic purposes, then
relaxes it to plain Lamport scalar clocks at the cost of doubling the
TTL (paper §5.1, Lemma 4). Both oracles share the ``ttl > TTL``
stability rule; they differ only in how timestamps are produced and
merged, and in the TTL value the deployment should configure (see
:mod:`repro.core.params`).
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

from .errors import ConfigurationError
from .event import EventRecord


@runtime_checkable
class StabilityOracle(Protocol):
    """Interface between the EpTO components and the notion of time.

    Implementations must be cheap: ``is_deliverable`` is called for
    every received-but-undelivered event on every round.
    """

    ttl: int

    def is_deliverable(self, record: EventRecord) -> bool:
        """Return ``True`` once *record* is stable (``ttl > TTL``)."""
        ...

    def get_clock(self) -> int:
        """Return the timestamp for a new broadcast."""
        ...

    def update_clock(self, ts: int) -> None:
        """Observe a received event's timestamp."""
        ...


def _check_ttl(ttl: int) -> int:
    if ttl < 1:
        raise ConfigurationError(f"TTL must be >= 1, got {ttl}")
    return ttl


class GlobalClockOracle:
    """Stability oracle backed by a global clock (paper Algorithm 3).

    Args:
        ttl: Number of relay rounds after which an event is considered
            stable. See :func:`repro.core.params.min_ttl`.
        time_source: Zero-argument callable returning the current global
            time (e.g. ``simulator.now`` or a wall-clock sampler).
    """

    def __init__(self, ttl: int, time_source: Callable[[], int]) -> None:
        self.ttl = _check_ttl(ttl)
        self._time_source = time_source

    def is_deliverable(self, record: EventRecord) -> bool:
        """An event is stable once it has aged strictly past the TTL."""
        return record.ttl > self.ttl

    def get_clock(self) -> int:
        """Read the global clock (Algorithm 3, ``getClock``)."""
        return int(self._time_source())

    def update_clock(self, ts: int) -> None:
        """Nothing to do with a global clock (Algorithm 3)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GlobalClockOracle(ttl={self.ttl})"


class LogicalClockOracle:
    """Stability oracle backed by a Lamport scalar clock (Algorithm 4).

    The local clock is incremented on every broadcast and merged
    (``max``) with the timestamp of every received event. Remember that
    deployments using logical time must double the TTL relative to the
    global-clock bound (paper Lemma 4) to absorb concurrency holes such
    as the one in paper Figure 4.

    Args:
        ttl: Stability threshold in rounds — pass the *doubled* value
            from :func:`repro.core.params.min_ttl` with
            ``clock="logical"``.
        initial: Starting value of the logical clock (paper uses 0; the
            Figure 4 walkthrough starts at 1).
    """

    def __init__(self, ttl: int, initial: int = 0) -> None:
        self.ttl = _check_ttl(ttl)
        if initial < 0:
            raise ConfigurationError(f"initial clock must be >= 0, got {initial}")
        self._logical_clock = initial

    @property
    def logical_clock(self) -> int:
        """Current value of the Lamport clock (read-only)."""
        return self._logical_clock

    def is_deliverable(self, record: EventRecord) -> bool:
        """An event is stable once it has aged strictly past the TTL."""
        return record.ttl > self.ttl

    def get_clock(self) -> int:
        """Increment then return the clock (Algorithm 4, ``getClock``)."""
        self._logical_clock += 1
        return self._logical_clock

    def update_clock(self, ts: int) -> None:
        """Fast-forward the clock to *ts* if it is ahead (Algorithm 4)."""
        if ts > self._logical_clock:
            self._logical_clock = ts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LogicalClockOracle(ttl={self.ttl}, clock={self._logical_clock})"
        )


def make_oracle(
    clock: str,
    ttl: int,
    time_source: Callable[[], int] | None = None,
) -> StabilityOracle:
    """Build a stability oracle by name.

    Args:
        clock: ``"global"`` (Algorithm 3) or ``"logical"`` (Algorithm 4).
        ttl: Stability threshold in rounds, already adjusted for the
            clock type (callers typically obtain it from
            :func:`repro.core.params.min_ttl`).
        time_source: Required for the global clock; ignored otherwise.

    Raises:
        ConfigurationError: On an unknown clock name or a missing
            ``time_source`` for the global clock.
    """
    if clock == "global":
        if time_source is None:
            raise ConfigurationError("global clock oracle requires a time_source")
        return GlobalClockOracle(ttl, time_source)
    if clock == "logical":
        return LogicalClockOracle(ttl)
    raise ConfigurationError(f"unknown clock type {clock!r}; use 'global' or 'logical'")
