"""Parameter derivation for EpTO (paper Theorem 2 and Lemmas 3–7).

EpTO has two tunables:

* the **fanout** ``K`` — to how many uniformly random peers each
  process relays its ball every round, and
* the **TTL** — for how many rounds each event is relayed (and aged
  before it may be delivered).

The paper derives lower bounds for both from the balls-and-bins gossip
analysis of Koldehofe [19]:

* Theorem 2 / Lemma 3: ``K >= ceil(2e * ln n / ln ln n)`` and
  ``TTL >= ceil((c + 1) * log2 n)`` with ``c > 1`` give probabilistic
  agreement — every process receives every event with probability
  ``1 - O(n^-(c+1))``.
* Lemma 4 (logical time): double the TTL.
* Lemma 5 (process drift bounded by ``delta_min <= delta <= delta_max``):
  multiply the TTL by ``delta_max / delta_min``.
* Lemma 6 (network latency below the round duration): add one round.
* Lemma 7 (churn ``alpha`` processes per round, message loss rate
  ``epsilon``): inflate the fanout by ``(n / (n - alpha)) / (1 - eps)``.

Paper §6 notes the bounds are conservative: with ``n = 100`` the
analysis gives TTL = 15 but in simulations TTL = 5 still delivered every
event in total order. The helpers below expose the exact bound; callers
are free to pass smaller values to explore the slack (see
``benchmarks/test_ablation_ttl.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .errors import ConfigurationError

#: Default safety constant ``c`` of Theorem 2. ``c`` must exceed 1; the
#: paper's headline configuration (TTL = 15 at n = 100) corresponds to
#: ``c = 1.25`` since ``ceil(2.25 * log2(100)) = 15``.
DEFAULT_C = 1.25


def min_fanout(n: int, churn_rate: float = 0.0, loss_rate: float = 0.0) -> int:
    """Minimum fanout ``K`` per Theorem 2, adjusted per Lemma 7.

    Args:
        n: System size (number of processes). Must be >= 2.
        churn_rate: Fraction of processes replaced each round
            (``alpha / n`` in the paper's notation), in ``[0, 1)``.
        loss_rate: Message loss probability ``epsilon`` in ``[0, 1)``.

    Returns:
        ``ceil(2e * ln n / ln ln n * 1/(1 - churn) * 1/(1 - loss))``,
        capped at ``n - 1`` (a process cannot usefully gossip to more
        distinct peers than exist).

    Raises:
        ConfigurationError: On out-of-range arguments.
    """
    if n < 2:
        raise ConfigurationError(f"system size must be >= 2, got {n}")
    if not 0.0 <= churn_rate < 1.0:
        raise ConfigurationError(f"churn_rate must be in [0, 1), got {churn_rate}")
    if not 0.0 <= loss_rate < 1.0:
        raise ConfigurationError(f"loss_rate must be in [0, 1), got {loss_rate}")

    # ln ln n is <= 0 for n <= e; the asymptotic bound is meaningless at
    # such tiny sizes, so fall back to full fanout (everyone).
    if n <= 3:
        return n - 1

    base = 2.0 * math.e * math.log(n) / math.log(math.log(n))
    # Lemma 7: alpha processes churn per round => factor n / (n - alpha)
    # = 1 / (1 - churn_rate); loss epsilon => factor 1 / (1 - eps).
    adjusted = base / (1.0 - churn_rate) / (1.0 - loss_rate)
    return min(n - 1, math.ceil(adjusted))


def min_ttl(
    n: int,
    c: float = DEFAULT_C,
    clock: str = "global",
    latency_bounded_by_round: bool = False,
    drift_ratio: float = 1.0,
) -> int:
    """Minimum TTL per Lemma 3, adjusted per Lemmas 4–6.

    Args:
        n: System size. Must be >= 2.
        c: Safety constant of Theorem 2 (must be > 1). Larger ``c``
            drives the hole probability down polynomially
            (``O(n^-(c+1))``) at linear TTL cost.
        clock: ``"global"`` (Lemma 3) or ``"logical"`` (Lemma 4 —
            doubles the round count to absorb concurrency holes).
        latency_bounded_by_round: Apply Lemma 6's ``+1`` round for
            networks whose latency is below the round duration ``delta``.
        drift_ratio: ``delta_max / delta_min`` bound on relative round
            duration drift (Lemma 5). ``1.0`` means no drift.

    Returns:
        The smallest integer TTL satisfying the relevant lemma.

    Raises:
        ConfigurationError: On out-of-range arguments.
    """
    if n < 2:
        raise ConfigurationError(f"system size must be >= 2, got {n}")
    if c <= 1.0:
        raise ConfigurationError(f"Theorem 2 requires c > 1, got {c}")
    if drift_ratio < 1.0:
        raise ConfigurationError(
            f"drift_ratio is delta_max/delta_min and must be >= 1, got {drift_ratio}"
        )
    if clock not in ("global", "logical"):
        raise ConfigurationError(f"unknown clock type {clock!r}")

    rounds = math.ceil((c + 1.0) * math.log2(n))
    if clock == "logical":
        rounds *= 2  # Lemma 4
    rounds = math.ceil(rounds * drift_ratio)  # Lemma 5
    if latency_bounded_by_round:
        rounds += 1  # Lemma 6
    return rounds


@dataclass(frozen=True, slots=True)
class DerivedParameters:
    """Fanout and TTL derived from a deployment description.

    Produced by :func:`derive_parameters`; immutable so a configuration
    can be logged and reused verbatim across runs.
    """

    n: int
    fanout: int
    ttl: int
    c: float
    clock: str
    churn_rate: float
    loss_rate: float
    drift_ratio: float
    latency_bounded_by_round: bool

    def hole_probability_bound(self) -> float:
        """Theorem 2 upper bound ``O(n^-(c+1))`` on a per-process hole.

        Returns the concrete bound ``(1 - 1/n) ** (c * n * log2 n)``
        used for paper Figure 3a (see
        :func:`repro.analysis.bounds.p_hole_fixed_process`).
        """
        # Local import to keep core free of an analysis dependency at
        # module import time.
        from ..analysis.bounds import p_hole_fixed_process

        return p_hole_fixed_process(self.n, self.c)


def derive_parameters(
    n: int,
    c: float = DEFAULT_C,
    clock: str = "global",
    churn_rate: float = 0.0,
    loss_rate: float = 0.0,
    drift_ratio: float = 1.0,
    latency_bounded_by_round: bool = False,
) -> DerivedParameters:
    """Derive a full ``(fanout, TTL)`` pair for a deployment.

    Convenience wrapper combining :func:`min_fanout` and
    :func:`min_ttl`; see those functions for argument semantics.
    """
    return DerivedParameters(
        n=n,
        fanout=min_fanout(n, churn_rate=churn_rate, loss_rate=loss_rate),
        ttl=min_ttl(
            n,
            c=c,
            clock=clock,
            latency_bounded_by_round=latency_bounded_by_round,
            drift_ratio=drift_ratio,
        ),
        c=c,
        clock=clock,
        churn_rate=churn_rate,
        loss_rate=loss_rate,
        drift_ratio=drift_ratio,
        latency_bounded_by_round=latency_bounded_by_round,
    )
