"""EpTO core: the paper's primary contribution.

Public surface of the algorithm itself — events, stability oracles,
the dissemination and ordering components, parameter derivation, and
the wired :class:`EpToProcess`.
"""

from .clock import GlobalClockOracle, LogicalClockOracle, StabilityOracle, make_oracle
from .config import EpToConfig
from .delivery import (
    DeliveryLog,
    StabilityEstimate,
    StabilityEstimator,
    TaggedEvent,
)
from .dissemination import DisseminationComponent, DisseminationStats
from .errors import (
    ConfigurationError,
    MembershipError,
    OrderingInvariantError,
    ReproError,
    SimulationError,
    TransportError,
)
from .event import (
    Ball,
    BallEntry,
    Event,
    EventId,
    EventIdGenerator,
    EventRecord,
    OrderKey,
    ball_event_ids,
    make_ball,
)
from .interfaces import PeerSampler, Transport
from .ordering import OrderingComponent, OrderingStats
from .params import (
    DEFAULT_C,
    DerivedParameters,
    derive_parameters,
    min_fanout,
    min_ttl,
)
from .process import EpToProcess

__all__ = [
    "Ball",
    "BallEntry",
    "ConfigurationError",
    "DEFAULT_C",
    "DeliveryLog",
    "DerivedParameters",
    "DisseminationComponent",
    "DisseminationStats",
    "EpToConfig",
    "EpToProcess",
    "Event",
    "EventId",
    "EventIdGenerator",
    "EventRecord",
    "GlobalClockOracle",
    "LogicalClockOracle",
    "MembershipError",
    "OrderKey",
    "OrderingComponent",
    "OrderingInvariantError",
    "OrderingStats",
    "PeerSampler",
    "ReproError",
    "SimulationError",
    "StabilityEstimate",
    "StabilityEstimator",
    "StabilityOracle",
    "TaggedEvent",
    "Transport",
    "TransportError",
    "ball_event_ids",
    "derive_parameters",
    "make_ball",
    "make_oracle",
    "min_fanout",
    "min_ttl",
]
