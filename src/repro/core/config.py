"""Configuration object shared by every EpTO process in a deployment."""

from __future__ import annotations

from dataclasses import dataclass, replace

from .errors import ConfigurationError
from .params import DEFAULT_C, min_fanout, min_ttl


@dataclass(frozen=True, slots=True)
class EpToConfig:
    """Static configuration of an EpTO process.

    Attributes:
        fanout: Number of peers each ball is relayed to per round
            (``K`` in the paper).
        ttl: Number of rounds events are relayed and aged before they
            become stable (``TTL`` in the paper). Deployments with
            logical clocks must pass the doubled Lemma 4 value.
        round_interval: Round period ``delta`` in time units (simulator
            ticks or seconds, depending on the runtime).
        clock: ``"global"`` or ``"logical"`` — which stability oracle
            the process should instantiate.
        tagged_delivery: Enable the paper §8.2 extension: events that
            would be dropped because their delivery would violate total
            order are instead handed to the application tagged as
            out-of-order, via a dedicated callback.
        expose_stability: Enable the paper §8.4 extension: the process
            exposes, for each known-but-undelivered event, an estimate
            of its probability of being stable (see
            :meth:`repro.core.process.EpToProcess.peek`).
        mode: ``"eager"`` (paper default: balls carry full payloads) or
            ``"lazy"`` (balls carry event metadata only; payloads are
            pulled on demand — :mod:`repro.lazy`, docs/OVERLAY.md).
            The ordering semantics are identical in both modes; lazy
            mode trades a bounded delivery-delay penalty for an O(K)
            reduction in payload bytes on the wire.
    """

    fanout: int
    ttl: int
    round_interval: int = 125
    clock: str = "global"
    tagged_delivery: bool = False
    expose_stability: bool = False
    mode: str = "eager"

    def __post_init__(self) -> None:
        if self.fanout < 1:
            raise ConfigurationError(f"fanout must be >= 1, got {self.fanout}")
        if self.ttl < 1:
            raise ConfigurationError(f"ttl must be >= 1, got {self.ttl}")
        if self.round_interval <= 0:
            raise ConfigurationError(
                f"round_interval must be > 0, got {self.round_interval}"
            )
        if self.clock not in ("global", "logical"):
            raise ConfigurationError(f"unknown clock type {self.clock!r}")
        if self.mode not in ("eager", "lazy"):
            raise ConfigurationError(f"unknown dissemination mode {self.mode!r}")

    def with_overrides(self, **changes: object) -> "EpToConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]

    @classmethod
    def for_system_size(
        cls,
        n: int,
        c: float = DEFAULT_C,
        clock: str = "global",
        round_interval: int = 125,
        churn_rate: float = 0.0,
        loss_rate: float = 0.0,
        drift_ratio: float = 1.0,
        latency_bounded_by_round: bool = False,
        **extra: object,
    ) -> "EpToConfig":
        """Build a config from the paper's theoretical bounds.

        Computes ``fanout`` via Theorem 2/Lemma 7 and ``ttl`` via
        Lemmas 3–6 for a system of *n* processes. Additional keyword
        arguments (``tagged_delivery``, ``expose_stability``) are
        forwarded verbatim.
        """
        return cls(
            fanout=min_fanout(n, churn_rate=churn_rate, loss_rate=loss_rate),
            ttl=min_ttl(
                n,
                c=c,
                clock=clock,
                latency_bounded_by_round=latency_bounded_by_round,
                drift_ratio=drift_ratio,
            ),
            round_interval=round_interval,
            clock=clock,
            **extra,  # type: ignore[arg-type]
        )
