"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so callers
can catch everything raised by this package with a single handler while
still being able to discriminate specific failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent configuration value was supplied.

    Raised eagerly at construction time (fail fast) rather than deep
    inside a simulation run, e.g. a non-positive fanout, a TTL below 1,
    or a round interval that is not a positive number of ticks.
    """


class MembershipError(ReproError):
    """A membership operation referenced an unknown or duplicate node."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state.

    For example scheduling an action in the past, or running a
    simulation whose event queue grows without bound past the configured
    safety horizon.
    """


class TransportError(ReproError):
    """A message could not be handed to the transport layer."""


class FaultInjectionError(ReproError):
    """A fault schedule or injector was misused.

    Raised eagerly when a schedule is malformed (negative times, empty
    crash target, out-of-range rates) or when an interpreter is asked
    to apply an action its fabric cannot express (e.g. a latency spike
    on real UDP sockets). Never raised by the faults themselves — an
    injected fault must look exactly like the real failure it models.
    """


class StorageError(ReproError):
    """Durable storage was misused or irrecoverably inconsistent.

    Raised for caller errors (writing to a closed log, an invalid fsync
    policy, a snapshot state that cannot be serialized) — never for the
    disk corruption the subsystem is built to absorb: a torn final
    record or a CRC-mismatched segment makes the reader *stop at the
    last valid entry* and report it, because crashing on the very
    artifact of the crash being recovered from would defeat recovery.
    """


class AuthError(ReproError):
    """Event authentication was misconfigured or misused.

    Raised for caller errors (asking a :class:`repro.auth.KeyRing` for
    a revoked identity's signing key, rotating an unknown node) — never
    for a *failed verification*: a bad or missing signature on received
    data is an expected hostile-world condition, reported through
    verdicts and counters so the receiving node keeps running.
    """


class OrderingInvariantError(ReproError):
    """An internal total-order invariant was violated.

    This error indicates a bug in the library (or deliberately corrupted
    state in a test), never an expected runtime condition: EpTO
    guarantees total order *deterministically*, so a violation must
    abort loudly instead of delivering out of order.
    """
