"""Delivery-side extensions of EpTO (paper §8.2 and §8.4).

* **Tagged delivery** (§8.2) — wired in
  :class:`repro.core.ordering.OrderingComponent` via the
  ``deliver_out_of_order`` callback; this module provides
  :class:`TaggedEvent` and :class:`DeliveryLog`, small conveniences to
  consume both in-order and tagged streams.

* **Delivery tradeoffs** (§8.4) — the application may *peek* at
  received-but-undelivered events together with an estimate of their
  probability of being stable, and decide to act early on events that
  are, say, 99% likely to have reached a majority. The estimate derives
  from the balls-and-bins growth model underlying Theorem 2 (see
  :class:`StabilityEstimator`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, List, Sequence

from .errors import ConfigurationError
from .event import Event, EventRecord


@dataclass(frozen=True, slots=True)
class TaggedEvent:
    """An event delivered outside the total order (§8.2).

    Attributes:
        event: The late event itself.
        in_order: Always ``False`` for tagged deliveries; present so
            mixed streams can be filtered uniformly.
    """

    event: Event
    in_order: bool = False


@dataclass(frozen=True, slots=True)
class StabilityEstimate:
    """Stability information for one pending event (§8.4).

    Attributes:
        event: The pending event.
        ttl: How many rounds the event has aged locally.
        probability_stable: Estimated probability that every correct
            process has received the event by now.
        expected_coverage: Estimated fraction of processes that have
            received the event by now (useful for "a majority is
            enough" application policies).
    """

    event: Event
    ttl: int
    probability_stable: float
    expected_coverage: float


class StabilityEstimator:
    """Estimates event stability from the balls-and-bins growth model.

    The dissemination of one event is an epidemic: starting from one
    infected process, each round every infected process throws ``K``
    balls at uniformly random bins. The expected number of infected
    processes follows the standard recurrence::

        i_{t+1} = n - (n - i_t) * (1 - 1/n) ** (K * i_t)

    from which we derive, after ``t`` rounds,

    * ``expected_coverage = i_t / n``, and
    * ``probability_stable ~= (1 - 1/n) ** balls_thrown`` complemented
      and raised to the union bound over processes — the same machinery
      as paper Figure 3.

    The per-TTL curves are precomputed once per (n, K) pair, so lookups
    during a run are O(1).

    Args:
        n: System size.
        fanout: Gossip fanout ``K``.
        max_rounds: Horizon to precompute (defaults to a generous
            multiple of ``log2 n``).
    """

    def __init__(self, n: int, fanout: int, max_rounds: int | None = None) -> None:
        if n < 2:
            raise ConfigurationError(f"system size must be >= 2, got {n}")
        if fanout < 1:
            raise ConfigurationError(f"fanout must be >= 1, got {fanout}")
        self.n = n
        self.fanout = fanout
        if max_rounds is None:
            max_rounds = max(8, 6 * math.ceil(math.log2(n)) + 4)
        self.max_rounds = max_rounds
        self._coverage: List[float] = []
        self._p_stable: List[float] = []
        self._precompute()

    def _precompute(self) -> None:
        n = float(self.n)
        keep = 1.0 - 1.0 / n
        infected = 1.0
        balls = 0.0
        for _ in range(self.max_rounds + 1):
            self._coverage.append(infected / n)
            # P(fixed process missed every ball) -> union bound over
            # the n - 1 other processes.
            p_missed = keep**balls
            p_any_missed = min(1.0, (n - 1.0) * p_missed)
            self._p_stable.append(max(0.0, 1.0 - p_any_missed))
            thrown = self.fanout * infected
            balls += thrown
            infected = n - (n - infected) * keep**thrown

    def coverage_after(self, rounds: int) -> float:
        """Expected fraction of processes reached after *rounds*."""
        if rounds < 0:
            return 0.0
        idx = min(rounds, self.max_rounds)
        return self._coverage[idx]

    def probability_stable(self, rounds: int) -> float:
        """Estimated P(every process has the event) after *rounds*."""
        if rounds < 0:
            return 0.0
        idx = min(rounds, self.max_rounds)
        return self._p_stable[idx]

    def estimate(self, record: EventRecord) -> StabilityEstimate:
        """Build a :class:`StabilityEstimate` for a pending record."""
        return StabilityEstimate(
            event=record.event,
            ttl=record.ttl,
            probability_stable=self.probability_stable(record.ttl),
            expected_coverage=self.coverage_after(record.ttl),
        )

    def estimate_all(
        self, records: Sequence[EventRecord] | List[EventRecord]
    ) -> List[StabilityEstimate]:
        """Estimate every record, sorted by descending stability."""
        estimates = [self.estimate(record) for record in records]
        estimates.sort(key=lambda e: (-e.probability_stable, e.event.order_key))
        return estimates


@dataclass(slots=True)
class DeliveryLog:
    """Collects a process's delivery stream for inspection.

    Handy in applications and tests: register :meth:`on_deliver` (and
    optionally :meth:`on_out_of_order`) as the process callbacks and
    read back the ordered history.
    """

    ordered: List[Event] = field(default_factory=list)
    tagged: List[TaggedEvent] = field(default_factory=list)

    def on_deliver(self, event: Event) -> None:
        """Record an in-order delivery."""
        self.ordered.append(event)

    def on_out_of_order(self, event: Event) -> None:
        """Record a tagged (out-of-order) delivery."""
        self.tagged.append(TaggedEvent(event))

    @property
    def payloads(self) -> List[Any]:
        """Payloads of the in-order stream, in delivery order."""
        return [event.payload for event in self.ordered]

    def __len__(self) -> int:
        return len(self.ordered)
