"""A complete EpTO process: both components wired together (paper Fig. 2).

:class:`EpToProcess` glues the dissemination component (Algorithm 1),
the ordering component (Algorithm 2) and a stability oracle
(Algorithm 3 or 4) behind the two primitives of the Total Order
specification: ``EpTO-broadcast`` (:meth:`EpToProcess.broadcast`) and
``EpTO-deliver`` (the ``on_deliver`` callback).

The process is runtime-agnostic. Whatever hosts it — the discrete-event
simulator or the asyncio runtime — must:

* call :meth:`EpToProcess.on_ball` when a ball arrives from the
  network, and
* call :meth:`EpToProcess.on_round` every ``config.round_interval``
  time units.
"""

from __future__ import annotations

import random
from typing import Any, Callable, List

from .clock import StabilityOracle, make_oracle
from .config import EpToConfig
from .delivery import StabilityEstimate, StabilityEstimator
from .dissemination import DisseminationComponent
from .errors import ConfigurationError
from .event import Ball, Event
from .interfaces import PeerSampler, Transport
from .ordering import OrderingComponent


class EpToProcess:
    """One EpTO participant (paper Figure 2 architecture).

    Args:
        node_id: Unique identifier of this process.
        config: Deployment configuration (fanout, TTL, clock, ...).
        peer_sampler: Peer sampling service view.
        transport: Outgoing message channel.
        on_deliver: ``EpTO-deliver`` callback — receives every event in
            total order.
        on_out_of_order: Optional §8.2 tagged-delivery callback (only
            honoured when ``config.tagged_delivery`` is set).
        time_source: Current-time callable; required when
            ``config.clock == "global"``.
        rng: Randomness for peer selection; pass a seeded generator for
            reproducible simulations.
        oracle: Pre-built stability oracle; overrides ``config.clock``
            and ``time_source`` when supplied (used by tests to inject
            custom oracles).
        system_size_hint: Expected system size ``n``; only needed when
            ``config.expose_stability`` is set, to parameterize the
            §8.4 stability estimator.
    """

    def __init__(
        self,
        node_id: int,
        config: EpToConfig,
        peer_sampler: PeerSampler,
        transport: Transport,
        on_deliver: Callable[[Event], None],
        on_out_of_order: Callable[[Event], None] | None = None,
        time_source: Callable[[], int] | None = None,
        rng: random.Random | None = None,
        oracle: StabilityOracle | None = None,
        system_size_hint: int | None = None,
    ) -> None:
        self.node_id = node_id
        self.config = config
        if oracle is None:
            oracle = make_oracle(config.clock, config.ttl, time_source)
        self.oracle = oracle

        if config.tagged_delivery and on_out_of_order is None:
            raise ConfigurationError(
                "tagged_delivery is enabled but no on_out_of_order callback given"
            )
        tagged_callback = on_out_of_order if config.tagged_delivery else None

        self.ordering = OrderingComponent(
            oracle=self.oracle,
            deliver=on_deliver,
            deliver_out_of_order=tagged_callback,
        )
        self.dissemination = DisseminationComponent(
            node_id=node_id,
            config=config,
            oracle=self.oracle,
            peer_sampler=peer_sampler,
            transport=transport,
            order_events=self.ordering.order_events,
            rng=rng,
        )

        self._estimator: StabilityEstimator | None = None
        if config.expose_stability:
            if system_size_hint is None:
                raise ConfigurationError(
                    "expose_stability requires system_size_hint to size the "
                    "balls-and-bins estimator"
                )
            self._estimator = StabilityEstimator(system_size_hint, config.fanout)

    # ------------------------------------------------------------------
    # Total order primitives
    # ------------------------------------------------------------------

    def broadcast(self, payload: Any = None) -> Event:
        """EpTO-broadcast *payload*; returns the wrapping event."""
        return self.dissemination.broadcast(payload)

    def on_ball(self, ball: Ball) -> None:
        """Network entry point: a ball arrived for this process."""
        self.dissemination.receive_ball(ball)

    def on_round(self) -> None:
        """Timer entry point: one round (``delta`` time units) elapsed."""
        self.dissemination.round_tick()

    def resume_sequence(self, next_seq: int) -> None:
        """Fast-forward the broadcast sequence counter (crash recovery).

        A process restarted under the same identity must never reissue
        a ``(source, seq)`` event id its previous incarnation already
        used; the hosting runtime calls this with the predecessor's
        issued count before the replacement broadcasts anything.
        """
        self.dissemination.resume_sequence(next_seq)

    # ------------------------------------------------------------------
    # Introspection and §8.4 extension
    # ------------------------------------------------------------------

    def peek(self) -> List[StabilityEstimate]:
        """Expose pending events with stability estimates (§8.4).

        Returns known-but-undelivered events annotated with the
        estimated probability that they are stable and the expected
        fraction of processes that already received them, most-stable
        first. Requires ``config.expose_stability``.

        Raises:
            ConfigurationError: If the extension is disabled.
        """
        if self._estimator is None:
            raise ConfigurationError(
                "peek() requires EpToConfig.expose_stability=True"
            )
        return self._estimator.estimate_all(list(self.ordering.pending_records()))

    @property
    def pending_count(self) -> int:
        """Number of received-but-undelivered events."""
        return self.ordering.received_count

    @property
    def delivered_count(self) -> int:
        """Number of events delivered in total order so far."""
        return self.ordering.stats.delivered

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EpToProcess(id={self.node_id}, clock={self.config.clock}, "
            f"pending={self.pending_count}, delivered={self.delivered_count})"
        )
