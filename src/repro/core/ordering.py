"""EpTO ordering component (paper Algorithm 2).

Moves events from the ``received`` map to the ``delivered`` set while
preserving total order. An event may be delivered once:

1. the stability oracle deems it deliverable (it has been relayed for
   more than TTL rounds, so w.h.p. every correct process knows it), and
2. no *non-deliverable* event in ``received`` precedes it in the total
   order — otherwise delivering it now could forever block that earlier
   event (a total-order violation).

Refinements relative to the pseudocode (argued in DESIGN.md):

* **Tie-safe discards.** Algorithm 2 line 9 discards events with
  ``ts < lastDeliveredTs`` and the final sort breaks ties by source id.
  Comparing timestamps alone can admit an event that ties on ``ts`` but
  precedes the last delivered event on the tie-breaker. We track the
  full order key ``(ts, source_id, seq)`` of the last delivered event
  and compare lexicographically, which strictly strengthens safety.
* **Bounded memory.** The paper's ``delivered`` set grows forever. A
  copy of an event can only keep arriving while the event is still
  being relayed somewhere, i.e. for O(TTL) rounds after delivery, so
  ids older than a generous ``2*TTL + 2``-round window are forgotten.
  Late copies beyond the window are still rejected by the order-key
  test; the window additionally guarantees the §8.2 tagged channel
  never re-surfaces an event that was already delivered in order.
* **Every-round invocation.** ``order_events`` is called each round
  even with an empty ball so received events keep aging (see
  :mod:`repro.core.dissemination`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Iterable, List, Optional

from .clock import StabilityOracle
from .errors import OrderingInvariantError
from .event import Ball, Event, EventId, EventRecord, OrderKey

#: Signature of the application delivery callback.
DeliverCallback = Callable[[Event], None]

#: Order key strictly below every real key (real timestamps are >= 0).
_MINUS_INFINITY_KEY: OrderKey = (-1, -1, -1)


@dataclass(slots=True)
class OrderingStats:
    """Counters exposed for instrumentation and experiments."""

    delivered: int = 0
    discarded_duplicates: int = 0
    discarded_late: int = 0
    tagged_out_of_order: int = 0
    rounds: int = 0


class OrderingComponent:
    """Per-process ordering state machine (Algorithm 2).

    Args:
        oracle: Stability oracle (``isDeliverable``).
        deliver: Callback receiving each event, in total order.
        deliver_out_of_order: Optional callback for the paper §8.2
            *tagged delivery* extension — events whose in-order
            delivery is no longer possible are handed over tagged as
            out-of-order instead of being silently dropped. ``None``
            disables the extension (the paper's base behaviour).
    """

    def __init__(
        self,
        oracle: StabilityOracle,
        deliver: DeliverCallback,
        deliver_out_of_order: DeliverCallback | None = None,
    ) -> None:
        self.oracle = oracle
        self.deliver = deliver
        self.deliver_out_of_order = deliver_out_of_order
        self.stats = OrderingStats()
        # received: known but not yet delivered events.
        self._received: dict[EventId, EventRecord] = {}
        # Recently delivered ids; entries expire once no further copy
        # of the event can arrive (see module docstring).
        self._delivered_ids: set[EventId] = set()
        self._delivered_expiry: Deque[tuple[int, EventId]] = deque()
        self._last_delivered_key: OrderKey = _MINUS_INFINITY_KEY
        # Tagged-delivery dedup (§8.2): remember recently tagged ids so
        # further copies of the same late event are not re-tagged. A
        # copy can only keep arriving while the event is still being
        # relayed, i.e. for O(TTL) more rounds, so entries expire after
        # a generous multiple of the oracle's TTL.
        self._tagged_ids: set[EventId] = set()
        self._tagged_expiry: Deque[tuple[int, EventId]] = deque()

    # ------------------------------------------------------------------
    # Introspection helpers (used by tests, metrics and the §8.4
    # stability-exposure extension).
    # ------------------------------------------------------------------

    @property
    def received_count(self) -> int:
        """Number of known-but-undelivered events."""
        return len(self._received)

    @property
    def last_delivered_key(self) -> OrderKey:
        """Order key of the most recently delivered event."""
        return self._last_delivered_key

    def pending_records(self) -> Iterable[EventRecord]:
        """Snapshot of the received-but-undelivered records."""
        return list(self._received.values())

    def is_delivered(self, event_id: EventId) -> bool:
        """Whether *event_id* was delivered within the retention window.

        Ids older than the ``2*TTL + 2``-round window are forgotten
        (their copies can no longer arrive); such ids report ``False``
        here but are still rejected by the order-key test.
        """
        return event_id in self._delivered_ids

    # ------------------------------------------------------------------
    # Algorithm 2
    # ------------------------------------------------------------------

    def order_events(self, ball: Ball) -> None:
        """Run one ordering round over *ball* (Algorithm 2).

        Called once per round by the dissemination component with the
        ball relayed this round (possibly empty).
        """
        self.stats.rounds += 1
        received = self._received
        self._expire_tagged()
        self._prune_delivered()

        # Lines 6-7: age every previously received event.
        for record in received.values():
            record.age()

        # Lines 8-14: merge the ball into `received`.
        for entry in ball:
            event = entry.event
            if event.id in self._delivered_ids:
                self.stats.discarded_duplicates += 1
                continue
            if event.order_key <= self._last_delivered_key:
                # Delivering now would violate total order (line 9).
                self._handle_late_event(event)
                continue
            record = received.get(event.id)
            if record is not None:
                record.merge_ttl(entry.ttl)
            else:
                received[event.id] = EventRecord(event, entry.ttl)

        if not received:
            return

        # Lines 15-21: split received into deliverable / queued and find
        # the smallest order key among the non-deliverable ones.
        is_deliverable = self.oracle.is_deliverable
        deliverable: list[EventRecord] = []
        min_queued_key: Optional[OrderKey] = None
        for record in received.values():
            if is_deliverable(record):
                deliverable.append(record)
            else:
                key = record.event.order_key
                if min_queued_key is None or key < min_queued_key:
                    min_queued_key = key

        if not deliverable:
            return

        # Lines 22-26: an event ordered after any still-queued event
        # cannot be delivered yet without risking a total order
        # violation once that queued event stabilizes.
        if min_queued_key is not None:
            deliverable = [
                record
                for record in deliverable
                if record.event.order_key < min_queued_key
            ]

        # Lines 27-30: deliver in total order.
        deliverable.sort(key=lambda record: record.event.order_key)
        for record in deliverable:
            event = record.event
            del received[event.id]
            self._mark_delivered(event)
            self.deliver(event)
            self.stats.delivered += 1

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _handle_late_event(self, event: Event) -> None:
        """Deal with an event whose in-order delivery window has passed.

        Base EpTO silently drops it; with the §8.2 extension enabled the
        event is delivered tagged as out-of-order so perturbed processes
        still observe the payload. Tagged deliveries are deduplicated:
        each late event is handed over at most once.
        """
        self.stats.discarded_late += 1
        if self.deliver_out_of_order is not None and event.id not in self._tagged_ids:
            self._tagged_ids.add(event.id)
            self._tagged_expiry.append((self.stats.rounds, event.id))
            self.stats.tagged_out_of_order += 1
            self.deliver_out_of_order(event)

    def _expire_tagged(self) -> None:
        """Forget tagged ids old enough that no further copy can arrive."""
        horizon = self.stats.rounds - (2 * self.oracle.ttl + 2)
        expiry = self._tagged_expiry
        while expiry and expiry[0][0] < horizon:
            _, event_id = expiry.popleft()
            self._tagged_ids.discard(event_id)

    def _mark_delivered(self, event: Event) -> None:
        """Record a delivery, enforcing and advancing the order mark."""
        key = event.order_key
        if key <= self._last_delivered_key:
            raise OrderingInvariantError(
                f"delivery of {event!r} (key {key}) would not advance the "
                f"last delivered key {self._last_delivered_key}"
            )
        self._last_delivered_key = key
        self._delivered_ids.add(event.id)
        self._delivered_expiry.append((self.stats.rounds, event.id))

    def _prune_delivered(self) -> None:
        """Forget delivered ids once no further copy can arrive.

        An event stops circulating at most TTL relay rounds after its
        creation; a ``2*TTL + 2``-round retention window (matching the
        tagged-dedup window and covering cross-process round skew)
        therefore keeps every id that could still be duplicated while
        bounding memory by the recent delivery rate.
        """
        horizon = self.stats.rounds - (2 * self.oracle.ttl + 2)
        expiry = self._delivered_expiry
        while expiry and expiry[0][0] < horizon:
            _, event_id = expiry.popleft()
            self._delivered_ids.discard(event_id)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OrderingComponent(received={len(self._received)}, "
            f"delivered={self.stats.delivered}, "
            f"last_key={self._last_delivered_key})"
        )
