"""EpTO ordering component (paper Algorithm 2).

Moves events from the ``received`` map to the ``delivered`` set while
preserving total order. An event may be delivered once:

1. the stability oracle deems it deliverable (it has been relayed for
   more than TTL rounds, so w.h.p. every correct process knows it), and
2. no *non-deliverable* event in ``received`` precedes it in the total
   order — otherwise delivering it now could forever block that earlier
   event (a total-order violation).

Refinements relative to the pseudocode (argued in DESIGN.md):

* **Tie-safe discards.** Algorithm 2 line 9 discards events with
  ``ts < lastDeliveredTs`` and the final sort breaks ties by source id.
  Comparing timestamps alone can admit an event that ties on ``ts`` but
  precedes the last delivered event on the tie-breaker. We track the
  full order key ``(ts, source_id, seq)`` of the last delivered event
  and compare lexicographically, which strictly strengthens safety.
* **Bounded memory.** The paper's ``delivered`` set grows forever. A
  copy of an event can only keep arriving while the event is still
  being relayed somewhere, i.e. for O(TTL) rounds after delivery, so
  ids older than a generous ``2*TTL + 2``-round window are forgotten.
  Late copies beyond the window are still rejected by the order-key
  test; the window additionally guarantees the §8.2 tagged channel
  never re-surfaces an event that was already delivered in order.
* **Every-round invocation.** ``order_events`` is called each round
  even with an empty ball so received events keep aging (see
  :mod:`repro.core.dissemination`).

Hot-path structure (see docs/PERFORMANCE.md)
--------------------------------------------

The seed implementation (now retired; see git history and
docs/PERFORMANCE.md) did O(|received|) Python-level work on *every*
round: re-age every pending record, rescan the whole map for
deliverable records, rescan again for the minimum queued order key.
This version does amortized work proportional to what *changes* per
round instead:

* **Lazy aging** — records store the round they were (re)based at and
  derive their TTL on demand (:meth:`EventRecord.ttl_at`); nothing is
  touched on quiet rounds.
* **Deliverability frontier** — with the shipped oracles an event's
  deliverability round is known the moment it is received
  (``received_round + TTL - ttl + 1``), so records are bucketed by
  that round and promoted O(1) when it arrives. Promotion re-checks
  ``oracle.is_deliverable`` and reschedules one round ahead if a
  custom oracle disagrees, so correctness never depends on the
  prediction. (The schedule does assume ``oracle.ttl`` is fixed for
  the life of the component — true of both shipped oracles; dynamic
  reconfiguration happens via process restart.)
* **Lazy-deletion min-heap of queued keys** — the "earliest
  non-deliverable order key" guard is answered by a heap whose stale
  heads (promoted or delivered ids) are popped amortized O(1), not by
  a full scan.
* **Ready heap** — deliverable-but-blocked records wait in a second
  heap; each round pops only what actually gets delivered.

A round with an empty ball and nothing newly stable is O(1); a round
that delivers d events from a ball of b entries is
O((b + d) log n) rather than O(|received|). The Table 1 ordering
invariants (strictly increasing order keys, exactly-once delivery,
schedule-independent agreement) are enforced under adversarial
schedules by the Hypothesis suite in
``tests/core/test_ordering_properties.py``.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Iterable, List, Optional, Tuple

from .clock import StabilityOracle
from .errors import OrderingInvariantError
from .event import Ball, Event, EventId, EventRecord, OrderKey

#: Signature of the application delivery callback.
DeliverCallback = Callable[[Event], None]

#: Order key strictly below every real key (real timestamps are >= 0).
_MINUS_INFINITY_KEY: OrderKey = (-1, -1, -1)


@dataclass(slots=True)
class OrderingStats:
    """Counters exposed for instrumentation and experiments."""

    delivered: int = 0
    discarded_duplicates: int = 0
    discarded_late: int = 0
    tagged_out_of_order: int = 0
    rounds: int = 0


class OrderingComponent:
    """Per-process ordering state machine (Algorithm 2).

    Args:
        oracle: Stability oracle (``isDeliverable``).
        deliver: Callback receiving each event, in total order.
        deliver_out_of_order: Optional callback for the paper §8.2
            *tagged delivery* extension — events whose in-order
            delivery is no longer possible are handed over tagged as
            out-of-order instead of being silently dropped. ``None``
            disables the extension (the paper's base behaviour).
    """

    def __init__(
        self,
        oracle: StabilityOracle,
        deliver: DeliverCallback,
        deliver_out_of_order: DeliverCallback | None = None,
    ) -> None:
        self.oracle = oracle
        self.deliver = deliver
        self.deliver_out_of_order = deliver_out_of_order
        self.stats = OrderingStats()
        # received: known but not yet delivered events (lazy TTLs).
        self._received: dict[EventId, EventRecord] = {}
        # Frontier: round -> ids predicted to become deliverable then.
        self._frontier: dict[int, List[EventId]] = {}
        # Min-heap of (order_key, id) over records not yet deliverable.
        # Lazy deletion: entries whose id was promoted or delivered are
        # skipped when the heap head is inspected.
        self._queued_heap: List[Tuple[OrderKey, EventId]] = []
        # Deliverable-but-blocked records, in order-key order.
        self._ready_heap: List[Tuple[OrderKey, EventId]] = []
        self._ready_ids: set[EventId] = set()
        # Recently delivered ids; entries expire once no further copy
        # of the event can arrive (see module docstring).
        self._delivered_ids: set[EventId] = set()
        self._delivered_expiry: Deque[tuple[int, EventId]] = deque()
        self._last_delivered_key: OrderKey = _MINUS_INFINITY_KEY
        # Tagged-delivery dedup (§8.2): remember recently tagged ids so
        # further copies of the same late event are not re-tagged. A
        # copy can only keep arriving while the event is still being
        # relayed, i.e. for O(TTL) more rounds, so entries expire after
        # a generous multiple of the oracle's TTL.
        self._tagged_ids: set[EventId] = set()
        self._tagged_expiry: Deque[tuple[int, EventId]] = deque()

    # ------------------------------------------------------------------
    # Introspection helpers (used by tests, metrics and the §8.4
    # stability-exposure extension).
    # ------------------------------------------------------------------

    @property
    def received_count(self) -> int:
        """Number of known-but-undelivered events."""
        return len(self._received)

    @property
    def last_delivered_key(self) -> OrderKey:
        """Order key of the most recently delivered event."""
        return self._last_delivered_key

    def pending_records(self) -> Iterable[EventRecord]:
        """Snapshot of the received-but-undelivered records.

        Lazy TTLs are materialized to the current round first, so
        ``record.ttl`` reads as if the paper's eager aging had run.
        """
        now = self.stats.rounds
        records = list(self._received.values())
        for record in records:
            record.rebase(now)
        return records

    def is_delivered(self, event_id: EventId) -> bool:
        """Whether *event_id* was delivered within the retention window.

        Ids older than the ``2*TTL + 2``-round window are forgotten
        (their copies can no longer arrive); such ids report ``False``
        here but are still rejected by the order-key test.
        """
        return event_id in self._delivered_ids

    # ------------------------------------------------------------------
    # Algorithm 2
    # ------------------------------------------------------------------

    def order_events(self, ball: Ball) -> None:
        """Run one ordering round over *ball* (Algorithm 2).

        Called once per round by the dissemination component with the
        ball relayed this round (possibly empty).
        """
        self.stats.rounds += 1
        now = self.stats.rounds
        self._expire_tagged()
        self._prune_delivered()

        # Lines 6-7 (lazy form): previously received events age by
        # derivation — no per-record sweep happens here.

        # Lines 8-14: merge the ball into `received`.
        if ball:
            self._merge_ball(ball, now)

        # Promote records whose deliverability round arrived.
        bucket = self._frontier.pop(now, None)
        if bucket:
            self._promote(bucket, now)

        # Lines 15-30 (heap form): deliver every ready record ordered
        # before the earliest still-queued key, in total order.
        if self._ready_heap:
            self._deliver_ready()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _merge_ball(self, ball: Ball, now: int) -> None:
        """Merge one round's ball into ``received`` (lines 8-14)."""
        received = self._received
        delivered_ids = self._delivered_ids
        ready_ids = self._ready_ids
        frontier = self._frontier
        ttl_bound = self.oracle.ttl
        for entry in ball:
            event = entry.event
            event_id = event.id
            if event_id in delivered_ids:
                self.stats.discarded_duplicates += 1
                continue
            if event.order_key <= self._last_delivered_key:
                # Delivering now would violate total order (line 9).
                self._handle_late_event(event)
                continue
            record = received.get(event_id)
            if record is not None:
                if event_id in ready_ids:
                    # Already deliverable; a larger TTL changes nothing.
                    record.merge_ttl_at(entry.ttl, now)
                    continue
                old_due = now + ttl_bound - record.ttl_at(now) + 1
                record.merge_ttl_at(entry.ttl, now)
                new_due = now + ttl_bound - record.ttl + 1
                if new_due < old_due:
                    # The merged copy aged further elsewhere: the record
                    # becomes deliverable earlier than first scheduled.
                    # The old bucket entry goes stale and is skipped.
                    frontier.setdefault(max(new_due, now), []).append(event_id)
            else:
                record = EventRecord(event, entry.ttl, now)
                received[event_id] = record
                due = now + ttl_bound - entry.ttl + 1
                if due <= now:
                    # Stable on arrival (relayed past the TTL already).
                    self._promote([event_id], now)
                else:
                    frontier.setdefault(due, []).append(event_id)
                    heapq.heappush(
                        self._queued_heap, (event.order_key, event_id)
                    )

    def _promote(self, bucket: List[EventId], now: int) -> None:
        """Move newly deliverable ids from queued to ready."""
        received = self._received
        ready_ids = self._ready_ids
        is_deliverable = self.oracle.is_deliverable
        for event_id in bucket:
            record = received.get(event_id)
            if record is None or event_id in ready_ids:
                continue  # delivered meanwhile, or rescheduled twice
            record.rebase(now)
            if is_deliverable(record):
                ready_ids.add(event_id)
                heapq.heappush(
                    self._ready_heap, (record.event.order_key, event_id)
                )
            else:
                # A custom oracle departing from the ttl > TTL rule:
                # keep the record queued and ask again next round.
                self._frontier.setdefault(now + 1, []).append(event_id)

    def _min_queued_key(self) -> Optional[OrderKey]:
        """Smallest order key among non-deliverable records (lazy heap).

        Heads whose id was promoted or delivered are discarded as they
        surface — each entry is popped at most once over its lifetime,
        so the scan is amortized O(1) per event.
        """
        heap = self._queued_heap
        received = self._received
        ready_ids = self._ready_ids
        while heap:
            key, event_id = heap[0]
            if event_id in received and event_id not in ready_ids:
                return key
            heapq.heappop(heap)
        return None

    def _deliver_ready(self) -> None:
        """Deliver ready records ordered before every queued key."""
        ready_heap = self._ready_heap
        received = self._received
        min_queued_key = self._min_queued_key()
        while ready_heap:
            key, event_id = ready_heap[0]
            if event_id not in received:
                # Stale head: the record was removed between rounds by
                # an external (anti-entropy) delivery.
                heapq.heappop(ready_heap)
                continue
            if min_queued_key is not None and key >= min_queued_key:
                # Lines 22-26: delivering past a still-queued event
                # could violate total order once it stabilizes.
                break
            heapq.heappop(ready_heap)
            record = received.pop(event_id)
            self._ready_ids.discard(event_id)
            event = record.event
            if event.order_key <= self._last_delivered_key:
                # An external delivery advanced the order mark past this
                # record while it sat ready; in-order delivery is no
                # longer possible, so it takes the late-event path.
                self._handle_late_event(event)
                continue
            self._mark_delivered(event)
            self.deliver(event)
            self.stats.delivered += 1

    # ------------------------------------------------------------------
    # External (anti-entropy) delivery path — repro.sync
    # ------------------------------------------------------------------

    def deliver_external(self, event: Event) -> bool:
        """Deliver *event* outside the epidemic path (anti-entropy).

        Used by :mod:`repro.sync` to apply events fetched from a peer's
        delivery log. The event was already delivered — hence stable —
        on the serving peer, so the TTL oracle is bypassed entirely; the
        only checks are the duplicate and total-order guards that every
        delivery goes through. The caller is responsible for presenting
        events in ``(ts, srcId, seq)`` order (the order the serving log
        yields them in).

        Returns ``True`` when the event was delivered, ``False`` when it
        was discarded as a duplicate or as late (order mark already
        past it).
        """
        event_id = event.id
        if event_id in self._delivered_ids:
            self.stats.discarded_duplicates += 1
            return False
        if event.order_key <= self._last_delivered_key:
            self._handle_late_event(event)
            return False
        # Drop any pending epidemic copy so the normal path cannot
        # deliver it a second time; its queued/ready heap entries go
        # stale and are skipped by the lazy-deletion scans.
        if self._received.pop(event_id, None) is not None:
            self._ready_ids.discard(event_id)
        self._mark_delivered(event)
        self.deliver(event)
        self.stats.delivered += 1
        return True

    def discard_obsolete_pending(self) -> int:
        """Drop pending records the order mark has moved past.

        After a batch of external deliveries, epidemic copies still
        sitting in ``received`` with keys at or below the new mark can
        never be delivered in order; they would each surface later as a
        late event anyway. Clearing them eagerly keeps the queued-key
        guard from blocking ready events behind records that are
        already history. Returns the number of records discarded (each
        is routed through the late-event path, so §8.2 tagging still
        applies).
        """
        mark = self._last_delivered_key
        stale = [
            event_id
            for event_id, record in self._received.items()
            if record.event.order_key <= mark
        ]
        for event_id in stale:
            record = self._received.pop(event_id)
            self._ready_ids.discard(event_id)
            self._handle_late_event(record.event)
        return len(stale)

    def _handle_late_event(self, event: Event) -> None:
        """Deal with an event whose in-order delivery window has passed.

        Base EpTO silently drops it; with the §8.2 extension enabled the
        event is delivered tagged as out-of-order so perturbed processes
        still observe the payload. Tagged deliveries are deduplicated:
        each late event is handed over at most once.
        """
        self.stats.discarded_late += 1
        if self.deliver_out_of_order is not None and event.id not in self._tagged_ids:
            self._tagged_ids.add(event.id)
            self._tagged_expiry.append((self.stats.rounds, event.id))
            self.stats.tagged_out_of_order += 1
            self.deliver_out_of_order(event)

    def _expire_tagged(self) -> None:
        """Forget tagged ids old enough that no further copy can arrive."""
        horizon = self.stats.rounds - (2 * self.oracle.ttl + 2)
        expiry = self._tagged_expiry
        while expiry and expiry[0][0] < horizon:
            _, event_id = expiry.popleft()
            self._tagged_ids.discard(event_id)

    def _mark_delivered(self, event: Event) -> None:
        """Record a delivery, enforcing and advancing the order mark."""
        key = event.order_key
        if key <= self._last_delivered_key:
            raise OrderingInvariantError(
                f"delivery of {event!r} (key {key}) would not advance the "
                f"last delivered key {self._last_delivered_key}"
            )
        self._last_delivered_key = key
        self._delivered_ids.add(event.id)
        self._delivered_expiry.append((self.stats.rounds, event.id))

    def _prune_delivered(self) -> None:
        """Forget delivered ids once no further copy can arrive.

        An event stops circulating at most TTL relay rounds after its
        creation; a ``2*TTL + 2``-round retention window (matching the
        tagged-dedup window and covering cross-process round skew)
        therefore keeps every id that could still be duplicated while
        bounding memory by the recent delivery rate.
        """
        horizon = self.stats.rounds - (2 * self.oracle.ttl + 2)
        expiry = self._delivered_expiry
        while expiry and expiry[0][0] < horizon:
            _, event_id = expiry.popleft()
            self._delivered_ids.discard(event_id)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OrderingComponent(received={len(self._received)}, "
            f"delivered={self.stats.delivered}, "
            f"last_key={self._last_delivered_key})"
        )
