"""Minimal protocols the EpTO core needs from its runtime environment.

The algorithm in :mod:`repro.core` is runtime-agnostic: it never
schedules timers, opens sockets, or samples randomness directly.
Instead the embedding runtime (the discrete-event simulator in
:mod:`repro.sim`, or the asyncio runtime in :mod:`repro.runtime`)
provides these two capabilities and drives the process by calling
``on_round`` periodically and ``on_ball`` on message receipt.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

from .event import Ball


@runtime_checkable
class Transport(Protocol):
    """Unreliable, unordered, one-way message channel.

    EpTO needs nothing stronger: no acknowledgments, retransmissions or
    connections (paper §1.1). ``send`` must not raise on loss — losing
    messages is the network model's job, not an error.
    """

    def send(self, src: int, dst: int, ball: Ball) -> None:
        """Best-effort delivery of *ball* from *src* to *dst*."""
        ...


@runtime_checkable
class FanoutTransport(Protocol):
    """A transport that can ship one ball to many peers at once.

    EpTO's round tick sends the *same* immutable ball to ``K`` peers.
    A transport that serializes (or otherwise prepares) messages can
    amortize that work across the fan-out — e.g. the UDP fabric encodes
    the datagram once and ``sendto``s the same bytes to every
    destination. The dissemination component uses this surface when the
    transport offers it and falls back to ``K`` individual
    :meth:`Transport.send` calls otherwise, so plain transports (and
    test doubles) keep working unchanged.
    """

    def send(self, src: int, dst: int, ball: Ball) -> None:
        """Best-effort delivery of *ball* from *src* to *dst*."""
        ...

    def send_many(self, src: int, dsts: Sequence[int], ball: Ball) -> None:
        """Best-effort delivery of one *ball* to every id in *dsts*.

        Semantically identical to calling :meth:`send` once per
        destination (per-destination loss, partitions and fault
        injection still apply individually); implementations may share
        the encoded representation across destinations.
        """
        ...


@runtime_checkable
class FaultableNetwork(Protocol):
    """A network fabric that supports partition fault injection.

    Both the simulated network (:class:`repro.sim.network.SimNetwork`)
    and the asyncio fabrics (:class:`repro.runtime.transport.AsyncNetwork`,
    :class:`repro.runtime.udp.UdpNetwork`) expose this surface, which is
    what lets one declarative fault schedule
    (:class:`repro.faults.schedule.FaultSchedule`) drive any of them.
    Partition labels are opaque: only same-group nodes can communicate,
    and nodes absent from the mapping share the implicit ``None`` group.
    """

    def set_partition(self, groups: dict) -> None:
        """Split the network; only same-group nodes can talk."""
        ...

    def heal_partition(self) -> None:
        """Restore full connectivity."""
        ...


@runtime_checkable
class PeerSampler(Protocol):
    """Peer sampling service view (paper §2, [17]).

    Supplies a uniformly random sample of processes deemed correct.
    Inaccuracies (stale entries pointing at failed processes) are
    tolerated by EpTO and behave like message loss.
    """

    def sample(self, k: int) -> Sequence[int]:
        """Return up to *k* peer ids drawn uniformly at random.

        May return fewer than *k* ids if the view is small; never
        returns the sampling process's own id.
        """
        ...
