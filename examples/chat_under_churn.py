#!/usr/bin/env python3
"""A total-order chat room surviving churn, loss and WAN latency.

Demonstrates the paper's robustness claims (§5, Figures 8–10) in one
application-shaped scenario: a chat room of 60 members where

* messages are EpTO-broadcast at a 5% per-member per-round probability,
* 5% of the membership churns (leaves + joins) every round while the
  chat is active,
* 5% of all network messages are lost,
* latencies follow the PlanetLab-like heavy-tailed distribution.

Every member that stayed in the room sees *exactly the same
transcript* — same messages, same order, no holes — matching the
paper's §6 observation that "we have not observed a single hole in the
sequence of delivered events".

Run with::

    python examples/chat_under_churn.py
"""

from __future__ import annotations

from repro import (
    ChurnDriver,
    ClusterConfig,
    EpToConfig,
    PlanetLabLatency,
    SimCluster,
    SimNetwork,
    Simulator,
    check_run,
)
from repro.workloads import ProbabilisticWorkload

MEMBERS = 60
CHURN_RATE = 0.05
LOSS_RATE = 0.05
CHAT_ROUNDS = 8


def main() -> None:
    sim = Simulator(seed=2026)
    network = SimNetwork(sim, latency=PlanetLabLatency(), loss_rate=LOSS_RATE)
    config = EpToConfig.for_system_size(
        MEMBERS, churn_rate=CHURN_RATE, loss_rate=LOSS_RATE
    )
    print(
        f"room size {MEMBERS}, churn {CHURN_RATE:.0%}/round, "
        f"loss {LOSS_RATE:.0%}, K={config.fanout}, TTL={config.ttl}"
    )

    cluster = SimCluster(sim, network, ClusterConfig(epto=config))
    cluster.add_nodes(MEMBERS)

    delta = config.round_interval
    chat_end = CHAT_ROUNDS * delta

    def message(index: int) -> str:
        return f"msg-{index}"

    ProbabilisticWorkload(
        sim, cluster, rate=0.05, rounds=CHAT_ROUNDS, payload_factory=message
    )
    ChurnDriver(sim, cluster, rate=CHURN_RATE, start=1, stop_after=chat_end)

    run_end = chat_end + (config.ttl + 12) * delta
    sim.run(until=run_end)

    collector = cluster.collector
    stable = collector.stable_nodes(since=0, until=run_end)
    report = check_run(collector, correct_nodes=stable)

    transcripts = {
        tuple(collector.sequence_of(node_id)) for node_id in stable
    }
    print(f"messages sent: {collector.broadcast_count}")
    print(f"members that stayed the whole time: {len(stable)}")
    print(f"distinct transcripts among them: {len(transcripts)}")
    print(f"specification check: {report.summary()}")
    print(
        f"network: {network.stats.sent} msgs, "
        f"{network.stats.dropped_loss} lost, "
        f"{network.stats.dropped_dead} to departed members"
    )

    assert len(transcripts) == 1, "stable members saw different histories"
    assert report.safety_ok and report.agreement_ok


if __name__ == "__main__":
    main()
