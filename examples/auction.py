#!/usr/bin/env python3
"""A decentralized auction: order decides the winner, so order matters.

Each of 20 auction nodes submits bids for items; an item goes to the
*first* bid at the highest price — a rule that is only well-defined if
every node processes bids in the same order. With EpTO, all nodes
independently compute identical auction outcomes without any central
auctioneer, coordinator, or consensus round.

Also demonstrates the paper's §8.4 *delivery tradeoffs* extension:
while bids are still in flight, a node peeks at its undelivered bids
together with the estimated probability that they are stable, the
quantified early view an application could act on.

Run with::

    python examples/auction.py
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro import (
    ClusterConfig,
    EpToConfig,
    PlanetLabLatency,
    SimCluster,
    SimNetwork,
    Simulator,
)

NODES = 20
ITEMS = ("painting", "clock", "globe")


@dataclass
class AuctionBook:
    """One node's view of the auction, driven by ordered deliveries."""

    best: Dict[str, Tuple[int, int]] = None  # item -> (price, bidder)

    def __post_init__(self) -> None:
        self.best = {}

    def apply(self, payload: Tuple[str, int, int]) -> None:
        item, price, bidder = payload
        current = self.best.get(item)
        # Highest price wins; FIRST delivered bid wins ties — this is
        # where identical delivery order across nodes is essential.
        if current is None or price > current[0]:
            self.best[item] = (price, bidder)

    def outcome(self) -> Tuple[Tuple[str, int, int], ...]:
        return tuple(
            (item, price, bidder)
            for item, (price, bidder) in sorted(self.best.items())
        )


def main() -> None:
    sim = Simulator(seed=77)
    network = SimNetwork(sim, latency=PlanetLabLatency(), loss_rate=0.02)
    config = EpToConfig.for_system_size(NODES, loss_rate=0.02).with_overrides(
        expose_stability=True
    )
    cluster = SimCluster(
        sim,
        network,
        ClusterConfig(epto=config, expected_size=NODES),
    )
    cluster.add_nodes(NODES)

    books: Dict[int, AuctionBook] = {nid: AuctionBook() for nid in cluster.alive_ids()}
    original = cluster.collector.record_delivery

    def record_and_apply(node_id, event, time):
        original(node_id, event, time)
        books[node_id].apply(event.payload)

    cluster.collector.record_delivery = record_and_apply  # type: ignore[method-assign]

    # Simultaneous bidding: many equal-price bids — ties everywhere.
    rng = sim.fork_rng("auction")
    for bidder in cluster.alive_ids():
        for item in ITEMS:
            price = rng.choice((100, 150, 150, 200))  # deliberate ties
            cluster.broadcast_from(bidder, (item, price, bidder))

    # Mid-flight: peek at pending bids with stability estimates (§8.4).
    sim.run_for(3 * config.round_interval)
    node0 = cluster.node(0)
    estimates = node0.peek()
    print(f"after 3 rounds, node 0 sees {len(estimates)} pending bids; "
          "most stable:")
    for estimate in estimates[:3]:
        item, price, bidder = estimate.event.payload
        print(
            f"  {item:8s} {price:4d} by node {bidder:2d}   "
            f"P(stable)={estimate.probability_stable:.3f}  "
            f"coverage~{estimate.expected_coverage:.1%}"
        )

    # Run to quiescence and compare outcomes.
    sim.run_for((config.ttl + 10) * config.round_interval)
    outcomes = {book.outcome() for book in books.values()}
    print(f"\nbids: {cluster.collector.broadcast_count}; "
          f"distinct outcomes across {NODES} nodes: {len(outcomes)}")
    assert len(outcomes) == 1, "nodes disagree on auction winners"
    for item, price, bidder in next(iter(outcomes)):
        print(f"  {item:8s} -> node {bidder:2d} at {price}")
    print("\nall nodes computed the same winners without a coordinator.")


if __name__ == "__main__":
    main()
