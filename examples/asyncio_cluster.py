#!/usr/bin/env python3
"""EpTO on real timers: the asyncio runtime (paper §8.5).

Runs the unmodified EpTO core on an asyncio event loop — real sleeps
for rounds, an asynchronous in-process fabric with injected latency and
2% message loss for transport — and shows all nodes converging on one
total order in wall-clock time. This is the paper's §8.5 future work
("real system implementation") in miniature.

Run with::

    python examples/asyncio_cluster.py
"""

from __future__ import annotations

import asyncio
import time

from repro.core import EpToConfig
from repro.runtime import AsyncCluster, AsyncNetwork

NODES = 10
ROUND_MS = 25


async def main() -> None:
    config = EpToConfig(
        fanout=5,
        ttl=8,
        round_interval=ROUND_MS,  # milliseconds in the asyncio runtime
        clock="logical",  # no global clock needed on real hardware
    )
    network = AsyncNetwork(latency=0.005, loss_rate=0.02, seed=1)
    cluster = AsyncCluster(config, network=network, drift_fraction=0.05, seed=1)
    cluster.add_nodes(NODES)
    cluster.start_all()
    print(f"{NODES} nodes, {ROUND_MS}ms rounds, K={config.fanout}, TTL={config.ttl}")

    started = time.monotonic()
    payloads = ["deploy", "rollback", "scale-up", "migrate", "archive"]
    for index, payload in enumerate(payloads):
        cluster.nodes[index % NODES].broadcast(payload)
        await asyncio.sleep(0.01)

    done = await cluster.wait_for_deliveries(len(payloads), timeout=10.0)
    elapsed = time.monotonic() - started
    await cluster.stop_all()

    sequences = cluster.delivery_payload_sequences()
    distinct = {tuple(seq) for seq in sequences.values()}
    print(f"all nodes delivered {len(payloads)} events: {done} "
          f"({elapsed * 1000:.0f} ms wall time)")
    print(f"distinct delivery orders: {len(distinct)}")
    print(f"agreed order: {next(iter(distinct))}")
    print(f"network: {network.stats.sent} sent, "
          f"{network.stats.dropped_loss} lost")
    assert done and len(distinct) == 1


if __name__ == "__main__":
    asyncio.run(main())
