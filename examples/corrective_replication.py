#!/usr/bin/env python3
"""Corrective delivery (§8.3): replicas that roll back instead of dropping.

Combines the §8.2 tagged-delivery channel with the SMR toolkit's
:class:`~repro.smr.CorrectableReplica`: when an event arrives too late
for in-order delivery, the replica splices it into its log at the
correct position and replays — the *unconscious eventual consistency*
programming model the paper discusses (applications observe
corrections but never know whether their current order is final).

The scenario is the paper's Figure 4 mechanism: an isolated process
broadcasts with a stale Lamport timestamp; by the time the event
spreads, every healthy replica has delivered later-ordered events.
Base EpTO would drop it everywhere — here, every replica incorporates
it retroactively and all states converge, corrections included.

Run with::

    python examples/corrective_replication.py
"""

from __future__ import annotations

from repro import ClusterConfig, EpToConfig, SimCluster, SimNetwork, Simulator
from repro.core import EpToProcess
from repro.sim import FixedLatency
from repro.smr import AppendLog, CorrectableReplica

N = 10
ISOLATED = 0


def main() -> None:
    sim = Simulator(seed=83)
    network = SimNetwork(sim, latency=FixedLatency(20))
    config = EpToConfig.for_system_size(N, clock="logical").with_overrides(
        tagged_delivery=True
    )
    delta = config.round_interval

    replicas: dict[int, CorrectableReplica] = {}
    correction_log: list[str] = []

    def factory(*, node_id, pss, transport, on_deliver, time_source, rng):
        replica = CorrectableReplica(
            node_id,
            AppendLog,
            on_correction=lambda c: correction_log.append(
                f"node {node_id}: spliced {c.event.payload!r} at position "
                f"{c.position}, replayed {c.replayed} commands"
            ),
        )
        replicas[node_id] = replica

        def deliver(event):
            on_deliver(event)
            replica.on_deliver(event)

        return EpToProcess(
            node_id=node_id,
            config=config,
            peer_sampler=pss,
            transport=transport,
            on_deliver=deliver,
            on_out_of_order=replica.on_out_of_order,
            time_source=time_source,
            rng=rng,
        )

    cluster = SimCluster(
        sim, network, ClusterConfig(epto=config), process_factory=factory
    )
    cluster.add_nodes(N)

    # Isolate node 0; the rest broadcast (their clocks advance).
    network.set_partition({ISOLATED: "alone", **{n: "main" for n in range(1, N)}})
    for i in range(4):
        cluster.broadcast_from(1 + i, f"main-{i}")
        sim.run_for(delta)
    sim.run_for((config.ttl + 4) * delta)

    # The isolated node broadcasts with a stale timestamp, then heals.
    cluster.broadcast_from(ISOLATED, "stale-write")
    network.heal_partition()
    sim.run_for((config.ttl + 8) * delta)

    healthy = range(1, N)
    digests = {replicas[n].digest() for n in healthy}
    logs = {tuple(e.payload for e in replicas[n].log) for n in healthy}
    total_corrections = sum(len(replicas[n].corrections) for n in healthy)

    print(f"corrections applied across healthy replicas: {total_corrections}")
    for line in correction_log[:3]:
        print(f"  {line}")
    if len(correction_log) > 3:
        print(f"  ... and {len(correction_log) - 3} more")
    print(f"\ndistinct healthy replica states: {len(digests)}")
    print(f"agreed log: {next(iter(logs))}")

    assert len(digests) == 1
    assert total_corrections > 0
    assert all("stale-write" in log for log in logs)
    print("\nthe stale write is in every replica's log, at the same "
          "position, despite arriving after later writes were applied.")


if __name__ == "__main__":
    main()
