#!/usr/bin/env python3
"""A replicated counter over real UDP datagrams (paper §8.5).

The most end-to-end configuration in this repository: the unmodified
EpTO core, driven by asyncio timers, gossiping serialized balls over
genuine loopback UDP sockets, feeding deterministic state machines via
the SMR toolkit. Every node independently computes the same counter
value because every node applies the same commands in the same order.

Run with::

    python examples/udp_replicated_counter.py
"""

from __future__ import annotations

import asyncio
import random

from repro.core import EpToConfig
from repro.pss.base import MembershipDirectory
from repro.pss.uniform import UniformViewPss
from repro.runtime.node import AsyncEpToNode
from repro.runtime.udp import UdpNetwork
from repro.smr import Counter, Replica

NODES = 8
ROUND_MS = 20


async def main() -> None:
    config = EpToConfig(fanout=4, ttl=6, round_interval=ROUND_MS, clock="logical")
    network = UdpNetwork()
    directory = MembershipDirectory()
    replicas: dict[int, Replica] = {}
    nodes: list[AsyncEpToNode] = []

    for node_id in range(NODES):
        replica = Replica(node_id, Counter(), journal_commands=True)
        replicas[node_id] = replica
        node = AsyncEpToNode(
            node_id=node_id,
            config=config,
            network=network,  # UDP fabric quacks like AsyncNetwork
            peer_sampler=UniformViewPss(
                node_id, directory, random.Random(f"udp-demo:{node_id}")
            ),
            on_deliver=replica.on_deliver,
            seed=2026,
        )
        directory.add(node_id)
        nodes.append(node)

    await network.open_all()
    ports = [network.address_of(n)[1] for n in range(NODES)]
    print(f"{NODES} nodes on UDP ports {ports}")
    for node in nodes:
        node.start()

    # Concurrent increments from different nodes — including negative
    # ones, so application order would matter if it ever diverged.
    commands = [(0, ("add", 10)), (3, ("add", -4)), (5, ("add", 7)), (7, ("reset",)), (2, ("add", 42))]
    for node_id, command in commands:
        nodes[node_id].broadcast(command)
        await asyncio.sleep(0.005)

    deadline = asyncio.get_event_loop().time() + 10.0
    while asyncio.get_event_loop().time() < deadline:
        if all(r.applied_count >= len(commands) for r in replicas.values()):
            break
        await asyncio.sleep(0.02)

    for node in nodes:
        await node.stop()
    await network.close()

    values = {replica.machine.value for replica in replicas.values()}
    # Commands cross the wire as JSON, so tuples come back as lists.
    journals = {
        tuple(tuple(command) for command in replica.journal)
        for replica in replicas.values()
    }
    print(f"datagrams sent: {network.stats.sent}, "
          f"delivered: {network.stats.delivered}")
    print(f"distinct replica values  : {len(values)} -> {values}")
    print(f"distinct command orders  : {len(journals)}")
    print(f"agreed command order     : {next(iter(journals))}")
    assert len(values) == 1 and len(journals) == 1
    print("\nall replicas agree, over real sockets, with no coordinator.")


if __name__ == "__main__":
    asyncio.run(main())
