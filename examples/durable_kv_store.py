#!/usr/bin/env python3
"""Durable state-machine replication: crash, recover from disk, converge.

`examples/replicated_kv_store.py` shows that EpTO's total order keeps
replicas identical. This example adds the missing piece for long-lived
deployments: **durability**. Every node journals its deliveries to a
segmented, CRC-checksummed log (`repro.storage`), checkpoints its
replica state into atomic snapshots, and — after a crash — a node
respawned under the same identity rebuilds itself from disk:

1. load the latest snapshot,
2. replay the delivery-log suffix in order-key order,
3. resume the broadcast sequence past every issued `(source, seq)` id,
4. deduplicate post-restart re-deliveries against the recovered
   watermark, so commands apply exactly once.

The drill below crashes a replica *after* some of its history has
expired from the epidemic (TTL long gone): those commands survive only
on disk, yet the recovered replica still converges with the cluster.

Run with::

    python examples/durable_kv_store.py
"""

from __future__ import annotations

import shutil
import tempfile

from repro.core import EpToConfig
from repro.sim.cluster import ClusterConfig, SimCluster
from repro.sim.engine import Simulator
from repro.sim.network import SimNetwork
from repro.smr.machine import KeyValueStore
from repro.smr.replica import ReplicatedService

N = 8
SEED = 11
VICTIM = 3


def main() -> None:
    storage_dir = tempfile.mkdtemp(prefix="epto-durable-kv-")
    try:
        sim = Simulator(seed=SEED)
        network = SimNetwork(sim)
        config = EpToConfig(fanout=4, ttl=12, round_interval=10)
        cluster = SimCluster(
            sim,
            network,
            ClusterConfig(epto=config, expected_size=N),
            storage_dir=storage_dir,
        )
        cluster.add_nodes(N)
        service = ReplicatedService(cluster, KeyValueStore, journal_commands=True)

        sent = []

        def submit(node_id: int, index: int) -> None:
            sent.append(service.submit(node_id, ["put", f"key{index}", index]))

        # Early traffic: delivered and journaled everywhere, then its
        # TTL expires — after the crash these commands exist only in
        # the victim's snapshot and log.
        for i in range(4):
            sim.schedule_at(5 + i * 10, lambda i=i: submit(i % N, i))
        # Mid-run checkpoint, so recovery is snapshot *plus* log suffix.
        sim.schedule_at(
            145,
            lambda: cluster.journals[VICTIM].save_snapshot(
                service.replica(VICTIM).snapshot()
            ),
        )
        # Traffic still in flight across the outage (the relay window of
        # an event closes one TTL after broadcast, so only events
        # broadcast close enough to the crash are still circulating at
        # the respawn — a crashed node permanently misses anything
        # whose window closes while it is down).
        for i in range(4, 8):
            sim.schedule_at(95 + (i - 4) * 10, lambda i=i: submit((i + 1) % N, i))
        sim.schedule_at(185, lambda: cluster.crash_node(VICTIM))
        sim.schedule_at(195, lambda: cluster.respawn_node(VICTIM))
        # Post-recovery traffic, including from the recovered node.
        for i in range(8, 14):
            sim.schedule_at(260 + (i - 8) * 10, lambda i=i: submit(i % N, i))

        sim.run(until=320 + 3 * config.ttl * config.round_interval)

        (recovered,) = cluster.recoveries[VICTIM]
        print(f"commands submitted : {len(sent)}")
        print(
            f"recovery           : snapshot #{recovered.snapshot_index}, "
            f"{recovered.replayed} log records replayed, "
            f"{recovered.applied_count} commands restored from disk"
        )
        print(f"resume point       : next broadcast seq {recovered.next_seq}")
        journal = cluster.journals[VICTIM]
        print(
            f"second incarnation : {journal.stats.recorded} new deliveries "
            f"journaled, {journal.stats.deduplicated} re-deliveries dropped"
        )

        converged = service.converged()
        replica = service.replica(VICTIM)
        print(
            f"victim replica     : {replica.applied_count}/{len(sent)} "
            f"commands applied, duplicates="
            f"{replica.applied_count - len({tuple(c) for c in replica.journal})}"
        )
        print(f"cluster            : {'CONVERGED' if converged else 'DIVERGED'}")
        print(
            "\nThe recovered replica's early state came purely from disk —\n"
            "those events had expired from the epidemic — and the journal\n"
            "watermark kept every command exactly-once across the restart."
        )
    finally:
        shutil.rmtree(storage_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
