#!/usr/bin/env python3
"""Durable state-machine replication as a broadcast-service tenant.

`examples/replicated_kv_store.py` shows that EpTO's total order keeps
replicas identical; this example adds **durability** and runs the
replicated store as a *tenant* of the multi-topic broadcast service
(`repro.service`, docs/SERVICE.md): every host multiplexes a KV topic
and an audit-log topic over one socket, each topic journaling its own
deliveries to a segmented, CRC-checksummed log (`repro.storage`).

The drill crashes one host mid-run. Its KV tenant recovers from disk —

1. load the latest snapshot,
2. replay the delivery-log suffix in order-key order,
3. resume the broadcast sequence past every issued `(source, seq)` id,
4. deduplicate re-gossiped deliveries against the recovered watermark,
5. close the TTL-outliving gap with anti-entropy before rejoining —

and converges with the cluster, exactly-once, while the audit-log topic
on the *same* sockets never stops flowing.

Run with::

    python examples/durable_kv_store.py
"""

from __future__ import annotations

import asyncio
import shutil
import tempfile
from pathlib import Path

from repro.core import EpToConfig
from repro.service import ServiceCluster, ServiceReplica
from repro.smr.machine import AppendLog, KeyValueStore
from repro.sync.config import SyncConfig

N = 6
SEED = 11
VICTIM = 3
KV_TOPIC = 1
AUDIT_TOPIC = 2


async def drill(storage_dir: Path) -> None:
    config = EpToConfig.for_system_size(N, round_interval=20)
    cluster = ServiceCluster(
        config,
        storage_dir=storage_dir,
        sync=SyncConfig(),
        expected_size=N,
        seed=SEED,
    )
    cluster.open_topic(KV_TOPIC)
    cluster.open_topic(AUDIT_TOPIC)
    cluster.add_hosts(N)

    kv = {
        host_id: ServiceReplica(
            service, KV_TOPIC, KeyValueStore(), journal_commands=True
        )
        for host_id, service in cluster.hosts.items()
    }
    audit = {
        host_id: ServiceReplica(service, AUDIT_TOPIC, AppendLog())
        for host_id, service in cluster.hosts.items()
    }
    cluster.start_all()

    sent = 0

    async def submit(host_id: int, index: int) -> None:
        nonlocal sent
        await kv[host_id].submit(("put", f"key{index}", index))
        await audit[host_id].submit(f"put key{index} by host {host_id}")
        sent += 1

    # Early traffic: delivered, journaled, then its TTL expires — after
    # the crash these commands survive only in the victim's journal.
    for i in range(4):
        await submit(i % N, i)
    await cluster.wait_for_topic(KV_TOPIC, 4, timeout=20)

    # Mid-run checkpoint, so recovery is snapshot *plus* log suffix.
    kv[VICTIM].checkpoint()

    cluster.crash_host(VICTIM)
    # Traffic across the outage: the victim's epidemic window for these
    # events closes while it is down; only disk + anti-entropy bring
    # them back.
    for i in range(4, 8):
        await submit((i + 1) % N, i)
    await asyncio.sleep(0.5)
    await cluster.respawn_host(VICTIM)

    # Post-recovery traffic, including from the recovered host.
    for i in range(8, 12):
        await submit(i % N, i)
    for topic in (KV_TOPIC, AUDIT_TOPIC):
        await cluster.wait_for_topic(topic, 12, timeout=30)

    recovered = cluster.hosts[VICTIM].topics[KV_TOPIC].recoveries[-1]
    print(f"commands submitted : {sent} (x2 topics, one socket per host)")
    print(
        f"recovery           : snapshot #{recovered.snapshot_index}, "
        f"{recovered.replayed} log records replayed, "
        f"{recovered.applied_count} commands restored from disk"
    )
    print(f"resume point       : next broadcast seq {recovered.next_seq}")

    victim = kv[VICTIM]
    kv_converged = len({replica.digest() for replica in kv.values()}) == 1
    audit_converged = len({replica.digest() for replica in audit.values()}) == 1
    print(
        f"victim replica     : {victim.applied_count}/{sent} commands "
        f"applied across both incarnations"
    )
    print(f"kv topic           : {'CONVERGED' if kv_converged else 'DIVERGED'}")
    print(f"audit topic        : {'CONVERGED' if audit_converged else 'DIVERGED'}")

    frames = sum(s.demux.stats.frames_sent for s in cluster.hosts.values())
    envelopes = sum(s.demux.stats.envelopes_sent for s in cluster.hosts.values())
    print(
        f"wire               : {frames} topic frames in {envelopes} "
        f"datagrams ({frames / max(envelopes, 1):.2f} frames/datagram)"
    )
    print(
        "\nThe recovered tenant's early state came purely from disk — those\n"
        "events had expired from the epidemic — and the journal watermark\n"
        "kept every command exactly-once across the restart, while the\n"
        "audit topic kept flowing over the same shared sockets."
    )
    assert kv_converged and audit_converged
    await cluster.close_all()


def main() -> None:
    storage_dir = tempfile.mkdtemp(prefix="epto-durable-kv-")
    try:
        asyncio.run(drill(Path(storage_dir)))
    finally:
        shutil.rmtree(storage_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
