#!/usr/bin/env python3
"""Tagged delivery (§8.2): late events reach the app instead of vanishing.

Base EpTO drops an event whenever delivering it would violate total
order. The paper's §8.2 extension instead hands such events to the
application *tagged as out-of-order* — "a significant improvement over
existing work using failure detectors that simply discards such
perturbed processes".

This example engineers the paper's Figure 4 mechanism with logical
clocks: process 0 sits isolated behind a partition, so its Lamport
clock never advances while the rest of the cluster broadcasts and
delivers events with ever-growing timestamps. When process 0 finally
broadcasts, its event carries a *stale* timestamp that orders before
events the others have long delivered. Once the partition heals, base
EpTO would silently drop that event everywhere; with tagged delivery
every process still receives it, marked out-of-order.

Run with::

    python examples/tagged_delivery.py
"""

from __future__ import annotations

from repro import ClusterConfig, EpToConfig, SimCluster, SimNetwork, Simulator
from repro.core import EpToProcess
from repro.sim import FixedLatency

N = 10
ISOLATED = 0


def main() -> None:
    sim = Simulator(seed=5)
    network = SimNetwork(sim, latency=FixedLatency(20))
    # Logical clocks; tagged delivery enabled.
    config = EpToConfig.for_system_size(N, clock="logical").with_overrides(
        tagged_delivery=True
    )
    delta = config.round_interval

    tagged: dict[int, list] = {nid: [] for nid in range(N)}

    def factory(*, node_id, pss, transport, on_deliver, time_source, rng):
        return EpToProcess(
            node_id=node_id,
            config=config,
            peer_sampler=pss,
            transport=transport,
            on_deliver=on_deliver,
            on_out_of_order=tagged[node_id].append,
            time_source=time_source,
            rng=rng,
        )

    cluster = SimCluster(
        sim, network, ClusterConfig(epto=config), process_factory=factory
    )
    cluster.add_nodes(N)

    # Phase 1: process 0 is partitioned off. The rest broadcast and
    # deliver; their Lamport clocks race ahead. Process 0 hears
    # nothing, so its clock stays at zero.
    network.set_partition({ISOLATED: "alone", **{n: "main" for n in range(1, N)}})
    for i in range(5):
        cluster.broadcast_from(1 + i, f"main-{i}")
        sim.run_for(delta)
    sim.run_for((config.ttl + 4) * delta)

    # Phase 2: the isolated process broadcasts with its stale clock
    # (ts = 1), then the partition heals and the event spreads.
    stale_event = cluster.broadcast_from(ISOLATED, "stale-broadcast")
    network.heal_partition()
    sim.run_for((config.ttl + 6) * delta)

    collector = cluster.collector
    main_ts = [rec.event.ts for rec in collector.broadcasts() if rec.event.id != stale_event.id]
    print(f"main-partition events carried ts {sorted(main_ts)}")
    print(f"isolated process broadcast with stale ts = {stale_event.ts}")

    in_order = sum(
        1 for nid in range(1, N) if stale_event.id in collector.delivered_ids_of(nid)
    )
    tagged_count = sum(
        1 for nid in range(1, N) if any(e.id == stale_event.id for e in tagged[nid])
    )
    print(f"\nhealthy processes delivering the stale event in order : {in_order}")
    print(f"healthy processes receiving it tagged out-of-order    : {tagged_count}")
    print(f"isolated process delivered its own event in order     : "
          f"{stale_event.id in collector.delivered_ids_of(ISOLATED)}")

    # Without the extension those `tagged_count` processes would have
    # dropped the event silently; with it, nobody missed the payload.
    assert in_order + tagged_count == N - 1
    assert tagged_count > 0, "expected the stale event to be tagged somewhere"
    print("\nevery process observed the payload; total order never violated.")


if __name__ == "__main__":
    main()
