#!/usr/bin/env python3
"""State-machine replication: a versioned key-value store over EpTO.

The paper motivates EpTO with DataFlasks (§1.1): an epidemic data store
that, lacking ordering, "delegates important tasks such as version
control to the client". This example shows what EpTO buys such a
system: every replica applies the same writes in the same order, so
version control becomes trivial — the replicas *are* consistent.

Two runs over the identical workload and network:

1. **EpTO total order** — all replicas converge to byte-identical
   stores;
2. **unordered epidemic broadcast** (the Figure 6 baseline) — replicas
   apply writes in arrival order and typically diverge on contended
   keys (last-writer-wins races resolve differently per replica).

Run with::

    python examples/replicated_kv_store.py
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro import (
    BallsBinsProcess,
    ClusterConfig,
    EpToConfig,
    Event,
    PlanetLabLatency,
    SimCluster,
    SimNetwork,
    Simulator,
)

N = 12
KEYS = ("config", "leader", "quota")
WRITES_PER_REPLICA = 3


@dataclass
class KvStore:
    """A replica's materialized state: key -> (value, version)."""

    data: Dict[str, Tuple[str, int]] = field(default_factory=dict)

    def apply(self, event: Event) -> None:
        key, value = event.payload
        _, version = self.data.get(key, ("", 0))
        self.data[key] = (value, version + 1)

    def snapshot(self) -> Tuple[Tuple[str, str, int], ...]:
        return tuple(
            (key, value, version)
            for key, (value, version) in sorted(self.data.items())
        )


def run(process_kind: str, seed: int = 11) -> Dict[int, KvStore]:
    """Run the workload under EpTO or the unordered baseline."""
    sim = Simulator(seed=seed)
    network = SimNetwork(sim, latency=PlanetLabLatency(), loss_rate=0.01)
    config = EpToConfig.for_system_size(N, loss_rate=0.01)

    stores: Dict[int, KvStore] = {}

    def factory(*, node_id, pss, transport, on_deliver, time_source, rng):
        return BallsBinsProcess(
            node_id=node_id,
            config=config,
            peer_sampler=pss,
            transport=transport,
            on_deliver=on_deliver,
            time_source=time_source,
            rng=rng,
        )

    cluster = SimCluster(
        sim,
        network,
        ClusterConfig(epto=config),
        process_factory=factory if process_kind == "unordered" else None,
    )
    cluster.add_nodes(N)

    # Hook each replica's delivery stream into its store. The cluster's
    # collector already journals deliveries; we additionally materialize.
    for node_id in cluster.alive_ids():
        stores[node_id] = KvStore()

    original = cluster.collector.record_delivery

    def record_and_apply(node_id: int, event: Event, time: int) -> None:
        original(node_id, event, time)
        stores[node_id].apply(event)

    cluster.collector.record_delivery = record_and_apply  # type: ignore[method-assign]

    # Contended workload: every replica writes every key.
    rng = sim.fork_rng("kv-workload")
    writers = list(cluster.alive_ids())
    for round_idx in range(WRITES_PER_REPLICA):
        for writer in writers:
            key = KEYS[rng.randrange(len(KEYS))]
            cluster.broadcast_from(writer, (key, f"v{round_idx}-by-{writer}"))
        sim.run_for(config.round_interval)  # writes spread across rounds

    sim.run_for((config.ttl + 10) * config.round_interval)
    return stores


def main() -> None:
    for kind in ("epto", "unordered"):
        stores = run(kind)
        snapshots = {store.snapshot() for store in stores.values()}
        status = "CONSISTENT" if len(snapshots) == 1 else "DIVERGED"
        print(f"{kind:>9}: {len(snapshots)} distinct replica states -> {status}")
        if len(snapshots) == 1:
            print("           sample state:")
            for key, value, version in next(iter(snapshots)):
                print(f"             {key} = {value!r} (version {version})")
    print(
        "\nEpTO's total order makes the replicated store deterministic; "
        "the unordered epidemic typically diverges on contended keys."
    )


if __name__ == "__main__":
    main()
